//! Data-stream substrate for the RBM-IM reproduction.
//!
//! The paper evaluates drift detectors inside the MOA environment; this
//! crate re-implements the needed pieces natively in Rust:
//!
//! * an [`Instance`] / [`StreamSchema`]
//!   model and the [`DataStream`] trait,
//! * the synthetic generators used by the paper's artificial benchmarks
//!   (Agrawal, rotating Hyperplane, RandomRBF, RandomTree) plus a few extra
//!   classical generators (SEA, LED, Gaussian mixtures) used by the
//!   real-world substitutes and the examples,
//! * concept-drift operators: sudden / gradual / incremental transitions
//!   between concepts ([`drift`]), and **local** drift that affects only a
//!   chosen subset of classes ([`drift::local`]),
//! * class-imbalance operators: static and dynamic imbalance ratios and
//!   class-role switching ([`imbalance`]),
//! * synthetic substitutes for the 12 real-world benchmarks of Table I
//!   ([`realworld`]), and
//! * a benchmark [`registry`] that builds all 24 streams with the metadata
//!   reported in Table I, plus [`scenarios`] builders for the three
//!   taxonomy scenarios of Section IV.

#![warn(missing_docs)]

pub mod drift;
pub mod generators;
pub mod imbalance;
pub mod instance;
pub mod realworld;
pub mod registry;
pub mod scenarios;
pub mod source;
pub mod stream;

pub use instance::{Instance, StreamSchema};
pub use source::{derive_stream_seed, ReplayStream, StreamSource};
pub use stream::{DataStream, MiniBatch, StreamExt};
