//! Page–Hinkley test, a classical sequential change detector.
//!
//! Accumulates the deviations of the observed error indicator from its
//! running mean (minus a tolerance `delta`); when the accumulated sum rises
//! more than `lambda` above its historical minimum, a change is signalled.

use crate::{DetectorState, DriftDetector, Observation};

/// Configuration of [`PageHinkley`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageHinkleyConfig {
    /// Minimum number of instances before the test activates.
    pub min_instances: u64,
    /// Magnitude tolerance δ subtracted from each deviation.
    pub delta: f64,
    /// Detection threshold λ.
    pub lambda: f64,
    /// Forgetting factor applied to the cumulative sum (1.0 = none).
    pub alpha: f64,
}

impl Default for PageHinkleyConfig {
    fn default() -> Self {
        PageHinkleyConfig { min_instances: 30, delta: 0.005, lambda: 50.0, alpha: 0.999 }
    }
}

/// The Page–Hinkley change detector.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    config: PageHinkleyConfig,
    n: u64,
    mean: f64,
    cumulative: f64,
    minimum: f64,
    state: DetectorState,
}

impl PageHinkley {
    /// Creates a detector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(PageHinkleyConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    pub fn with_config(config: PageHinkleyConfig) -> Self {
        assert!(config.lambda > 0.0);
        assert!(config.alpha > 0.0 && config.alpha <= 1.0);
        PageHinkley {
            config,
            n: 0,
            mean: 0.0,
            cumulative: 0.0,
            minimum: f64::MAX,
            state: DetectorState::Stable,
        }
    }
}

impl Default for PageHinkley {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for PageHinkley {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let x = if observation.correct { 0.0 } else { 1.0 };
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.cumulative = self.config.alpha * self.cumulative + (x - self.mean - self.config.delta);
        if self.cumulative < self.minimum {
            self.minimum = self.cumulative;
        }
        self.state = if self.n >= self.config.min_instances
            && self.cumulative - self.minimum > self.config.lambda
        {
            let c = self.config;
            *self = PageHinkley::with_config(c);
            DetectorState::Drift
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = PageHinkley::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "PageHinkley"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("n", self.n.serialize_value()),
            ("mean", self.mean.serialize_value()),
            ("cumulative", self.cumulative.serialize_value()),
            ("minimum", self.minimum.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.n = state.field("n")?;
        self.mean = state.field("mean")?;
        self.cumulative = state.field("cumulative")?;
        self.minimum = state.field("minimum")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_abrupt_change, assert_quiet_on_stationary, run_error_stream,
    };

    #[test]
    fn detects_abrupt_error_increase() {
        assert_detects_abrupt_change(&mut PageHinkley::new(), 800, 2);
    }

    #[test]
    fn quiet_on_stationary_stream() {
        assert_quiet_on_stationary(&mut PageHinkley::new(), 1);
    }

    #[test]
    fn lower_lambda_reacts_faster() {
        let fast_cfg = PageHinkleyConfig { lambda: 10.0, ..Default::default() };
        let slow_cfg = PageHinkleyConfig { lambda: 200.0, ..Default::default() };
        let d_fast =
            run_error_stream(&mut PageHinkley::with_config(fast_cfg), 0.1, 0.5, 2000, 5000, 5);
        let d_slow =
            run_error_stream(&mut PageHinkley::with_config(slow_cfg), 0.1, 0.5, 2000, 5000, 5);
        let delay = |d: &Vec<usize>| {
            d.iter().find(|&&p| p >= 2000).map(|&p| p - 2000).unwrap_or(usize::MAX)
        };
        assert!(delay(&d_fast) < delay(&d_slow));
    }

    #[test]
    fn improvement_does_not_trigger() {
        assert!(run_error_stream(&mut PageHinkley::new(), 0.5, 0.05, 3000, 6000, 2).is_empty());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ph = PageHinkley::new();
        run_error_stream(&mut ph, 0.1, 0.7, 500, 2000, 1);
        ph.reset();
        assert_eq!(ph.state(), DetectorState::Stable);
        assert_eq!(ph.name(), "PageHinkley");
    }

    #[test]
    #[should_panic]
    fn invalid_lambda_rejected() {
        PageHinkley::with_config(PageHinkleyConfig { lambda: 0.0, ..Default::default() });
    }
}
