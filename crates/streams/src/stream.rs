//! The [`DataStream`] trait and streaming utilities (mini-batching,
//! takes, collection helpers).
//!
//! Streams in this crate are *pull-based* and potentially infinite: a
//! generator produces a new [`Instance`] on every call to
//! [`DataStream::next_instance`]. Experiment code bounds them explicitly
//! with [`StreamExt::take_instances`] or by iterating a fixed count.

use crate::instance::{Instance, StreamSchema};

/// A (potentially infinite) source of labeled instances.
pub trait DataStream {
    /// Produces the next instance, or `None` if the stream is exhausted
    /// (synthetic generators never exhaust; bounded wrappers do).
    fn next_instance(&mut self) -> Option<Instance>;

    /// Static schema of the stream.
    fn schema(&self) -> &StreamSchema;

    /// Restarts the stream from its initial state (same seed ⇒ same
    /// sequence). Wrappers propagate the restart to their inner streams.
    fn restart(&mut self);
}

/// A mini-batch of consecutive instances, the unit on which RBM-IM trains
/// and detects (paper Sec. V-A: "RBM-IM model for learning on mini-batches").
#[derive(Debug, Clone, PartialEq)]
pub struct MiniBatch {
    /// The instances in arrival order.
    pub instances: Vec<Instance>,
    /// Index of the first instance of the batch within the stream.
    pub start_index: u64,
}

impl MiniBatch {
    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Per-class instance counts, indexed by class id.
    pub fn class_counts(&self, num_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_classes];
        for inst in &self.instances {
            if inst.class < num_classes {
                counts[inst.class] += 1;
            }
        }
        counts
    }

    /// Iterates over instances belonging to the given class.
    pub fn instances_of_class(&self, class: usize) -> impl Iterator<Item = &Instance> {
        self.instances.iter().filter(move |i| i.class == class)
    }
}

/// Extension helpers available on every [`DataStream`].
pub trait StreamExt: DataStream {
    /// Collects up to `n` instances into a vector (fewer if the stream
    /// exhausts first).
    fn take_instances(&mut self, n: usize) -> Vec<Instance> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_instance() {
                Some(inst) => out.push(inst),
                None => break,
            }
        }
        out
    }

    /// Collects the next `batch_size` instances into a [`MiniBatch`].
    /// Returns `None` if the stream produces no further instances; a final
    /// partial batch is returned as-is.
    fn next_batch(&mut self, batch_size: usize) -> Option<MiniBatch> {
        assert!(batch_size > 0, "batch size must be > 0");
        let mut instances = Vec::with_capacity(batch_size);
        let mut start_index = None;
        for _ in 0..batch_size {
            match self.next_instance() {
                Some(inst) => {
                    if start_index.is_none() {
                        start_index = Some(inst.index);
                    }
                    instances.push(inst);
                }
                None => break,
            }
        }
        if instances.is_empty() {
            None
        } else {
            Some(MiniBatch { instances, start_index: start_index.unwrap_or(0) })
        }
    }

    /// Empirical class distribution over the next `n` instances. The stream
    /// is advanced by `n` instances (or until exhaustion).
    fn empirical_class_distribution(&mut self, n: usize) -> Vec<f64> {
        let k = self.schema().num_classes;
        let mut counts = vec![0usize; k];
        let mut total = 0usize;
        for _ in 0..n {
            match self.next_instance() {
                Some(inst) => {
                    if inst.class < k {
                        counts[inst.class] += 1;
                        total += 1;
                    }
                }
                None => break,
            }
        }
        if total == 0 {
            vec![0.0; k]
        } else {
            counts.iter().map(|&c| c as f64 / total as f64).collect()
        }
    }
}

impl<T: DataStream + ?Sized> StreamExt for T {}

/// A bounded wrapper that stops a stream after a fixed number of instances.
pub struct BoundedStream<S> {
    inner: S,
    limit: u64,
    emitted: u64,
}

impl<S: DataStream> BoundedStream<S> {
    /// Wraps `inner`, limiting it to `limit` instances.
    pub fn new(inner: S, limit: u64) -> Self {
        BoundedStream { inner, limit, emitted: 0 }
    }

    /// Consumes the wrapper and returns the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: DataStream> DataStream for BoundedStream<S> {
    fn next_instance(&mut self) -> Option<Instance> {
        if self.emitted >= self.limit {
            return None;
        }
        let inst = self.inner.next_instance()?;
        self.emitted += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        self.inner.schema()
    }

    fn restart(&mut self) {
        self.inner.restart();
        self.emitted = 0;
    }
}

/// Boxed-stream support so heterogeneous benchmark collections can be stored
/// in one registry (lifetime-generic so scoped, borrowing streams box too).
impl<'s> DataStream for Box<dyn DataStream + Send + 's> {
    fn next_instance(&mut self) -> Option<Instance> {
        (**self).next_instance()
    }

    fn schema(&self) -> &StreamSchema {
        (**self).schema()
    }

    fn restart(&mut self) {
        (**self).restart()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial deterministic stream cycling over classes for testing.
    struct CyclingStream {
        schema: StreamSchema,
        counter: u64,
    }

    impl CyclingStream {
        fn new(num_classes: usize) -> Self {
            CyclingStream { schema: StreamSchema::new("cycle", 2, num_classes), counter: 0 }
        }
    }

    impl DataStream for CyclingStream {
        fn next_instance(&mut self) -> Option<Instance> {
            let class = (self.counter as usize) % self.schema.num_classes;
            let inst =
                Instance::with_index(vec![self.counter as f64, class as f64], class, self.counter);
            self.counter += 1;
            Some(inst)
        }
        fn schema(&self) -> &StreamSchema {
            &self.schema
        }
        fn restart(&mut self) {
            self.counter = 0;
        }
    }

    #[test]
    fn take_instances_and_restart() {
        let mut s = CyclingStream::new(3);
        let first = s.take_instances(5);
        assert_eq!(first.len(), 5);
        assert_eq!(first[4].class, 1);
        s.restart();
        let again = s.take_instances(5);
        assert_eq!(first, again);
    }

    #[test]
    fn mini_batch_collection_and_counts() {
        let mut s = CyclingStream::new(3);
        let batch = s.next_batch(7).unwrap();
        assert_eq!(batch.len(), 7);
        assert_eq!(batch.start_index, 0);
        assert_eq!(batch.class_counts(3), vec![3, 2, 2]);
        assert_eq!(batch.instances_of_class(0).count(), 3);
        let batch2 = s.next_batch(3).unwrap();
        assert_eq!(batch2.start_index, 7);
    }

    #[test]
    fn empirical_distribution_of_cycling_stream_is_uniform() {
        let mut s = CyclingStream::new(4);
        let dist = s.empirical_class_distribution(400);
        for p in dist {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_stream_stops_and_restarts() {
        let mut s = BoundedStream::new(CyclingStream::new(2), 4);
        assert_eq!(s.take_instances(100).len(), 4);
        assert!(s.next_instance().is_none());
        assert!(s.next_batch(5).is_none());
        s.restart();
        assert_eq!(s.take_instances(100).len(), 4);
        assert_eq!(s.schema().name, "cycle");
    }

    #[test]
    fn boxed_stream_is_usable() {
        let mut boxed: Box<dyn DataStream + Send> = Box::new(CyclingStream::new(2));
        assert!(boxed.next_instance().is_some());
        boxed.restart();
        assert_eq!(boxed.schema().num_classes, 2);
        assert_eq!(boxed.take_instances(3).len(), 3);
    }

    #[test]
    fn partial_final_batch_is_returned() {
        let mut s = BoundedStream::new(CyclingStream::new(2), 5);
        let b1 = s.next_batch(3).unwrap();
        assert_eq!(b1.len(), 3);
        let b2 = s.next_batch(3).unwrap();
        assert_eq!(b2.len(), 2);
        assert!(s.next_batch(3).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_rejected() {
        CyclingStream::new(2).next_batch(0);
    }

    #[test]
    fn empty_minibatch_reports_empty() {
        let b = MiniBatch { instances: vec![], start_index: 0 };
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.class_counts(3), vec![0, 0, 0]);
    }
}
