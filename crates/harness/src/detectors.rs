//! The closed enum of the paper's detectors — now a thin compatibility shim
//! over the open [`DetectorRegistry`].
//!
//! `DetectorKind` remains convenient for enumerating the paper's line-up
//! (Table II / Table III column order) and for serde round-trips of older
//! experiment configurations, but instantiation goes through the registry:
//! [`DetectorKind::spec`] names the registry entry and
//! [`DetectorKind::build`] resolves it. New detectors and tuned variants
//! register with the registry directly and never touch this enum.

use crate::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_detectors::DriftDetector;
use serde::{Deserialize, Serialize};

/// Every detector the harness can evaluate. The six `paper_detectors` are the
/// ones compared in Table III; the rest are available for extended studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Wilcoxon rank-sum test detector (reference, standard).
    Wstd,
    /// Reactive DDM (reference, standard).
    Rddm,
    /// Fast Hoeffding DDM (reference, standard).
    Fhddm,
    /// PerfSim (reference, skew-insensitive).
    PerfSim,
    /// DDM-OCI (reference, skew-insensitive).
    DdmOci,
    /// RBM-IM (the paper's contribution).
    RbmIm,
    /// Classical DDM.
    Ddm,
    /// Early DDM.
    Eddm,
    /// ADWIN.
    Adwin,
    /// Hoeffding-bound detector, averages test.
    HddmA,
    /// Hoeffding-bound detector, weighted test.
    HddmW,
    /// Page–Hinkley.
    PageHinkley,
    /// CUSUM.
    Cusum,
    /// EWMA for concept drift detection.
    Ecdd,
}

impl DetectorKind {
    /// The six detectors evaluated in Table III, in the paper's column order.
    pub fn paper_detectors() -> Vec<DetectorKind> {
        vec![
            DetectorKind::Wstd,
            DetectorKind::Rddm,
            DetectorKind::Fhddm,
            DetectorKind::PerfSim,
            DetectorKind::DdmOci,
            DetectorKind::RbmIm,
        ]
    }

    /// Every detector kind known to the harness.
    pub fn all() -> Vec<DetectorKind> {
        vec![
            DetectorKind::Wstd,
            DetectorKind::Rddm,
            DetectorKind::Fhddm,
            DetectorKind::PerfSim,
            DetectorKind::DdmOci,
            DetectorKind::RbmIm,
            DetectorKind::Ddm,
            DetectorKind::Eddm,
            DetectorKind::Adwin,
            DetectorKind::HddmA,
            DetectorKind::HddmW,
            DetectorKind::PageHinkley,
            DetectorKind::Cusum,
            DetectorKind::Ecdd,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorKind::Wstd => "WSTD",
            DetectorKind::Rddm => "RDDM",
            DetectorKind::Fhddm => "FHDDM",
            DetectorKind::PerfSim => "PerfSim",
            DetectorKind::DdmOci => "DDM-OCI",
            DetectorKind::RbmIm => "RBM-IM",
            DetectorKind::Ddm => "DDM",
            DetectorKind::Eddm => "EDDM",
            DetectorKind::Adwin => "ADWIN",
            DetectorKind::HddmA => "HDDM-A",
            DetectorKind::HddmW => "HDDM-W",
            DetectorKind::PageHinkley => "PageHinkley",
            DetectorKind::Cusum => "CUSUM",
            DetectorKind::Ecdd => "ECDD",
        }
    }

    /// Whether the detector is one of the skew-insensitive methods.
    pub fn skew_insensitive(&self) -> bool {
        matches!(self, DetectorKind::PerfSim | DetectorKind::DdmOci | DetectorKind::RbmIm)
    }

    /// The registry spec naming this detector (default parameters).
    pub fn spec(&self) -> DetectorSpec {
        DetectorSpec::new(self.name())
    }

    /// Instantiates the detector for a stream with the given schema, by
    /// resolving [`DetectorKind::spec`] against the default registry.
    pub fn build(&self, num_features: usize, num_classes: usize) -> Box<dyn DriftDetector + Send> {
        DetectorRegistry::global()
            .build(&self.spec(), num_features, num_classes)
            .expect("every DetectorKind is registered in the default registry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_detectors::Observation;

    #[test]
    fn paper_detector_list_matches_table_two() {
        let names: Vec<&str> = DetectorKind::paper_detectors().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["WSTD", "RDDM", "FHDDM", "PerfSim", "DDM-OCI", "RBM-IM"]);
    }

    #[test]
    fn every_kind_builds_and_updates() {
        let features = vec![0.1, 0.2, 0.3, 0.4];
        for kind in DetectorKind::all() {
            let mut detector = kind.build(4, 3);
            assert_eq!(detector.name(), kind.name());
            for i in 0..120usize {
                let obs = Observation::new(&features, i % 3, (i + 1) % 3);
                detector.update(&obs);
            }
            detector.reset();
        }
    }

    #[test]
    fn skew_insensitive_flags() {
        assert!(DetectorKind::RbmIm.skew_insensitive());
        assert!(DetectorKind::PerfSim.skew_insensitive());
        assert!(DetectorKind::DdmOci.skew_insensitive());
        assert!(!DetectorKind::Wstd.skew_insensitive());
        assert!(!DetectorKind::Adwin.skew_insensitive());
    }

    #[test]
    fn serde_round_trip() {
        let kind = DetectorKind::RbmIm;
        let json = serde_json::to_string(&kind).unwrap();
        let back: DetectorKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
    }
}
