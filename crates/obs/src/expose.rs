//! Prometheus-text exposition and the `std::net` scrape listener.
//!
//! [`render_prometheus`] turns metric snapshots into text-format 0.0.4
//! exposition (`# TYPE` per family, cumulative `_bucket{le=…}` /
//! `_sum` / `_count` for histograms). [`ObsServer`] is a deliberately
//! minimal HTTP endpoint: any request on the socket gets a `200 OK`
//! `text/plain` exposition and the connection is closed — enough for a
//! Prometheus scrape job or `curl`, with no routing, TLS, or keep-alive.
//!
//! Duration histograms follow the naming convention established in
//! [`crate::registry`]: families suffixed `_seconds` record integer
//! nanoseconds and are divided by 1e9 here, so the wire/Value layer stays
//! exact-integer while scrapes read SI seconds.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::registry::{MetricId, MetricsRegistry, MetricsSnapshot};

/// Formats a sample value. Prometheus text values must parse as Go floats
/// and must never leak `NaN` into dashboards; non-finite inputs render as
/// 0 (they can only arise from a corrupted snapshot).
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

fn write_type_header(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        last.clear();
        last.push_str(name);
    }
}

fn render_histogram(out: &mut String, id: &MetricId, snap: &HistogramSnapshot) {
    // `_seconds` families are recorded in nanoseconds (see crate docs).
    let scale = if id.name.ends_with("_seconds") { 1e-9 } else { 1.0 };
    let mut label_parts: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    let mut cumulative = 0u64;
    for (i, &count) in snap.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        let le = bucket_upper_bound(i) as f64 * scale;
        label_parts.push(format!("le=\"{}\"", fmt_value(le)));
        out.push_str(&format!("{}_bucket{{{}}} {}\n", id.name, label_parts.join(","), cumulative));
        label_parts.pop();
    }
    label_parts.push("le=\"+Inf\"".to_string());
    out.push_str(&format!("{}_bucket{{{}}} {}\n", id.name, label_parts.join(","), cumulative));
    label_parts.pop();
    let suffix = id.label_suffix();
    out.push_str(&format!("{}_sum{} {}\n", id.name, suffix, fmt_value(snap.sum as f64 * scale)));
    out.push_str(&format!("{}_count{} {}\n", id.name, suffix, cumulative));
}

/// Renders one merged snapshot in Prometheus text format. Families are
/// emitted in sorted order with a single `# TYPE` line each.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last = String::new();
    for (id, v) in &snapshot.counters {
        write_type_header(&mut out, &mut last, &id.name, "counter");
        out.push_str(&format!("{}{} {}\n", id.name, id.label_suffix(), v));
    }
    last.clear();
    for (id, v) in &snapshot.gauges {
        write_type_header(&mut out, &mut last, &id.name, "gauge");
        out.push_str(&format!("{}{} {}\n", id.name, id.label_suffix(), v));
    }
    last.clear();
    for (id, h) in &snapshot.histograms {
        write_type_header(&mut out, &mut last, &id.name, "histogram");
        render_histogram(&mut out, id, h);
    }
    out
}

/// Snapshots every source registry, merges, and renders the exposition —
/// the body served by [`ObsServer`], also directly callable from tests.
pub fn scrape_text(sources: &[Arc<MetricsRegistry>]) -> String {
    let mut merged = MetricsSnapshot::default();
    for source in sources {
        merged.merge(&source.snapshot());
    }
    render_prometheus(&merged)
}

/// Minimal Prometheus scrape listener over plain `std::net`.
///
/// ```no_run
/// use std::sync::Arc;
/// use rbm_im_obs::{MetricsRegistry, ObsServer};
///
/// let registry = Arc::new(MetricsRegistry::new());
/// let obs = ObsServer::serve("127.0.0.1:0", vec![Arc::clone(&registry)]).unwrap();
/// println!("scrape me at http://{}/metrics", obs.local_addr());
/// // … run the workload …
/// obs.shutdown();
/// ```
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves the
    /// exposition for `sources` until [`ObsServer::shutdown`].
    pub fn serve(
        addr: impl ToSocketAddrs,
        sources: Vec<Arc<MetricsRegistry>>,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new().name("obs-scrape".into()).spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Scrapes are tiny and rare; serving them inline keeps the
                // listener single-threaded and failure-contained.
                let _ = serve_one(stream, &sources);
            }
        })?;
        Ok(ObsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads (and discards) the request head, then writes the exposition.
fn serve_one(mut stream: TcpStream, sources: &[Arc<MetricsRegistry>]) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = [0u8; 4096];
    let mut filled = 0usize;
    // Read until the blank line ending the request head, EOF, cap, or
    // timeout — whatever arrives first; the reply ignores the request.
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if head[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = scrape_text(sources);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[("shard", "0")]).add(5);
        reg.gauge("b_depth", &[]).set(-3);
        let h = reg.histogram("c_seconds", &[("shard", "1")]);
        h.record(1_000_000); // 1 ms
        let text = scrape_text(&[Arc::new(reg)]);
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{shard=\"0\"} 5"));
        assert!(text.contains("# TYPE b_depth gauge"));
        assert!(text.contains("b_depth -3"));
        assert!(text.contains("# TYPE c_seconds histogram"));
        assert!(text.contains("c_seconds_bucket{shard=\"1\",le=\"+Inf\"} 1"));
        assert!(text.contains("c_seconds_count{shard=\"1\"} 1"));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn fmt_value_never_emits_non_finite() {
        assert_eq!(fmt_value(f64::NAN), "0");
        assert_eq!(fmt_value(f64::INFINITY), "0");
        assert_eq!(fmt_value(2.0), "2");
        assert_eq!(fmt_value(0.25), "0.25");
    }
}
