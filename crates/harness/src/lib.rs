//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Sec. VI) from the building blocks in the other crates.
//!
//! | Paper artifact | Module | Binary / bench |
//! |---|---|---|
//! | Table I (benchmark inventory) | [`rbm_im_streams::registry`] | `cargo run -p rbm-im-harness --release --bin table1` |
//! | Table III (pmAUC / pmGM / timing, 6 detectors × 24 streams) | [`experiment1`] | `--bin experiment1`, bench `table3_detectors` |
//! | Fig. 4 & 5 (Bonferroni–Dunn ranks) | [`experiment1`] | `--bin experiment1` |
//! | Fig. 6 & 7 (Bayesian signed tests) | [`experiment1`] | `--bin experiment1` |
//! | Fig. 8 (pmAUC vs number of locally drifting classes) | [`experiment2`] | `--bin experiment2`, bench `fig8_local_drift` |
//! | Fig. 9 (pmAUC vs imbalance ratio) | [`experiment3`] | `--bin experiment3`, bench `fig9_imbalance` |
//! | Detector overhead (Table III bottom rows) | [`runner`] timing fields | bench `detector_overhead` |
//! | Design-choice ablations (DESIGN.md) | [`ablation`] | bench `ablation_rbm` |
//!
//! The harness scales stream lengths down by default (`BuildConfig::default`)
//! so the complete Table III regenerates in minutes on a laptop; pass
//! `--scale 1` to the binaries for paper-scale streams.

#![warn(missing_docs)]

pub mod ablation;
pub mod detectors;
pub mod experiment1;
pub mod experiment2;
pub mod experiment3;
pub mod report;
pub mod runner;
pub mod tuning;

pub use detectors::DetectorKind;
pub use runner::{run_detector_on_stream, RunConfig, RunResult};
