//! Incremental Gaussian naive Bayes.
//!
//! Maintains per-class, per-feature running means and variances (Welford)
//! and class priors; prediction combines the Gaussian log-likelihoods with
//! the log prior. Used as a lightweight reference learner in tests,
//! examples and ablations, and as the leaf fallback in the perceptron tree
//! before a leaf's perceptron has seen enough data.

use crate::{softmax_in_place, OnlineClassifier};
use rbm_im_streams::Instance;

/// Running Gaussian summary of one feature for one class.
#[derive(Debug, Clone, Default)]
struct FeatureStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl FeatureStats {
    fn update(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn variance(&self) -> f64 {
        if self.count < 2 {
            1.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(1e-6)
        }
    }

    fn log_likelihood(&self, x: f64) -> f64 {
        let var = self.variance();
        let diff = x - self.mean;
        -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var)
    }
}

/// Incremental Gaussian naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    num_features: usize,
    num_classes: usize,
    /// `stats[class][feature]`.
    stats: Vec<Vec<FeatureStats>>,
    class_counts: Vec<u64>,
    total: u64,
}

impl GaussianNaiveBayes {
    /// Creates an untrained model.
    pub fn new(num_features: usize, num_classes: usize) -> Self {
        assert!(num_features > 0);
        assert!(num_classes >= 2);
        GaussianNaiveBayes {
            num_features,
            num_classes,
            stats: vec![vec![FeatureStats::default(); num_features]; num_classes],
            class_counts: vec![0; num_classes],
            total: 0,
        }
    }

    /// Number of training instances seen so far.
    pub fn total_seen(&self) -> u64 {
        self.total
    }

    /// Laplace-smoothed log prior of a class.
    fn log_prior(&self, class: usize) -> f64 {
        ((self.class_counts[class] + 1) as f64 / (self.total + self.num_classes as u64) as f64).ln()
    }
}

impl OnlineClassifier for GaussianNaiveBayes {
    fn predict_scores(&self, features: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_scores_into(features, &mut out);
        out
    }

    fn predict_scores_into(&self, features: &[f64], out: &mut Vec<f64>) {
        assert_eq!(features.len(), self.num_features, "feature count mismatch");
        out.clear();
        out.extend((0..self.num_classes).map(|c| {
            let mut lp = self.log_prior(c);
            if self.class_counts[c] > 0 {
                for (f, stat) in features.iter().zip(self.stats[c].iter()) {
                    lp += stat.log_likelihood(*f);
                }
            }
            lp
        }));
        softmax_in_place(out);
    }

    fn learn(&mut self, instance: &Instance) {
        assert_eq!(instance.features.len(), self.num_features, "feature count mismatch");
        assert!(instance.class < self.num_classes, "class out of range");
        self.class_counts[instance.class] += 1;
        self.total += 1;
        for (f, stat) in instance.features.iter().zip(self.stats[instance.class].iter_mut()) {
            stat.update(*f);
        }
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn reset(&mut self) {
        *self = GaussianNaiveBayes::new(self.num_features, self.num_classes);
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        let stats: Vec<Value> = self
            .stats
            .iter()
            .map(|per_class| {
                Value::Array(
                    per_class
                        .iter()
                        .map(|s| {
                            Value::object(vec![
                                ("count", s.count.serialize_value()),
                                ("mean", s.mean.serialize_value()),
                                ("m2", s.m2.serialize_value()),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        Some(Value::object(vec![
            ("num_features", self.num_features.serialize_value()),
            ("num_classes", self.num_classes.serialize_value()),
            ("stats", Value::Array(stats)),
            ("class_counts", self.class_counts.serialize_value()),
            ("total", self.total.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let num_features: usize = state.field("num_features")?;
        let num_classes: usize = state.field("num_classes")?;
        if num_features != self.num_features || num_classes != self.num_classes {
            return Err(serde::Error::msg(format!(
                "naive bayes shape mismatch: snapshot is {num_features}×{num_classes}, model is \
                 {}×{}",
                self.num_features, self.num_classes
            )));
        }
        let serde::Value::Array(per_class_values) = state.req("stats")? else {
            return Err(serde::Error::msg("naive bayes `stats` must be an array"));
        };
        if per_class_values.len() != self.num_classes {
            return Err(serde::Error::msg("naive bayes `stats` class count mismatch"));
        }
        let mut stats = Vec::with_capacity(self.num_classes);
        for per_class in per_class_values {
            let serde::Value::Array(features) = per_class else {
                return Err(serde::Error::msg("naive bayes per-class stats must be an array"));
            };
            if features.len() != self.num_features {
                return Err(serde::Error::msg("naive bayes `stats` feature count mismatch"));
            }
            let mut row = Vec::with_capacity(self.num_features);
            for value in features {
                row.push(FeatureStats {
                    count: value.field("count")?,
                    mean: value.field("mean")?,
                    m2: value.field("m2")?,
                });
            }
            stats.push(row);
        }
        self.stats = stats;
        self.class_counts = state.field("class_counts")?;
        self.total = state.field("total")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_streams::generators::GaussianMixtureGenerator;
    use rbm_im_streams::StreamExt;

    #[test]
    fn separable_gaussians_are_classified_correctly() {
        let mut nb = GaussianNaiveBayes::new(2, 2);
        for i in 0..500 {
            let t = i as f64 * 0.001;
            nb.learn(&Instance::new(vec![0.0 + t, 0.0 - t], 0));
            nb.learn(&Instance::new(vec![10.0 + t, 10.0 - t], 1));
        }
        assert_eq!(nb.predict(&[0.5, -0.5]), 0);
        assert_eq!(nb.predict(&[9.5, 10.5]), 1);
        assert_eq!(nb.total_seen(), 1000);
    }

    #[test]
    fn untrained_model_is_uniform() {
        let nb = GaussianNaiveBayes::new(3, 4);
        let s = nb.predict_scores(&[1.0, 2.0, 3.0]);
        for p in &s {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn scores_sum_to_one_and_favor_likely_class() {
        let mut nb = GaussianNaiveBayes::new(1, 2);
        for _ in 0..200 {
            nb.learn(&Instance::new(vec![0.0], 0));
            nb.learn(&Instance::new(vec![5.0], 1));
        }
        let s = nb.predict_scores(&[0.1]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[0] > 0.95);
    }

    #[test]
    fn priors_reflect_imbalance() {
        let mut nb = GaussianNaiveBayes::new(1, 2);
        // Identical feature distributions; only the prior differs 9:1.
        for i in 0..1000 {
            let class = if i % 10 == 0 { 1 } else { 0 };
            nb.learn(&Instance::new(vec![(i % 7) as f64], class));
        }
        let s = nb.predict_scores(&[3.0]);
        assert!(s[0] > s[1], "majority prior should dominate when likelihoods are equal");
    }

    #[test]
    fn mixture_stream_accuracy_is_reasonable() {
        let mut stream = GaussianMixtureGenerator::balanced(5, 3, 1, 11);
        let train = stream.take_instances(3000);
        let test = stream.take_instances(500);
        let mut nb = GaussianNaiveBayes::new(5, 3);
        for inst in &train {
            nb.learn(inst);
        }
        let acc = test.iter().filter(|i| nb.predict(&i.features) == i.class).count() as f64
            / test.len() as f64;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn reset_restores_uniform_predictions() {
        let mut nb = GaussianNaiveBayes::new(2, 2);
        for _ in 0..100 {
            nb.learn(&Instance::new(vec![1.0, 1.0], 0));
        }
        nb.reset();
        let s = nb.predict_scores(&[1.0, 1.0]);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert_eq!(nb.total_seen(), 0);
    }

    #[test]
    #[should_panic]
    fn class_out_of_range_rejected() {
        GaussianNaiveBayes::new(2, 2).learn(&Instance::new(vec![0.0, 0.0], 7));
    }
}
