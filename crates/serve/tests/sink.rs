//! `SnapshotSink` durability contract: codec equivalence and error paths.
//!
//! Background spills are only worth having if a warm restart can trust
//! them, so every failure mode must surface as a clean error naming the
//! offending file: truncated spills, corrupt bytes, future codec
//! versions, unwritable directories. And the two codecs must be perfectly
//! interchangeable — a checkpoint spilled as JSON and one spilled as
//! binary restore the *same* pipeline.

use rbm_im_harness::checkpoint::codec::{CheckpointCodec, BINARY_MAGIC};
use rbm_im_harness::checkpoint::PipelineCheckpoint;
use rbm_im_harness::pipeline::{PipelineEvent, RunConfig};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_harness::stepper::PipelineStepper;
use rbm_im_serve::{SnapshotSink, StreamCheckpoint};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, StreamExt};
use std::fs;
use std::path::{Path, PathBuf};

/// A unique scratch directory under the target-adjacent temp root.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rbm-sink-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small warmed checkpoint to spill (500 instances, ADWIN so it is
/// cheap).
fn sample_checkpoint(stream: &str) -> StreamCheckpoint {
    sample_checkpoint_at(stream, 500)
}

/// A warmed checkpoint capturing exactly `instances` processed instances.
fn sample_checkpoint_at(stream: &str, instances: usize) -> StreamCheckpoint {
    let mut gen = RandomRbfGenerator::new(6, 3, 2, 0.0, 11);
    let schema = gen.schema().clone();
    let spec = DetectorSpec::parse("adwin(delta=0.01)").unwrap();
    let run = RunConfig { metric_window: 100, detector_batch: 10, ..Default::default() };
    let mut stepper =
        PipelineStepper::from_spec(DetectorRegistry::global(), &spec, &schema, run).unwrap();
    let mut sink = |_: &PipelineEvent<'_>| {};
    for instance in gen.take_instances(instances) {
        stepper.step(instance, &mut sink);
    }
    StreamCheckpoint {
        stream: stream.to_string(),
        checkpoint: PipelineCheckpoint::capture(&stepper, schema, spec).unwrap(),
    }
}

fn checkpoint_file(dir: &Path, suffix: &str) -> PathBuf {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.to_string_lossy().ends_with(suffix))
        .unwrap_or_else(|| panic!("no *{suffix} in {}", dir.display()))
}

#[test]
fn json_and_binary_spills_restore_the_same_checkpoint() {
    let checkpoint = sample_checkpoint("feed-a");

    let json_dir = scratch("json");
    let json_sink = SnapshotSink::with_codec(&json_dir, CheckpointCodec::Json).unwrap();
    let json_path = json_sink.spill_checkpoint(&checkpoint).unwrap();
    assert!(json_path.to_string_lossy().ends_with(".checkpoint.json"));

    let bin_dir = scratch("bin");
    let bin_sink = SnapshotSink::with_codec(&bin_dir, CheckpointCodec::Binary).unwrap();
    assert_eq!(bin_sink.codec(), CheckpointCodec::Binary);
    let bin_path = bin_sink.spill_checkpoint(&checkpoint).unwrap();
    assert!(bin_path.to_string_lossy().ends_with(".checkpoint.bin"));

    // The binary spill carries the magic and is much smaller than the
    // pretty JSON spill.
    let bin_bytes = fs::read(&bin_path).unwrap();
    let json_bytes = fs::read(&json_path).unwrap();
    assert_eq!(&bin_bytes[..4], &BINARY_MAGIC);
    assert!(
        bin_bytes.len() * 4 <= json_bytes.len(),
        "binary ({}) must be ≥4× smaller than the JSON spill ({})",
        bin_bytes.len(),
        json_bytes.len()
    );

    // Loading is codec-agnostic and the payloads are identical.
    let from_json = json_sink.load_checkpoints().unwrap();
    let from_bin = bin_sink.load_checkpoints().unwrap();
    assert_eq!(from_json, from_bin);
    assert_eq!(from_bin[0], checkpoint);
    assert_eq!(bin_sink.load_checkpoint("feed-a").unwrap().unwrap(), checkpoint);
    assert!(bin_sink.load_checkpoint("missing").unwrap().is_none());

    let _ = fs::remove_dir_all(json_dir);
    let _ = fs::remove_dir_all(bin_dir);
}

#[test]
fn switching_codecs_replaces_the_old_spill_atomically() {
    let dir = scratch("switch");
    let checkpoint = sample_checkpoint("feed-b");
    SnapshotSink::with_codec(&dir, CheckpointCodec::Json)
        .unwrap()
        .spill_checkpoint(&checkpoint)
        .unwrap();
    // Re-spill the same stream with the binary codec: the JSON file must
    // be gone, or a later load would see a stale duplicate.
    SnapshotSink::with_codec(&dir, CheckpointCodec::Binary)
        .unwrap()
        .spill_checkpoint(&checkpoint)
        .unwrap();
    let loaded = SnapshotSink::new(&dir).unwrap().load_checkpoints().unwrap();
    assert_eq!(loaded.len(), 1, "stale other-codec spill must have been replaced");
    assert_eq!(loaded[0], checkpoint);
    // No leftover temp files from the atomic write protocol.
    for entry in fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(!name.to_string_lossy().ends_with(".tmp"), "leftover temp file {name:?}");
    }
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn crash_window_duplicate_spills_dedupe_by_freshest_position() {
    // Simulate a crash between a spill's rename and its stale-file
    // cleanup: both codecs' files exist for one stream. Loading must
    // return exactly one checkpoint per stream — the one capturing the
    // later position, whichever direction the codec switch went — so a
    // cold restart never restores a stream twice or from stale state.
    let dir = scratch("crash-window");
    let older = sample_checkpoint_at("feed-f", 300);
    let fresh = sample_checkpoint_at("feed-f", 500);

    // Json -> Binary switch: stale JSON (older position) resurrected
    // beside the fresh binary spill.
    let json_sink = SnapshotSink::with_codec(&dir, CheckpointCodec::Json).unwrap();
    let json_path = json_sink.spill_checkpoint(&older).unwrap();
    let stale_bytes = fs::read(&json_path).unwrap();
    let bin_sink = SnapshotSink::with_codec(&dir, CheckpointCodec::Binary).unwrap();
    bin_sink.spill_checkpoint(&fresh).unwrap();
    fs::write(&json_path, &stale_bytes).unwrap();
    let loaded = bin_sink.load_checkpoints().unwrap();
    assert_eq!(loaded.len(), 1, "one checkpoint per stream, not one per file");
    assert_eq!(loaded[0], fresh, "the later-position spill must win");
    assert_eq!(bin_sink.load_checkpoint("feed-f").unwrap().unwrap(), fresh);

    // Binary -> Json switch: stale binary (older position) resurrected
    // beside the fresh JSON spill — the JSON one must win now.
    let dir2 = scratch("crash-window-reverse");
    let bin_sink = SnapshotSink::with_codec(&dir2, CheckpointCodec::Binary).unwrap();
    let bin_path = bin_sink.spill_checkpoint(&older).unwrap();
    let stale_bytes = fs::read(&bin_path).unwrap();
    let json_sink = SnapshotSink::with_codec(&dir2, CheckpointCodec::Json).unwrap();
    json_sink.spill_checkpoint(&fresh).unwrap();
    fs::write(&bin_path, &stale_bytes).unwrap();
    let loaded = json_sink.load_checkpoints().unwrap();
    assert_eq!(loaded.len(), 1);
    assert_eq!(loaded[0], fresh, "freshness must beat the binary preference");
    assert_eq!(json_sink.load_checkpoint("feed-f").unwrap().unwrap(), fresh);

    let _ = fs::remove_dir_all(dir);
    let _ = fs::remove_dir_all(dir2);
}

#[test]
fn opening_a_sink_sweeps_orphan_tmp_files() {
    // A crash (or injected ENOSPC) between the atomic-write protocol's
    // temp write and its rename leaves a `*.checkpoint.<ext>.tmp` orphan
    // behind. The next sink opened on the directory must sweep those so
    // debris never accumulates — while leaving real checkpoints and
    // unrelated files alone.
    let dir = scratch("tmp-sweep");
    let sink = SnapshotSink::with_codec(&dir, CheckpointCodec::Binary).unwrap();
    let checkpoint = sample_checkpoint("feed-g");
    sink.spill_checkpoint(&checkpoint).unwrap();
    fs::write(dir.join("feed-g.checkpoint.bin.tmp"), b"half-written").unwrap();
    fs::write(dir.join("other.checkpoint.json.tmp"), b"half-written").unwrap();
    fs::write(dir.join("notes.tmp"), b"not checkpoint debris").unwrap();

    let reopened = SnapshotSink::with_codec(&dir, CheckpointCodec::Binary).unwrap();
    assert!(!dir.join("feed-g.checkpoint.bin.tmp").exists(), "orphan binary tmp must be swept");
    assert!(!dir.join("other.checkpoint.json.tmp").exists(), "orphan json tmp must be swept");
    assert!(dir.join("notes.tmp").exists(), "non-checkpoint tmp files are not ours to delete");
    assert_eq!(
        reopened.load_checkpoint("feed-g").unwrap().unwrap(),
        checkpoint,
        "the real checkpoint must survive the sweep"
    );
    // Loading the full directory sees exactly the one real spill.
    assert_eq!(reopened.load_checkpoints().unwrap().len(), 1);
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn unwritable_directory_is_a_clean_error() {
    // A *file* where the sink directory should be: create_dir_all fails.
    let parent = scratch("unwritable");
    fs::create_dir_all(&parent).unwrap();
    let blocker = parent.join("occupied");
    fs::write(&blocker, b"not a directory").unwrap();
    assert!(SnapshotSink::new(&blocker).is_err(), "file in place of dir must fail to open");
    assert!(
        SnapshotSink::new(blocker.join("nested")).is_err(),
        "dir under a file must fail to open"
    );

    // A sink whose directory vanished after opening fails at spill, not
    // with a panic or a silent no-op.
    let vanishing = parent.join("vanishing");
    let sink = SnapshotSink::new(&vanishing).unwrap();
    fs::remove_dir_all(&vanishing).unwrap();
    assert!(sink.spill_checkpoint(&sample_checkpoint("feed-c")).is_err());
    let _ = fs::remove_dir_all(parent);
}

#[test]
fn truncated_and_corrupt_spills_error_at_load() {
    for codec in [CheckpointCodec::Binary, CheckpointCodec::Json] {
        let dir = scratch(&format!("corrupt-{codec}"));
        let sink = SnapshotSink::with_codec(&dir, codec).unwrap();
        sink.spill_checkpoint(&sample_checkpoint("feed-d")).unwrap();
        let path = checkpoint_file(&dir, &format!(".checkpoint.{}", codec.extension()));

        // Truncate to half: load must fail and name the file.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = sink.load_checkpoints().expect_err("truncated spill must not load");
        assert!(err.to_string().contains("checkpoint."), "error should name the file: {err}");
        let err = sink.load_checkpoint("feed-d").expect_err("single load must also fail");
        assert!(err.to_string().contains("checkpoint."), "{err}");

        // Arbitrary garbage: same clean failure.
        fs::write(&path, b"\xff\xfe\xfdgarbage").unwrap();
        assert!(sink.load_checkpoints().is_err());
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn future_codec_version_is_a_clean_error() {
    let dir = scratch("version");
    let sink = SnapshotSink::with_codec(&dir, CheckpointCodec::Binary).unwrap();
    sink.spill_checkpoint(&sample_checkpoint("feed-e")).unwrap();
    let path = checkpoint_file(&dir, ".checkpoint.bin");
    let mut bytes = fs::read(&path).unwrap();
    // Bump the version field (bytes 4–5, little endian) to a future one.
    bytes[4] = 0x2A;
    bytes[5] = 0x00;
    fs::write(&path, &bytes).unwrap();
    let err = sink.load_checkpoints().expect_err("future version must not load");
    let message = err.to_string();
    assert!(
        message.contains("version 42") && message.contains("not supported"),
        "version mismatch must be explicit: {message}"
    );
    let _ = fs::remove_dir_all(dir);
}

// ---- metric-history rotation -----------------------------------------------

use rbm_im_metrics::PrequentialSnapshot;
use rbm_im_serve::MetricRetention;

fn snapshot_at(position: u64) -> PrequentialSnapshot {
    PrequentialSnapshot { position, pm_auc: 0.9, pm_gmean: 0.8, accuracy: 0.95, kappa: 0.7 }
}

/// Size-based rotation: the live file seals into numbered generations
/// (newest = `.1`), generations beyond the keep count fall off, and
/// `load_metrics` reads what is kept oldest-first — a contiguous suffix
/// of the appended history, in append order.
#[test]
fn size_rotation_keeps_a_bounded_ordered_suffix() {
    let dir = scratch("rotate-size");
    let sink = SnapshotSink::new(&dir).unwrap().with_retention(MetricRetention {
        max_bytes: 1,
        keep_rotations: 2,
        max_age: None,
    });

    // max_bytes=1: every enforcement rotates, so each generation holds
    // exactly one line.
    let mut rotations = 0;
    for position in 0..5u64 {
        sink.spill_snapshot("feed", position, &snapshot_at(position)).unwrap();
        if sink.enforce_metric_retention("feed").unwrap() {
            rotations += 1;
        }
    }
    assert_eq!(rotations, 5, "every spill exceeded max_bytes");
    assert!(dir.join("feed.metrics.1.jsonl").exists(), "newest sealed generation");
    assert!(dir.join("feed.metrics.2.jsonl").exists(), "oldest kept generation");
    assert!(!dir.join("feed.metrics.3.jsonl").exists(), "beyond keep_rotations is dropped");
    assert!(!dir.join("feed.metrics.jsonl").exists(), "live file was just sealed");

    let history = sink.load_metrics("feed").unwrap();
    let positions: Vec<u64> = history.iter().map(|(p, _)| *p).collect();
    assert_eq!(positions, vec![3, 4], "kept generations, oldest first");
    assert_eq!(history[1].1, snapshot_at(4), "snapshot payloads survive rotation");

    // Appends continue into a fresh live file; load stays ordered.
    sink.spill_snapshot("feed", 5, &snapshot_at(5)).unwrap();
    let positions: Vec<u64> = sink.load_metrics("feed").unwrap().iter().map(|(p, _)| *p).collect();
    assert_eq!(positions, vec![3, 4, 5]);
    let _ = fs::remove_dir_all(dir);
}

/// `keep_rotations: 0` makes rotation a pure truncation.
#[test]
fn zero_keep_rotations_truncates_the_history() {
    let dir = scratch("rotate-zero");
    let sink = SnapshotSink::new(&dir).unwrap().with_retention(MetricRetention {
        max_bytes: 1,
        keep_rotations: 0,
        max_age: None,
    });
    sink.spill_snapshot("feed", 1, &snapshot_at(1)).unwrap();
    assert!(sink.enforce_metric_retention("feed").unwrap());
    assert!(sink.load_metrics("feed").unwrap().is_empty());
    assert!(
        fs::read_dir(&dir).unwrap().next().is_none(),
        "truncation leaves no metric files at all"
    );
    let _ = fs::remove_dir_all(dir);
}

/// Age-based rotation seals a live file regardless of its size.
#[test]
fn age_rotation_seals_small_but_old_files() {
    let dir = scratch("rotate-age");
    let sink = SnapshotSink::new(&dir).unwrap().with_retention(MetricRetention {
        max_bytes: u64::MAX,
        keep_rotations: 1,
        max_age: Some(std::time::Duration::ZERO),
    });
    sink.spill_snapshot("feed", 7, &snapshot_at(7)).unwrap();
    assert!(sink.enforce_metric_retention("feed").unwrap(), "age 0 rotates immediately");
    assert!(dir.join("feed.metrics.1.jsonl").exists());
    assert_eq!(
        sink.load_metrics("feed").unwrap().iter().map(|(p, _)| *p).collect::<Vec<_>>(),
        vec![7]
    );
    let _ = fs::remove_dir_all(dir);
}

/// Enforcement is a no-op without a policy, without a live file, and
/// inside the size/age bounds; and a retention-less sink still reads the
/// sealed generations a configured process left behind.
#[test]
fn retention_noops_and_cross_process_generation_reads() {
    let dir = scratch("rotate-noop");
    let plain = SnapshotSink::new(&dir).unwrap();
    assert!(!plain.enforce_metric_retention("feed").unwrap(), "no policy, no rotation");

    let sink = SnapshotSink::new(&dir).unwrap().with_retention(MetricRetention {
        max_bytes: 10_000,
        keep_rotations: 2,
        max_age: None,
    });
    assert!(!sink.enforce_metric_retention("feed").unwrap(), "no live file, no rotation");
    sink.spill_snapshot("feed", 1, &snapshot_at(1)).unwrap();
    assert!(!sink.enforce_metric_retention("feed").unwrap(), "inside the bounds");

    // Force a rotation, then read through a *retention-less* sink.
    let tight = SnapshotSink::new(&dir).unwrap().with_retention(MetricRetention {
        max_bytes: 1,
        keep_rotations: 2,
        max_age: None,
    });
    assert!(tight.enforce_metric_retention("feed").unwrap());
    sink.spill_snapshot("feed", 2, &snapshot_at(2)).unwrap();
    let positions: Vec<u64> = plain.load_metrics("feed").unwrap().iter().map(|(p, _)| *p).collect();
    assert_eq!(positions, vec![1, 2], "generations are readable without a policy");
    let _ = fs::remove_dir_all(dir);
}
