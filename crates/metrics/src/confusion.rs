//! Streaming (running) confusion matrix and the classification metrics
//! derived from it.

use serde::{Deserialize, Serialize};

/// A running multi-class confusion matrix.
///
/// `matrix[true][predicted]` counts how many instances of class `true` were
/// predicted as `predicted`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfusionMatrix {
    num_classes: usize,
    matrix: Vec<Vec<u64>>,
    total: u64,
}

impl StreamingConfusionMatrix {
    /// Creates an empty matrix for `num_classes` classes.
    ///
    /// # Panics
    /// Panics if `num_classes < 2`.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        StreamingConfusionMatrix {
            num_classes,
            matrix: vec![vec![0; num_classes]; num_classes],
            total: 0,
        }
    }

    /// Records one prediction.
    ///
    /// # Panics
    /// Panics if either label is out of range.
    pub fn record(&mut self, true_class: usize, predicted_class: usize) {
        assert!(true_class < self.num_classes, "true class {true_class} out of range");
        assert!(
            predicted_class < self.num_classes,
            "predicted class {predicted_class} out of range"
        );
        self.matrix[true_class][predicted_class] += 1;
        self.total += 1;
    }

    /// Removes a previously recorded prediction (used by sliding-window
    /// evaluators when an observation leaves the window).
    ///
    /// # Panics
    /// Panics if the corresponding cell is already zero.
    pub fn unrecord(&mut self, true_class: usize, predicted_class: usize) {
        assert!(true_class < self.num_classes && predicted_class < self.num_classes);
        assert!(self.matrix[true_class][predicted_class] > 0, "cannot unrecord an empty cell");
        self.matrix[true_class][predicted_class] -= 1;
        self.total -= 1;
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total number of recorded predictions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw count in cell `(true_class, predicted_class)`.
    pub fn count(&self, true_class: usize, predicted_class: usize) -> u64 {
        self.matrix[true_class][predicted_class]
    }

    /// Number of instances whose true class is `class`.
    pub fn class_support(&self, class: usize) -> u64 {
        self.matrix[class].iter().sum()
    }

    /// Overall accuracy (0.0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.num_classes).map(|c| self.matrix[c][c]).sum();
        correct as f64 / self.total as f64
    }

    /// Recall of one class (`None` when the class has no support yet).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let support = self.class_support(class);
        if support == 0 {
            None
        } else {
            Some(self.matrix[class][class] as f64 / support as f64)
        }
    }

    /// Precision of one class (`None` when nothing was predicted as it).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let predicted: u64 = (0..self.num_classes).map(|t| self.matrix[t][class]).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.matrix[class][class] as f64 / predicted as f64)
        }
    }

    /// Per-class recalls; classes without support are reported as `None`.
    pub fn recalls(&self) -> Vec<Option<f64>> {
        (0..self.num_classes).map(|c| self.recall(c)).collect()
    }

    /// Multi-class G-mean: the geometric mean of the recalls of all classes
    /// *with support* in the matrix. Returns 0.0 if no class has support, or
    /// if any supported class has zero recall (the standard, deliberately
    /// harsh behaviour that makes G-mean skew-sensitive in the right way).
    pub fn g_mean(&self) -> f64 {
        let recalls: Vec<f64> = self.recalls().into_iter().flatten().collect();
        if recalls.is_empty() {
            return 0.0;
        }
        let product: f64 = recalls.iter().product();
        if product <= 0.0 {
            0.0
        } else {
            product.powf(1.0 / recalls.len() as f64)
        }
    }

    /// Macro-averaged recall over supported classes (0.0 when empty).
    pub fn macro_recall(&self) -> f64 {
        let recalls: Vec<f64> = self.recalls().into_iter().flatten().collect();
        if recalls.is_empty() {
            0.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        }
    }

    /// Cohen's kappa agreement statistic (0.0 when empty or when the
    /// expected agreement is 1).
    pub fn kappa(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        let observed = self.accuracy();
        let mut expected = 0.0;
        for c in 0..self.num_classes {
            let row: u64 = self.matrix[c].iter().sum();
            let col: u64 = (0..self.num_classes).map(|t| self.matrix[t][c]).sum();
            expected += (row as f64 / total) * (col as f64 / total);
        }
        if (1.0 - expected).abs() < 1e-12 {
            0.0
        } else {
            (observed - expected) / (1.0 - expected)
        }
    }

    /// Resets all counts.
    pub fn reset(&mut self) {
        for row in self.matrix.iter_mut() {
            for cell in row.iter_mut() {
                *cell = 0;
            }
        }
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect(n: usize, per_class: u64) -> StreamingConfusionMatrix {
        let mut m = StreamingConfusionMatrix::new(n);
        for c in 0..n {
            for _ in 0..per_class {
                m.record(c, c);
            }
        }
        m
    }

    #[test]
    fn perfect_classifier_metrics() {
        let m = perfect(4, 25);
        assert_eq!(m.total(), 100);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.g_mean(), 1.0);
        assert_eq!(m.macro_recall(), 1.0);
        assert!((m.kappa() - 1.0).abs() < 1e-12);
        for c in 0..4 {
            assert_eq!(m.recall(c), Some(1.0));
            assert_eq!(m.precision(c), Some(1.0));
            assert_eq!(m.class_support(c), 25);
        }
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = StreamingConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.g_mean(), 0.0);
        assert_eq!(m.kappa(), 0.0);
        assert_eq!(m.recall(0), None);
        assert_eq!(m.precision(0), None);
        assert_eq!(m.num_classes(), 3);
    }

    #[test]
    fn known_binary_example() {
        // TP=40 (1→1), TN=45 (0→0), FP=5 (0→1), FN=10 (1→0)
        let mut m = StreamingConfusionMatrix::new(2);
        for _ in 0..45 {
            m.record(0, 0);
        }
        for _ in 0..5 {
            m.record(0, 1);
        }
        for _ in 0..10 {
            m.record(1, 0);
        }
        for _ in 0..40 {
            m.record(1, 1);
        }
        assert!((m.accuracy() - 0.85).abs() < 1e-12);
        assert!((m.recall(1).unwrap() - 0.8).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 0.9).abs() < 1e-12);
        assert!((m.precision(1).unwrap() - 40.0 / 45.0).abs() < 1e-12);
        assert!((m.g_mean() - (0.8_f64 * 0.9).sqrt()).abs() < 1e-12);
        // Kappa: p_e = 0.5*0.55 + 0.5*0.45 = 0.5 → (0.85-0.5)/0.5 = 0.7
        assert!((m.kappa() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn gmean_zero_if_any_class_never_correct() {
        let mut m = StreamingConfusionMatrix::new(3);
        for _ in 0..50 {
            m.record(0, 0);
            m.record(1, 1);
            m.record(2, 0); // class 2 always wrong
        }
        assert_eq!(m.g_mean(), 0.0);
        assert!(m.macro_recall() > 0.6);
    }

    #[test]
    fn majority_guesser_has_zero_kappa() {
        // Predict class 0 always; true labels 90% class 0, 10% class 1.
        let mut m = StreamingConfusionMatrix::new(2);
        for _ in 0..90 {
            m.record(0, 0);
        }
        for _ in 0..10 {
            m.record(1, 0);
        }
        assert!((m.accuracy() - 0.9).abs() < 1e-12);
        assert!(
            m.kappa().abs() < 1e-12,
            "majority guessing must not earn kappa, got {}",
            m.kappa()
        );
        assert_eq!(m.g_mean(), 0.0);
    }

    #[test]
    fn unrecord_reverses_record() {
        let mut m = StreamingConfusionMatrix::new(2);
        m.record(0, 1);
        m.record(1, 1);
        m.unrecord(0, 1);
        assert_eq!(m.total(), 1);
        assert_eq!(m.count(0, 1), 0);
        assert_eq!(m.count(1, 1), 1);
    }

    #[test]
    fn reset_clears_counts() {
        let mut m = perfect(3, 5);
        m.reset();
        assert_eq!(m.total(), 0);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_rejected() {
        StreamingConfusionMatrix::new(2).record(5, 0);
    }

    #[test]
    #[should_panic]
    fn unrecord_empty_cell_rejected() {
        StreamingConfusionMatrix::new(2).unrecord(0, 0);
    }
}
