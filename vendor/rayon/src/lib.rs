//! Offline stand-in for `rayon`.
//!
//! Implements the small slice of the rayon API this workspace uses —
//! `par_iter` / `into_par_iter` followed by `map` / `for_each` / `collect`,
//! plus `ThreadPoolBuilder::install` for pinning the worker count — on top
//! of `std::thread::scope`. Work is split into contiguous chunks, one per
//! worker, and results are stitched back **in input order**, so `collect`
//! output is independent of the number of threads (the property the
//! harness's `run_grid` determinism test relies on).
//!
//! On top of the iterator shim, the crate exposes a **persistent worker
//! pool** ([`parallel_chunks`], [`pool_threads`], [`ensure_pool`]) for hot
//! kernels: the scoped-thread shim spawns OS threads per call, which is
//! fine for coarse grid work but ruinous (and allocating) inside a CD-k
//! kernel that runs thousands of times per second. The pool spins up once
//! (sized from `RAYON_NUM_THREADS`, else available parallelism), after
//! which dispatching a job performs **no heap allocation**: the job is a
//! type-erased pointer to a caller-stack closure published under a single
//! mutex, chunks are claimed under that mutex, and the caller participates
//! and blocks until every chunk has retired — so the closure never
//! outlives its borrows.

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|n| {
        n.get().unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        })
    })
}

// ---------------------------------------------------------------------------
// Persistent kernel pool
// ---------------------------------------------------------------------------

/// A published parallel job: a type-erased pointer to a `Fn(usize) + Sync`
/// closure living on the posting thread's stack, plus the chunk count and
/// the number of pool workers allowed to help. The posting thread does not
/// return until every chunk has retired, so the pointer never dangles while
/// reachable.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    chunks: usize,
    max_workers: usize,
}

// SAFETY: `data` points at a `Sync` closure; the retirement protocol in
// `parallel_chunks` guarantees it is only dereferenced while the posting
// thread keeps it alive.
unsafe impl Send for Job {}

unsafe fn call_chunk<F: Fn(usize) + Sync>(data: *const (), index: usize) {
    let f = unsafe { &*(data as *const F) };
    f(index);
}

#[derive(Default)]
struct PoolState {
    /// Currently published job, if any. `None` between jobs; a new job can
    /// only be published once the previous one has fully retired.
    job: Option<Job>,
    /// Bumped on every publish; workers use it to avoid re-entering a
    /// generation they already left.
    generation: u64,
    /// Next unclaimed chunk index of the current job.
    next_chunk: usize,
    /// Chunks currently executing (claimed, not yet retired).
    running: usize,
    /// Pool workers admitted to the current generation (capped by
    /// `Job::max_workers`).
    admitted: usize,
    /// Set when any chunk panicked; the posting thread re-panics.
    panicked: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation.
    work_ready: Condvar,
    /// Posters wait here for job retirement (and for the slot to free up).
    work_done: Condvar,
    /// Total pool parallelism including the posting thread.
    threads: usize,
}

static POOL: OnceLock<&'static PoolShared> = OnceLock::new();
/// Minimum pool size requested via [`ensure_pool`] before first spin-up.
static POOL_MIN: AtomicUsize = AtomicUsize::new(0);

/// Pool size from the environment: `RAYON_NUM_THREADS` if set to a positive
/// integer, else `std::thread::available_parallelism`. Cached after the
/// first read — `env::var` allocates, and [`pool_threads`] sits on the
/// allocation-free kernel dispatch path.
fn env_pool_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            })
    })
}

fn pool_shared() -> &'static PoolShared {
    POOL.get_or_init(|| {
        let threads = env_pool_threads().max(POOL_MIN.load(Ordering::SeqCst)).max(1);
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            threads,
        }));
        for _ in 1..threads {
            std::thread::Builder::new()
                .name("rayon-pool-worker".into())
                .spawn(move || pool_worker(shared))
                .expect("failed to spawn pool worker");
        }
        shared
    })
}

/// The persistent pool's total parallelism (worker threads + the posting
/// thread). Does **not** spin the pool up: before first use it reports the
/// size the pool *would* get (`RAYON_NUM_THREADS`, else available
/// parallelism, else 1).
pub fn pool_threads() -> usize {
    POOL.get()
        .map(|s| s.threads)
        .unwrap_or_else(|| env_pool_threads().max(POOL_MIN.load(Ordering::SeqCst)).max(1))
}

/// Guarantees the pool, once spun up, has at least `min_threads` total
/// parallelism — even on machines with fewer cores (threads are then
/// oversubscribed, which costs throughput but preserves semantics; the
/// equivalence suites use this to genuinely exercise the parallel code
/// paths on 1-core CI runners). Returns the pool's effective size. Calling
/// this after the pool has already spun up cannot grow it.
pub fn ensure_pool(min_threads: usize) -> usize {
    if POOL.get().is_none() {
        POOL_MIN.fetch_max(min_threads, Ordering::SeqCst);
    }
    pool_shared().threads
}

fn pool_worker(shared: &'static PoolShared) {
    let mut last_generation = 0u64;
    let mut st = shared.state.lock().expect("pool state poisoned");
    loop {
        while st.generation == last_generation || st.job.is_none() {
            st = shared.work_ready.wait(st).expect("pool state poisoned");
        }
        last_generation = st.generation;
        let job = st.job.expect("checked above");
        if st.admitted >= job.max_workers {
            continue; // over-subscribed for this generation; wait for the next
        }
        st.admitted += 1;
        loop {
            // `generation` cannot move while we have a chunk running (the
            // poster waits for `running == 0`), so this check only trips
            // between generations — exactly when stale claims must stop.
            if st.generation != last_generation || st.job.is_none() || st.next_chunk >= job.chunks {
                break;
            }
            let index = st.next_chunk;
            st.next_chunk += 1;
            st.running += 1;
            drop(st);
            // SAFETY: the posting thread keeps the closure alive until
            // `running` returns to 0, which cannot happen before we retire.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (job.call)(job.data, index)
            }));
            st = shared.state.lock().expect("pool state poisoned");
            st.running -= 1;
            if outcome.is_err() {
                st.panicked = true;
            }
            if st.next_chunk >= job.chunks && st.running == 0 {
                shared.work_done.notify_all();
            }
        }
    }
}

/// Runs `f(0..chunks)` across the persistent pool, with at most
/// `max_workers` pool workers helping the calling thread (so effective
/// parallelism is `min(chunks, max_workers + 1, pool_threads())`). Blocks
/// until every chunk has finished. Chunks are claimed dynamically, so `f`
/// must not depend on which thread runs which chunk — only on the chunk
/// index. After the pool's one-time spin-up, dispatching performs no heap
/// allocation.
///
/// Concurrent calls from different threads are serialized (one job in
/// flight at a time). Must **not** be called from inside a chunk closure —
/// there is no nested parallelism, and a nested post would deadlock waiting
/// for its own enclosing job to retire.
pub fn parallel_chunks<F: Fn(usize) + Sync>(chunks: usize, max_workers: usize, f: F) {
    if chunks == 0 {
        return;
    }
    if chunks == 1 || max_workers == 0 || pool_threads() == 1 {
        for index in 0..chunks {
            f(index);
        }
        return;
    }
    let shared = pool_shared();
    let job = Job { data: &f as *const F as *const (), call: call_chunk::<F>, chunks, max_workers };
    let mut st = shared.state.lock().expect("pool state poisoned");
    while st.job.is_some() {
        // Another thread's job is in flight; wait for the slot.
        st = shared.work_done.wait(st).expect("pool state poisoned");
    }
    st.job = Some(job);
    st.generation = st.generation.wrapping_add(1);
    st.next_chunk = 0;
    st.running = 0;
    st.admitted = 0;
    st.panicked = false;
    shared.work_ready.notify_all();
    // Participate in our own job.
    let mut own_panic = None;
    loop {
        if st.next_chunk >= chunks {
            break;
        }
        let index = st.next_chunk;
        st.next_chunk += 1;
        st.running += 1;
        drop(st);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index)));
        st = shared.state.lock().expect("pool state poisoned");
        st.running -= 1;
        if let Err(payload) = outcome {
            st.panicked = true;
            own_panic = Some(payload);
        }
    }
    while !(st.next_chunk >= chunks && st.running == 0) {
        st = shared.work_done.wait(st).expect("pool state poisoned");
    }
    let panicked = st.panicked;
    st.job = None;
    shared.work_done.notify_all(); // wake queued posters
    drop(st);
    if let Some(payload) = own_panic {
        std::panic::resume_unwind(payload);
    }
    if panicked {
        panic!("parallel_chunks: a pool worker panicked while running a chunk");
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (infallible here, kept for API
/// compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped "thread pool" (really: a worker-count override).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A handle that pins the worker count for closures run via
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count active on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|n| {
            let previous = n.get();
            n.set(self.num_threads);
            let result = op();
            n.set(previous);
            result
        })
    }

    /// The worker count parallel operations under this pool will use.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        })
    }
}

/// Order-preserving parallel map: applies `f` to every item, splitting the
/// input into one contiguous chunk per worker thread.
fn parallel_map_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = current_num_threads().max(1);
    if workers == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let chunk_size = total.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    // Split back-to-front so each drain is O(chunk).
    while !items.is_empty() {
        let at = items.len().saturating_sub(chunk_size);
        chunks.push(items.split_off(at));
    }
    chunks.reverse();
    let f = &f;
    let mut results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon stub worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(total);
    for part in results.iter_mut() {
        out.append(part);
    }
    out
}

/// A to-be-executed parallel iterator (eagerly materialized item list plus a
/// deferred mapping).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item (deferred until a consumer runs). The bounds are
    /// stated here (not only on the consumers) so closure parameter types
    /// infer at the call site, like real rayon.
    pub fn map<R, F>(self, f: F) -> MappedParIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MappedParIter { items: self.items, f }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map_indexed(self.items, f);
    }

    /// Collects the items (identity pipeline).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator.
pub struct MappedParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MappedParIter<T, F> {
    /// Executes the map in parallel and collects in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        parallel_map_indexed(self.items, self.f).into_iter().collect()
    }

    /// Executes the map and discards results.
    pub fn for_each<R, G>(self, g: G)
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        G: Fn(R) + Sync,
    {
        let f = self.f;
        parallel_map_indexed(self.items, move |item| g(f(item)));
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Borrowing parallel iteration (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// The usual rayon prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let work = |n: usize| -> Vec<usize> {
            (0..97usize).collect::<Vec<_>>().into_par_iter().map(move |x| x * n).collect()
        };
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| work(3));
        let many = ThreadPoolBuilder::new().num_threads(7).build().unwrap().install(|| work(3));
        assert_eq!(single, many);
    }

    #[test]
    fn install_restores_previous_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let outside = current_num_threads();
        pool.install(|| assert_eq!(current_num_threads(), 2));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn pool_chunks_visit_every_index_exactly_once() {
        assert!(ensure_pool(3) >= 3);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        parallel_chunks(64, 2, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "chunk {i} ran a wrong number of times");
        }
    }

    #[test]
    fn pool_handles_degenerate_shapes() {
        ensure_pool(2);
        parallel_chunks(0, 4, |_| panic!("no chunks must run"));
        let ran = AtomicUsize::new(0);
        parallel_chunks(1, 4, |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        parallel_chunks(3, 0, |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pool_serializes_concurrent_posters() {
        ensure_pool(2);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        parallel_chunks(8, 1, |_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * 50 * 8);
    }

    #[test]
    fn pool_reports_at_least_one_thread() {
        assert!(pool_threads() >= 1);
    }
}
