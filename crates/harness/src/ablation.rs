//! Ablation studies of RBM-IM's design choices (DESIGN.md §4, last row).
//!
//! The paper motivates three ingredients: the class-balanced loss, the
//! trainable (continuously retrained) network, and the per-class
//! trend/Granger detection with a self-adaptive window. This module measures
//! how drift-detection quality on a Scenario-3 stream changes when each
//! ingredient is weakened:
//!
//! * `full` — the default configuration;
//! * `no_class_balance` — β → tiny, making every class weight ≈ 1;
//! * `no_persistence` — the persistence guard disabled (fires on a single
//!   over-threshold batch);
//! * `coarse_batches` — a 4× larger mini-batch (slower reactions);
//! * `fixed_window` — the ADWIN confidence made so strict that the adaptive
//!   window effectively never shrinks, leaving only the fixed-length
//!   regression window;
//! * `deep_chain` — CD-3 instead of CD-1, probing whether a deeper negative
//!   phase sharpens the reconstruction-error signal (cheap now that the
//!   flat-kernel trainer batches each Gibbs step into whole-batch GEMMs).

use crate::pipeline::{PipelineBuilder, RunConfig};
use rbm_im::network::RbmNetworkConfig;
use rbm_im::{RbmIm, RbmImConfig};
use rbm_im_classifiers::GaussianNaiveBayes;
use rbm_im_metrics::{evaluate_detections, DetectionQuality};
use rbm_im_streams::scenarios::{scenario3, ScenarioConfig};
use rbm_im_streams::DataStream;
use serde::{Deserialize, Serialize};

/// One ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AblationVariant {
    /// Default RBM-IM.
    Full,
    /// Class-balanced loss disabled (all class weights ≈ 1).
    NoClassBalance,
    /// Persistence guard disabled.
    NoPersistence,
    /// 4× larger mini-batches.
    CoarseBatches,
    /// Effectively fixed (non-adaptive) trend window.
    FixedWindow,
    /// Deeper negative phase: CD-3 instead of CD-1. Affordable since the
    /// batched flat-kernel trainer (`rbm_im::linalg`) amortizes each extra
    /// Gibbs step into three GEMMs over the whole mini-batch.
    DeepChain,
}

impl AblationVariant {
    /// All variants, `Full` first.
    pub fn all() -> Vec<AblationVariant> {
        vec![
            AblationVariant::Full,
            AblationVariant::NoClassBalance,
            AblationVariant::NoPersistence,
            AblationVariant::CoarseBatches,
            AblationVariant::FixedWindow,
            AblationVariant::DeepChain,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AblationVariant::Full => "full",
            AblationVariant::NoClassBalance => "no-class-balance",
            AblationVariant::NoPersistence => "no-persistence",
            AblationVariant::CoarseBatches => "coarse-batches",
            AblationVariant::FixedWindow => "fixed-window",
            AblationVariant::DeepChain => "deep-chain",
        }
    }

    /// The RBM-IM configuration implementing this variant.
    pub fn config(&self) -> RbmImConfig {
        let base = RbmImConfig::default();
        match self {
            AblationVariant::Full => base,
            AblationVariant::NoClassBalance => RbmImConfig {
                network: RbmNetworkConfig { class_balance_beta: 1e-9, ..base.network },
                ..base
            },
            AblationVariant::NoPersistence => RbmImConfig { persistence: 1, ..base },
            AblationVariant::CoarseBatches => {
                RbmImConfig { mini_batch_size: base.mini_batch_size * 4, ..base }
            }
            AblationVariant::FixedWindow => RbmImConfig { adwin_delta: 1e-12, ..base },
            AblationVariant::DeepChain => {
                RbmImConfig { network: RbmNetworkConfig { gibbs_steps: 3, ..base.network }, ..base }
            }
        }
    }
}

/// Result of one ablation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResult {
    /// Which variant was run.
    pub variant: AblationVariant,
    /// Detection quality against the ground-truth drift positions.
    pub quality: DetectionQuality,
    /// Number of drift signals raised in total.
    pub signals: usize,
}

/// Runs one ablation variant on a Scenario-3 stream (local drift in the
/// smallest `classes_with_drift` classes) and scores it against the known
/// drift positions.
///
/// The variant runs through the [`PipelineBuilder`] like every other
/// experiment. RBM-IM only reads the features and the true class of each
/// observation, so the attached classifier cannot influence the detections;
/// a lightweight Gaussian naive Bayes keeps the run cheap, and
/// `reset_on_drift` is disabled because only the detector is under study.
pub fn run_ablation(
    variant: AblationVariant,
    scenario_config: &ScenarioConfig,
    classes_with_drift: usize,
    detection_horizon: u64,
) -> AblationResult {
    let scenario = scenario3(scenario_config, classes_with_drift);
    let schema = scenario.stream.schema().clone();
    let detector = RbmIm::new(schema.num_features, schema.num_classes, variant.config());
    let result = PipelineBuilder::new()
        .boxed_stream(scenario.stream)
        .classifier(GaussianNaiveBayes::new(schema.num_features, schema.num_classes))
        .detector(detector)
        .config(RunConfig { metric_window: 1000, reset_on_drift: false, ..Default::default() })
        .run()
        .expect("ablation pipeline is fully specified");
    let quality =
        evaluate_detections(&scenario.drift_positions, &result.detections, detection_horizon);
    AblationResult { variant, quality, signals: result.detections.len() }
}

/// Runs every ablation variant with the same scenario settings.
pub fn run_all_ablations(
    scenario_config: &ScenarioConfig,
    classes_with_drift: usize,
    detection_horizon: u64,
) -> Vec<AblationResult> {
    AblationVariant::all()
        .into_iter()
        .map(|v| run_ablation(v, scenario_config, classes_with_drift, detection_horizon))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> ScenarioConfig {
        ScenarioConfig {
            num_features: 8,
            num_classes: 4,
            length: 8_000,
            imbalance_ratio: 10.0,
            n_drifts: 1,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn variants_produce_distinct_configs() {
        let full = AblationVariant::Full.config();
        assert!(
            AblationVariant::NoClassBalance.config().network.class_balance_beta
                < full.network.class_balance_beta
        );
        assert_eq!(AblationVariant::NoPersistence.config().persistence, 1);
        assert_eq!(
            AblationVariant::CoarseBatches.config().mini_batch_size,
            full.mini_batch_size * 4
        );
        assert!(AblationVariant::FixedWindow.config().adwin_delta < full.adwin_delta);
        assert_eq!(AblationVariant::DeepChain.config().network.gibbs_steps, 3);
        assert_eq!(AblationVariant::all().len(), 6);
        assert_eq!(AblationVariant::Full.name(), "full");
        assert_eq!(AblationVariant::DeepChain.name(), "deep-chain");
    }

    #[test]
    fn ablation_run_scores_against_ground_truth() {
        let result = run_ablation(AblationVariant::Full, &tiny_scenario(), 2, 3_000);
        assert_eq!(result.quality.true_drifts, 1);
        assert!(result.quality.recall() >= 0.0 && result.quality.recall() <= 1.0);
        assert!(result.signals >= result.quality.detected);
    }

    #[test]
    fn no_persistence_variant_raises_at_least_as_many_signals() {
        let full = run_ablation(AblationVariant::Full, &tiny_scenario(), 2, 3_000);
        let eager = run_ablation(AblationVariant::NoPersistence, &tiny_scenario(), 2, 3_000);
        assert!(
            eager.signals >= full.signals,
            "removing the persistence guard cannot reduce the signal count (full {}, eager {})",
            full.signals,
            eager.signals
        );
    }
}
