//! Quickstart: monitor a drifting, imbalanced stream with the Pipeline API.
//!
//! Builds a 4-class RBF stream with a 10:1 imbalance, injects a sudden drift
//! into the *smallest class only* halfway through, and runs two pipelines on
//! identical copies of the stream: one driven by RBM-IM (which sees the
//! mini-batched feature distribution of every class) and one driven by DDM
//! (which only sees the classifier's global error rate). Drift events stream
//! out of the pipeline through an `on_event` sink, including the per-class
//! attribution RBM-IM provides.
//!
//! Run with: `cargo run -p rbm-im-harness --release --example quickstart`

use rbm_im_harness::pipeline::{PipelineBuilder, PipelineEvent, RunConfig};
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_streams::drift::local::{LocalDriftEvent, LocalDriftStream};
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
use rbm_im_streams::stream::BoundedStream;
use rbm_im_streams::DataStream;
use std::cell::RefCell;

/// The quickstart stream: 4 classes, geometric 10:1 imbalance, and a severe
/// local drift hitting only the smallest class (class 3) at t = 15 000.
/// Deterministic, so both pipelines see the identical sequence.
fn build_stream() -> impl DataStream + Send {
    let base = RandomRbfGenerator::new(10, 4, 3, 0.0, 7);
    let drift = LocalDriftEvent {
        affected_classes: vec![3],
        position: 15_000,
        width: 0,
        kind: DriftKind::Sudden,
        magnitude: 0.9,
    };
    // Imbalance first, local drift outermost, so the drift position refers
    // to the indices of the stream we actually iterate over.
    let imbalanced = ImbalancedStream::new(base, ImbalanceProfile::geometric(4, 10.0), 3);
    BoundedStream::new(LocalDriftStream::new(imbalanced, vec![drift], 11), 30_000)
}

fn main() {
    println!("streaming 30000 instances (local drift in class 3 at t = 15000)\n");
    let config = RunConfig { metric_window: 1000, ..Default::default() };

    // Pipeline 1: RBM-IM with a larger mini-batch (the minority class
    // contributes only a couple of instances to a default 50-instance
    // batch, so a larger batch gives its per-class error a stable
    // estimate). The tuned variant is a registry one-liner.
    let drift_log = RefCell::new(Vec::new());
    let rbm_result = PipelineBuilder::new()
        .stream(build_stream())
        .detector_spec(DetectorSpec::parse("rbm-im(mini_batch=100)").expect("valid spec"))
        .config(config)
        .on_event(|event| {
            if let PipelineEvent::Drift { position, classes } = event {
                drift_log.borrow_mut().push((*position, classes.to_vec()));
            }
        })
        .run()
        .expect("quickstart pipeline is fully specified");

    println!("RBM-IM raised {} drift signal(s):", rbm_result.drift_count());
    for (position, classes) in drift_log.borrow().iter() {
        println!("  at instance {position:>6}, affected classes {classes:?}");
    }

    // Pipeline 2: the same stream, same classifier, but a global
    // error-rate detector.
    let ddm_result = PipelineBuilder::new()
        .stream(build_stream())
        .detector_spec(DetectorSpec::new("ddm"))
        .config(config)
        .run()
        .expect("quickstart pipeline is fully specified");
    println!(
        "\nDDM (global error monitoring) raised {} drift signal(s): {:?}",
        ddm_result.drift_count(),
        ddm_result.detections
    );

    println!(
        "\npmAUC: RBM-IM-driven {:.2}%  vs  DDM-driven {:.2}%",
        rbm_result.pm_auc, ddm_result.pm_auc
    );
    let attributed = drift_log
        .borrow()
        .iter()
        .any(|(position, classes)| *position >= 15_000 && classes.contains(&3));
    if attributed {
        println!("=> the local minority-class drift was detected and attributed correctly.");
    } else {
        println!("=> the drift was not attributed to class 3 in this run; try a different seed.");
    }
}
