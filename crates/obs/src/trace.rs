//! Structured span tracing: ring-buffered begin/end records with
//! monotonic timestamps, drained to JSONL by whoever owns the sink.
//!
//! The tracer is for *slow-path* operations — checkpoint spills, resize
//! migrations, park/replay phases — so it favours simplicity over
//! lock-freedom: a mutexed ring of owned records, bounded by capacity
//! (oldest spans drop first). Timestamps are nanoseconds since the
//! tracer's construction, from `Instant` (monotonic, never wall-clock),
//! so traces from one process order totally and are immune to clock
//! steps.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use serde::Value;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (`"spill"`, `"resize.park"`, …).
    pub span: String,
    /// Free-form detail (stream id, shard index, …); empty when n/a.
    pub detail: String,
    /// Start offset in nanoseconds since tracer construction.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

impl TraceEvent {
    /// Renders the span as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let value = Value::object(vec![
            ("span", Value::String(self.span.clone())),
            ("detail", Value::String(self.detail.clone())),
            ("start_ns", Value::from_u64_hex(self.start_ns)),
            ("dur_ns", Value::from_u64_hex(self.dur_ns)),
        ]);
        serde_json::to_string(&value).expect("trace event serialization is infallible")
    }
}

/// Bounded ring buffer of completed spans.
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` undrained spans.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
        }
    }

    /// Nanoseconds since tracer construction (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Begins a span; finish it with [`SpanTimer::finish`].
    pub fn span(&self, span: &str, detail: &str) -> SpanTimer<'_> {
        SpanTimer {
            tracer: self,
            span: span.to_string(),
            detail: detail.to_string(),
            start_ns: self.now_ns(),
        }
    }

    /// Records an already-timed span.
    pub fn record(&self, span: &str, detail: &str, start_ns: u64, dur_ns: u64) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(TraceEvent {
            span: span.to_string(),
            detail: detail.to_string(),
            start_ns,
            dur_ns,
        });
    }

    /// Takes every buffered span, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().drain(..).collect()
    }

    /// Number of buffered (undrained) spans.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-flight span handle returned by [`Tracer::span`].
#[must_use = "call finish() to record the span"]
pub struct SpanTimer<'t> {
    tracer: &'t Tracer,
    span: String,
    detail: String,
    start_ns: u64,
}

impl SpanTimer<'_> {
    /// Ends the span and records it in the ring.
    pub fn finish(self) {
        let dur = self.tracer.now_ns().saturating_sub(self.start_ns);
        self.tracer.record(&self.span, &self.detail, self.start_ns, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_drain_in_order() {
        let tracer = Tracer::new(8);
        tracer.span("first", "a").finish();
        tracer.span("second", "").finish();
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].span, "first");
        assert_eq!(events[1].span, "second");
        assert!(events[0].start_ns <= events[1].start_ns);
        assert!(tracer.is_empty());
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let tracer = Tracer::new(2);
        tracer.record("a", "", 0, 1);
        tracer.record("b", "", 1, 1);
        tracer.record("c", "", 2, 1);
        let spans: Vec<String> = tracer.drain().into_iter().map(|e| e.span).collect();
        assert_eq!(spans, ["b", "c"]);
    }

    #[test]
    fn jsonl_line_parses_back() {
        let event =
            TraceEvent { span: "spill".into(), detail: "s-1".into(), start_ns: 5, dur_ns: 9 };
        let line = event.to_jsonl();
        let value = serde_json::parse_value(&line).unwrap();
        assert_eq!(value.req("span").unwrap(), &Value::String("spill".into()));
        assert_eq!(value.req("dur_ns").unwrap().as_u64_hex().unwrap(), 9);
    }
}
