//! Cost-sensitive multi-class online perceptron.
//!
//! One weight vector (plus bias) per class; prediction is the arg-max of the
//! linear scores, reported through a softmax so downstream AUC computation
//! receives calibrated-ish probabilities. The update is the classical
//! multi-class perceptron rule (promote the true class, demote the predicted
//! one on mistakes) with the learning rate scaled by the inverse relative
//! frequency of the true class — the cost-sensitivity mechanism used in the
//! paper's base classifier to avoid drowning minority classes.

use crate::{argmax, softmax_in_place, OnlineClassifier};
use rbm_im_streams::Instance;

/// Flat cost-sensitive multi-class perceptron.
#[derive(Debug, Clone)]
pub struct CostSensitivePerceptron {
    num_features: usize,
    num_classes: usize,
    learning_rate: f64,
    /// `weights[class][feature]`.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
    /// Per-class instance counts, used to derive misclassification costs.
    class_counts: Vec<u64>,
    total_seen: u64,
    /// Per-feature running mean/variance used for online standardization
    /// (streams such as Agrawal mix features of wildly different scales).
    feature_means: Vec<f64>,
    feature_m2: Vec<f64>,
}

impl CostSensitivePerceptron {
    /// Creates an untrained perceptron.
    pub fn new(num_features: usize, num_classes: usize, learning_rate: f64) -> Self {
        assert!(num_features > 0);
        assert!(num_classes >= 2);
        assert!(learning_rate > 0.0);
        CostSensitivePerceptron {
            num_features,
            num_classes,
            learning_rate,
            weights: vec![vec![0.0; num_features]; num_classes],
            biases: vec![0.0; num_classes],
            class_counts: vec![0; num_classes],
            total_seen: 0,
            feature_means: vec![0.0; num_features],
            feature_m2: vec![0.0; num_features],
        }
    }

    /// Misclassification cost of a class: `total / (num_classes * count)`,
    /// clamped to `[1, 100]`. Rare classes get proportionally larger
    /// updates; an unseen class gets the maximum cost.
    pub fn class_cost(&self, class: usize) -> f64 {
        if self.total_seen == 0 || self.class_counts[class] == 0 {
            return 100.0;
        }
        let cost =
            self.total_seen as f64 / (self.num_classes as f64 * self.class_counts[class] as f64);
        cost.clamp(1.0, 100.0)
    }

    fn standardize(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                if self.total_seen < 2 {
                    return x;
                }
                let var = self.feature_m2[i] / (self.total_seen - 1) as f64;
                if var <= 1e-12 {
                    x - self.feature_means[i]
                } else {
                    (x - self.feature_means[i]) / var.sqrt()
                }
            })
            .collect()
    }

    fn update_feature_stats(&mut self, features: &[f64]) {
        self.total_seen += 1;
        for (i, &x) in features.iter().enumerate() {
            let delta = x - self.feature_means[i];
            self.feature_means[i] += delta / self.total_seen as f64;
            self.feature_m2[i] += delta * (x - self.feature_means[i]);
        }
    }

    fn raw_score(&self, class: usize, standardized: &[f64]) -> f64 {
        self.biases[class]
            + self.weights[class].iter().zip(standardized.iter()).map(|(w, x)| w * x).sum::<f64>()
    }

    fn raw_scores(&self, standardized: &[f64]) -> Vec<f64> {
        (0..self.num_classes).map(|c| self.raw_score(c, standardized)).collect()
    }
}

impl OnlineClassifier for CostSensitivePerceptron {
    fn predict_scores(&self, features: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_scores_into(features, &mut out);
        out
    }

    fn predict_scores_into(&self, features: &[f64], out: &mut Vec<f64>) {
        assert_eq!(features.len(), self.num_features, "feature count mismatch");
        let standardized = self.standardize(features);
        out.clear();
        out.extend((0..self.num_classes).map(|c| self.raw_score(c, &standardized)));
        softmax_in_place(out);
    }

    fn learn(&mut self, instance: &Instance) {
        assert_eq!(instance.features.len(), self.num_features, "feature count mismatch");
        assert!(instance.class < self.num_classes, "class out of range");
        self.update_feature_stats(&instance.features);
        self.class_counts[instance.class] += 1;

        let x = self.standardize(&instance.features);
        let scores = self.raw_scores(&x);
        let predicted = argmax(&scores);
        if predicted != instance.class {
            let eta = self.learning_rate * self.class_cost(instance.class);
            for (w, xi) in self.weights[instance.class].iter_mut().zip(x.iter()) {
                *w += eta * xi;
            }
            self.biases[instance.class] += eta;
            for (w, xi) in self.weights[predicted].iter_mut().zip(x.iter()) {
                *w -= eta * xi;
            }
            self.biases[predicted] -= eta;
        }
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn reset(&mut self) {
        *self =
            CostSensitivePerceptron::new(self.num_features, self.num_classes, self.learning_rate);
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("num_features", self.num_features.serialize_value()),
            ("num_classes", self.num_classes.serialize_value()),
            ("weights", self.weights.serialize_value()),
            ("biases", self.biases.serialize_value()),
            ("class_counts", self.class_counts.serialize_value()),
            ("total_seen", self.total_seen.serialize_value()),
            ("feature_means", self.feature_means.serialize_value()),
            ("feature_m2", self.feature_m2.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let num_features: usize = state.field("num_features")?;
        let num_classes: usize = state.field("num_classes")?;
        if num_features != self.num_features || num_classes != self.num_classes {
            return Err(serde::Error::msg(format!(
                "perceptron shape mismatch: snapshot is {num_features}×{num_classes}, model is \
                 {}×{}",
                self.num_features, self.num_classes
            )));
        }
        self.weights = state.field("weights")?;
        self.biases = state.field("biases")?;
        self.class_counts = state.field("class_counts")?;
        self.total_seen = state.field("total_seen")?;
        self.feature_means = state.field("feature_means")?;
        self.feature_m2 = state.field("feature_m2")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rbm_im_streams::generators::GaussianMixtureGenerator;
    use rbm_im_streams::StreamExt;

    fn train_and_score(
        classifier: &mut dyn OnlineClassifier,
        train: &[Instance],
        test: &[Instance],
    ) -> f64 {
        for inst in train {
            classifier.learn(inst);
        }
        let correct = test.iter().filter(|i| classifier.predict(&i.features) == i.class).count();
        correct as f64 / test.len() as f64
    }

    #[test]
    fn learns_linearly_separable_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let make = |rng: &mut StdRng, n: usize| -> Vec<Instance> {
            (0..n)
                .map(|_| {
                    let class = rng.gen_range(0..3usize);
                    let offset = class as f64 * 5.0;
                    let features =
                        vec![offset + rng.gen_range(-1.0..1.0), offset + rng.gen_range(-1.0..1.0)];
                    Instance::new(features, class)
                })
                .collect()
        };
        let train = make(&mut rng, 2000);
        let test = make(&mut rng, 500);
        let mut p = CostSensitivePerceptron::new(2, 3, 0.1);
        let acc = train_and_score(&mut p, &train, &test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn learns_gaussian_mixture_stream() {
        let mut stream = GaussianMixtureGenerator::balanced(6, 4, 1, 9);
        let train = stream.take_instances(3000);
        let test = stream.take_instances(500);
        let mut p = CostSensitivePerceptron::new(6, 4, 0.05);
        let acc = train_and_score(&mut p, &train, &test);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn scores_are_probabilities() {
        let mut p = CostSensitivePerceptron::new(3, 4, 0.1);
        p.learn(&Instance::new(vec![1.0, 2.0, 3.0], 1));
        let s = p.predict_scores(&[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 4);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn minority_class_cost_is_larger() {
        let mut p = CostSensitivePerceptron::new(2, 2, 0.1);
        for i in 0..100 {
            let class = if i % 10 == 0 { 1 } else { 0 };
            p.learn(&Instance::new(vec![i as f64, 0.0], class));
        }
        assert!(p.class_cost(1) > p.class_cost(0));
        assert!(p.class_cost(0) >= 1.0);
        assert!(p.class_cost(1) <= 100.0);
    }

    #[test]
    fn unseen_class_has_max_cost() {
        let p = CostSensitivePerceptron::new(2, 3, 0.1);
        assert_eq!(p.class_cost(2), 100.0);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut p = CostSensitivePerceptron::new(2, 2, 0.1);
        for i in 0..200 {
            p.learn(&Instance::new(vec![i as f64, 1.0], (i % 2) as usize));
        }
        p.reset();
        let s = p.predict_scores(&[5.0, 1.0]);
        assert!((s[0] - 0.5).abs() < 1e-12, "reset model must be uninformative, got {s:?}");
        assert_eq!(p.num_classes(), 2);
    }

    #[test]
    #[should_panic]
    fn feature_count_mismatch_rejected() {
        let p = CostSensitivePerceptron::new(3, 2, 0.1);
        p.predict_scores(&[1.0]);
    }
}
