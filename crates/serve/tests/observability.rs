//! The serving plane's observability surface end-to-end: with
//! instrumentation force-enabled, ingest fills per-shard latency
//! histograms, [`ServerHandle::health`] summarizes them, a live resize
//! records its phase durations, and a plain HTTP scrape of [`ObsServer`]
//! returns Prometheus-text exposition carrying the per-shard quantiles.

use rbm_im_harness::registry::DetectorSpec;
use rbm_im_obs::{scrape_text, ObsServer};
use rbm_im_serve::{ServeConfig, ServerHandle};
use rbm_im_streams::{DataStream, StreamExt};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

#[test]
fn scrape_exposes_per_shard_ingest_quantiles_and_health() {
    rbm_im_obs::force_enabled(true);
    let server = ServerHandle::start(ServeConfig { num_shards: 2, ..Default::default() });
    let mut stream = rbm_im_streams::generators::GaussianMixtureGenerator::balanced(8, 3, 1, 7);
    let spec = DetectorSpec::parse("rbm(minibatch=25)").expect("spec");
    let client = server.attach("feed-00", stream.schema().clone(), &spec).expect("attach");
    for instance in stream.take_instances(300) {
        client.ingest(instance).expect("ingest");
    }
    server.drain();

    // In-process exposition: per-shard ingest latency histograms are live.
    let text = scrape_text(&[server.metrics()]);
    assert!(text.contains("# TYPE rbm_serve_ingest_latency_seconds histogram"), "{text}");
    assert!(text.contains("rbm_serve_ingest_latency_seconds_bucket{shard="), "{text}");
    assert!(text.contains("rbm_serve_processed_instances_total"), "{text}");
    assert!(!text.contains("NaN"), "no NaN leakage:\n{text}");

    // Health reads the same histograms back as quantiles.
    let health = server.health();
    assert_eq!(health.streams, 1);
    assert_eq!(health.shards.len(), 2);
    assert_eq!(health.shards.iter().map(|s| s.streams).sum::<usize>(), 1);
    assert!(health.ingest_p50_seconds > 0.0, "p50 = {}", health.ingest_p50_seconds);
    assert!(
        health.ingest_p99_seconds >= health.ingest_p50_seconds,
        "p99 {} >= p50 {}",
        health.ingest_p99_seconds,
        health.ingest_p50_seconds
    );
    assert_eq!(health.last_spill_age_seconds, -1.0, "no spill has happened");

    // A live resize records its phase durations.
    server.resize_shards(3).expect("resize");
    let resize = server.metrics().snapshot().merged_histogram("rbm_serve_resize_seconds");
    assert!(resize.count() >= 2, "park + restore phases recorded, got {}", resize.count());

    // A real scrape over HTTP serves the same exposition.
    let obs = ObsServer::serve("127.0.0.1:0", vec![server.metrics()]).expect("bind scrape");
    let mut conn = TcpStream::connect(obs.local_addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("response");
    obs.shutdown();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("rbm_serve_ingest_latency_seconds_bucket{shard=\"0\""), "{response}");

    rbm_im_obs::force_enabled(false);
    let report = server.shutdown();
    assert_eq!(report.streams.len(), 1);
    assert_eq!(report.streams[0].result.instances, 300);
}
