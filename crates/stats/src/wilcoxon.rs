//! Wilcoxon rank-based hypothesis tests.
//!
//! * [`wilcoxon_rank_sum`] (Mann–Whitney U) compares two independent samples
//!   — this is the decision statistic of the WSTD reference detector, which
//!   compares the classifier-error distributions of two sub-windows.
//! * [`wilcoxon_signed_rank`] compares paired samples — used in classical
//!   post-hoc comparisons of two algorithms over multiple datasets.
//!
//! Both tests use the normal approximation with tie and continuity
//! corrections, which is accurate for the window sizes (≥ 25) employed by
//! the detectors and the 24-dataset comparisons of the paper.

use crate::descriptive::{rank_with_ties, tie_correction};
use crate::distributions::{ContinuousDistribution, Normal};
use crate::{Result, StatsError};

/// Outcome of a Wilcoxon-family test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// The test statistic (U for rank-sum, W for signed-rank).
    pub statistic: f64,
    /// Standardized z-score under the normal approximation.
    pub z_score: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Wilcoxon rank-sum (Mann–Whitney U) test for two independent samples.
///
/// Tests the null hypothesis that both samples come from the same
/// distribution against a two-sided alternative. Requires at least two
/// observations in each sample.
pub fn wilcoxon_rank_sum(sample_a: &[f64], sample_b: &[f64]) -> Result<WilcoxonResult> {
    let n1 = sample_a.len();
    let n2 = sample_b.len();
    if n1 < 2 || n2 < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: n1.min(n2) });
    }
    let mut combined = Vec::with_capacity(n1 + n2);
    combined.extend_from_slice(sample_a);
    combined.extend_from_slice(sample_b);
    let ranks = rank_with_ties(&combined);
    let r1: f64 = ranks[..n1].iter().sum();
    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u1 = r1 - n1f * (n1f + 1.0) / 2.0;
    let u2 = n1f * n2f - u1;
    let u = u1.min(u2);

    let mean_u = n1f * n2f / 2.0;
    let n = n1f + n2f;
    // Variance with tie correction.
    let tie = tie_correction(&combined);
    let var_u = n1f * n2f / 12.0 * ((n + 1.0) - tie / (n * (n - 1.0)));
    if var_u <= 0.0 {
        // All observations identical: no evidence against the null.
        return Ok(WilcoxonResult { statistic: u, z_score: 0.0, p_value: 1.0 });
    }
    // Continuity correction.
    let z = (u - mean_u + 0.5) / var_u.sqrt();
    let p = 2.0 * Normal::standard().cdf(-z.abs());
    Ok(WilcoxonResult { statistic: u, z_score: z, p_value: p.min(1.0) })
}

/// Wilcoxon signed-rank test for paired samples.
///
/// Zero differences are discarded (standard practice). Requires at least
/// five non-zero differences for the normal approximation to be meaningful.
pub fn wilcoxon_signed_rank(sample_a: &[f64], sample_b: &[f64]) -> Result<WilcoxonResult> {
    if sample_a.len() != sample_b.len() {
        return Err(StatsError::InvalidParameter(format!(
            "paired samples must have equal length ({} vs {})",
            sample_a.len(),
            sample_b.len()
        )));
    }
    let diffs: Vec<f64> =
        sample_a.iter().zip(sample_b.iter()).map(|(a, b)| a - b).filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n < 5 {
        return Err(StatsError::InsufficientData { needed: 5, got: n });
    }
    let abs_diffs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = rank_with_ties(&abs_diffs);
    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(ranks.iter()) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }
    let w = w_plus.min(w_minus);
    let nf = n as f64;
    let mean_w = nf * (nf + 1.0) / 4.0;
    let tie = tie_correction(&abs_diffs);
    let var_w = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie / 48.0;
    if var_w <= 0.0 {
        return Ok(WilcoxonResult { statistic: w, z_score: 0.0, p_value: 1.0 });
    }
    let z = (w - mean_w + 0.5) / var_w.sqrt();
    let p = 2.0 * Normal::standard().cdf(-z.abs());
    Ok(WilcoxonResult { statistic: w, z_score: z, p_value: p.min(1.0) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize, scale: f64) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() * scale
    }

    #[test]
    fn rank_sum_identical_distributions_not_significant() {
        let a: Vec<f64> = (0..60).map(|i| noise(i, 1.0)).collect();
        let b: Vec<f64> = (0..60).map(|i| noise(i + 999, 1.0)).collect();
        let res = wilcoxon_rank_sum(&a, &b).unwrap();
        assert!(res.p_value > 0.05, "p = {}", res.p_value);
    }

    #[test]
    fn rank_sum_shifted_distributions_significant() {
        let a: Vec<f64> = (0..60).map(|i| noise(i, 1.0)).collect();
        let b: Vec<f64> = (0..60).map(|i| noise(i + 999, 1.0) + 1.5).collect();
        let res = wilcoxon_rank_sum(&a, &b).unwrap();
        assert!(res.p_value < 0.001, "p = {}", res.p_value);
    }

    #[test]
    fn rank_sum_known_small_example() {
        // Classic textbook example: clearly separated groups.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [6.0, 7.0, 8.0, 9.0, 10.0];
        let res = wilcoxon_rank_sum(&a, &b).unwrap();
        assert_eq!(res.statistic, 0.0);
        assert!(res.p_value < 0.02);
    }

    #[test]
    fn rank_sum_all_identical_values() {
        let a = [3.0; 10];
        let b = [3.0; 10];
        let res = wilcoxon_rank_sum(&a, &b).unwrap();
        assert_eq!(res.p_value, 1.0);
        assert_eq!(res.z_score, 0.0);
    }

    #[test]
    fn rank_sum_symmetric_in_arguments() {
        let a: Vec<f64> = (0..30).map(|i| noise(i, 1.0)).collect();
        let b: Vec<f64> = (0..40).map(|i| noise(i + 123, 1.0) + 0.4).collect();
        let r1 = wilcoxon_rank_sum(&a, &b).unwrap();
        let r2 = wilcoxon_rank_sum(&b, &a).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-10);
        assert!((r1.statistic - r2.statistic).abs() < 1e-10);
    }

    #[test]
    fn rank_sum_insufficient_data() {
        assert!(matches!(
            wilcoxon_rank_sum(&[1.0], &[1.0, 2.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn signed_rank_paired_shift_detected() {
        let a: Vec<f64> = (0..40).map(|i| noise(i, 1.0)).collect();
        let b: Vec<f64> = a.iter().enumerate().map(|(i, v)| v + 0.8 + noise(i + 77, 0.1)).collect();
        let res = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(res.p_value < 0.001, "p = {}", res.p_value);
    }

    #[test]
    fn signed_rank_no_difference_not_significant() {
        let a: Vec<f64> = (0..40).map(|i| noise(i, 1.0)).collect();
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, v)| v + noise(i + 9999, 0.4) - 0.2 * noise(i + 555, 1.0))
            .collect();
        let res = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(res.p_value > 0.01, "p = {}", res.p_value);
    }

    #[test]
    fn signed_rank_errors() {
        assert!(matches!(
            wilcoxon_signed_rank(&[1.0, 2.0], &[1.0]),
            Err(StatsError::InvalidParameter(_))
        ));
        // All differences zero → insufficient non-zero pairs.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert!(matches!(wilcoxon_signed_rank(&a, &a), Err(StatsError::InsufficientData { .. })));
    }
}
