//! The TCP front-end: a `std::net` listener terminating wire frames and
//! driving the in-process serving plane.
//!
//! # Connection lifecycle
//!
//! Each accepted connection gets a dedicated handler thread running a
//! strict request→reply loop: read one frame, perform the operation, write
//! exactly one reply. Two frames change the loop's shape:
//!
//! * [`Frame::Subscribe`] turns the connection into a server-push event
//!   stream — after the `Ack`, the handler pumps [`Frame::Event`] frames
//!   until shutdown closes the bus (or the client disconnects);
//! * [`Frame::Shutdown`] shuts the serving plane down, replies with the
//!   final [`Frame::Report`], and closes the connection.
//!
//! # Error containment
//!
//! Malformed input never panics a handler and never poisons the serving
//! plane. Frame-scoped failures (unsupported version, unknown frame type,
//! undecodable body) get an [`Frame::Error`] reply and the connection
//! lives on; framing-level failures (garbage length prefix, EOF inside a
//! frame) get a best-effort error reply and the connection closes, since
//! the byte stream cannot be resynchronized. Every discarded frame counts
//! into [`ServeReport::frames_dropped`] on the final report.

use crate::wire::{self, ErrorCode, Frame, WireError};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_serve::{ServeConfig, ServeReport, ServerHandle, StreamClient};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Shared state between the accept loop, connection handlers and the local
/// [`NetServerHandle`].
struct Shared {
    /// The serving plane. `shutdown` consumes a `ServerHandle`, so the
    /// first shutdown — wire or local — takes it; later operations see
    /// `None` and answer [`ErrorCode::Unavailable`].
    server: Mutex<Option<ServerHandle>>,
    /// The final report, stashed by whichever side performed the shutdown
    /// so the other can still read it.
    report: Mutex<Option<ServeReport>>,
    /// Wire frames discarded before reaching a shard (malformed framing,
    /// bad magic, unsupported version, unknown type).
    frames_dropped: AtomicU64,
    /// Set once shutdown begins; the accept loop exits on the next
    /// (possibly self-inflicted) connection.
    stopping: AtomicBool,
}

impl Shared {
    /// Performs the serving-plane shutdown exactly once. Returns `None`
    /// when another caller already did.
    fn shutdown_serve(&self) -> Option<ServeReport> {
        let handle = self.server.lock().expect("server lock poisoned").take()?;
        self.stopping.store(true, Ordering::SeqCst);
        let mut report = handle.shutdown();
        report.frames_dropped += self.frames_dropped.load(Ordering::SeqCst);
        *self.report.lock().expect("report lock poisoned") = Some(report.clone());
        Some(report)
    }
}

/// Entry points for binding the TCP front-end.
pub struct NetServer;

impl NetServer {
    /// Starts a serving plane with the default detector registry and binds
    /// the wire front-end to `addr` (use `127.0.0.1:0` to let the OS pick
    /// a loopback port; the bound address is on the returned handle).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<NetServerHandle> {
        Self::bind_with_registry(addr, config, Arc::new(DetectorRegistry::with_defaults()))
    }

    /// [`NetServer::bind`] with a custom detector registry (attach specs
    /// arriving over the wire resolve against it).
    pub fn bind_with_registry(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        registry: Arc<DetectorRegistry>,
    ) -> std::io::Result<NetServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let server = ServerHandle::start_with_registry(config, registry);
        let shared = Arc::new(Shared {
            server: Mutex::new(Some(server)),
            report: Mutex::new(None),
            frames_dropped: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(NetServerHandle { shared, addr, accept: Some(accept) })
    }
}

/// Handle on a running TCP front-end: the bound address, the drop
/// counters, and the local shutdown path.
pub struct NetServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServerHandle {
    /// The address the front-end accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wire frames discarded so far (monotone; folded into
    /// [`ServeReport::frames_dropped`] at shutdown).
    pub fn frames_dropped(&self) -> u64 {
        self.shared.frames_dropped.load(Ordering::SeqCst)
    }

    /// Shuts the serving plane and the accept loop down and returns the
    /// final report. If a wire client already performed the shutdown, the
    /// report it received is returned.
    pub fn shutdown(mut self) -> ServeReport {
        let report = match self.shared.shutdown_serve() {
            Some(report) => report,
            None => {
                self.shared.report.lock().expect("report lock poisoned").clone().unwrap_or_default()
            }
        };
        // Unblock the accept loop (it exits on the next connection once
        // `stopping` is set); a refused connect means it already exited.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        report
    }
}

impl std::fmt::Debug for NetServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServerHandle")
            .field("addr", &self.addr)
            .field("frames_dropped", &self.frames_dropped())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_connection(stream, shared));
            }
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

/// What a handled frame tells the connection loop to do next.
enum Flow {
    /// Keep reading frames.
    Continue,
    /// Close the connection (shutdown handled, subscription pump ended).
    Close,
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // The server side's local address IS the listener address — kept to
    // wake the accept loop when a shutdown arrives over this connection.
    let listener_addr = stream.local_addr().ok();
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Per-connection ingest clients, interned once per stream id so the
    // hot path never touches the control plane.
    let mut clients: HashMap<String, StreamClient> = HashMap::new();
    loop {
        let flow = match wire::read_frame(&mut reader) {
            Ok(frame) => {
                match handle_frame(frame, &shared, &mut clients, &mut writer, listener_addr) {
                    Ok(flow) => flow,
                    Err(_) => Flow::Close, // peer gone mid-reply
                }
            }
            Err(WireError::Closed) => Flow::Close,
            // The connection died (or was cut) mid-frame: the partial frame
            // is dropped and counted; best-effort error reply — a fuzzing
            // peer may have only half-closed its write side — then close.
            Err(e @ WireError::Io(_)) => {
                shared.frames_dropped.fetch_add(1, Ordering::SeqCst);
                let _ = reply(
                    &mut writer,
                    &Frame::Error { code: ErrorCode::Malformed, message: e.to_string() },
                );
                Flow::Close
            }
            // Frame-scoped failures: the frame was consumed whole, so the
            // stream is still in sync — reply and carry on.
            Err(e @ WireError::UnsupportedVersion { .. }) => {
                shared.frames_dropped.fetch_add(1, Ordering::SeqCst);
                match reply(
                    &mut writer,
                    &Frame::Error { code: ErrorCode::UnsupportedVersion, message: e.to_string() },
                ) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                }
            }
            Err(e @ WireError::UnknownFrameType(_)) => {
                shared.frames_dropped.fetch_add(1, Ordering::SeqCst);
                match reply(
                    &mut writer,
                    &Frame::Error { code: ErrorCode::UnknownFrameType, message: e.to_string() },
                ) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                }
            }
            Err(e @ WireError::Malformed(_)) => {
                shared.frames_dropped.fetch_add(1, Ordering::SeqCst);
                match reply(
                    &mut writer,
                    &Frame::Error { code: ErrorCode::Malformed, message: e.to_string() },
                ) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                }
            }
            // Framing-level failure: the byte stream cannot be
            // resynchronized. Best-effort error reply, then close.
            Err(e @ WireError::TooLarge(_)) => {
                shared.frames_dropped.fetch_add(1, Ordering::SeqCst);
                let _ = reply(
                    &mut writer,
                    &Frame::Error { code: ErrorCode::Malformed, message: e.to_string() },
                );
                Flow::Close
            }
        };
        if matches!(flow, Flow::Close) {
            break;
        }
    }
}

fn reply<W: Write>(writer: &mut W, frame: &Frame) -> std::io::Result<()> {
    wire::write_frame(writer, frame)?;
    writer.flush()
}

fn serve_error<W: Write>(writer: &mut W, message: String) -> std::io::Result<()> {
    reply(writer, &Frame::Error { code: ErrorCode::Serve, message })
}

fn unavailable<W: Write>(writer: &mut W) -> std::io::Result<()> {
    reply(
        writer,
        &Frame::Error {
            code: ErrorCode::Unavailable,
            message: "the serving plane has shut down".to_string(),
        },
    )
}

fn handle_frame<W: Write>(
    frame: Frame,
    shared: &Shared,
    clients: &mut HashMap<String, StreamClient>,
    writer: &mut W,
    listener_addr: Option<SocketAddr>,
) -> std::io::Result<Flow> {
    match frame {
        Frame::Attach { stream, schema, spec, run } => {
            let spec = match DetectorSpec::parse(&spec) {
                Ok(spec) => spec,
                Err(e) => {
                    serve_error(writer, format!("invalid detector spec: {e}"))?;
                    return Ok(Flow::Continue);
                }
            };
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(writer)?;
                return Ok(Flow::Continue);
            };
            let attached = match run {
                Some(run) => server.attach_with(&stream, schema, &spec, run),
                None => server.attach(&stream, schema, &spec),
            };
            drop(guard);
            match attached {
                Ok(client) => {
                    clients.insert(stream, client);
                    reply(writer, &Frame::Ack)?;
                }
                Err(e) => serve_error(writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Frame::Detach { stream } => {
            clients.remove(&stream);
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(writer)?;
                return Ok(Flow::Continue);
            };
            let detached = server.detach(&stream);
            drop(guard);
            match detached {
                Ok(result) => reply(writer, &Frame::Result(Box::new(result)))?,
                Err(e) => serve_error(writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Frame::Ingest { stream, blocking, instances } => {
            let client = match clients.entry(stream) {
                std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
                std::collections::hash_map::Entry::Vacant(entry) => {
                    let guard = shared.server.lock().expect("server lock poisoned");
                    let Some(server) = guard.as_ref() else {
                        drop(guard);
                        unavailable(writer)?;
                        return Ok(Flow::Continue);
                    };
                    let client = server.client(entry.key());
                    drop(guard);
                    entry.insert(client)
                }
            };
            if blocking {
                match client.ingest_batch(instances) {
                    Ok(()) => reply(writer, &Frame::Ack)?,
                    Err(_) => unavailable(writer)?,
                }
            } else {
                match client.try_ingest_batch(instances) {
                    Ok(()) => reply(writer, &Frame::Ack)?,
                    Err(rbm_im_serve::IngestError::Full(rejected)) => {
                        reply(writer, &Frame::Busy { rejected: rejected.len() as u64 })?
                    }
                    Err(rbm_im_serve::IngestError::Closed(_)) => unavailable(writer)?,
                }
            }
            Ok(Flow::Continue)
        }
        Frame::Drain => {
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(writer)?;
                return Ok(Flow::Continue);
            };
            server.drain();
            drop(guard);
            reply(writer, &Frame::Ack)?;
            Ok(Flow::Continue)
        }
        Frame::Checkpoint { stream } => {
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(writer)?;
                return Ok(Flow::Continue);
            };
            let checkpoint = server.checkpoint_stream(&stream);
            drop(guard);
            match checkpoint {
                Ok(checkpoint) => reply(writer, &Frame::CheckpointData(Box::new(checkpoint)))?,
                Err(e) => serve_error(writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Frame::Shutdown => {
            match shared.shutdown_serve() {
                Some(report) => {
                    reply(writer, &Frame::Report(Box::new(report)))?;
                    // Unblock the accept loop so the listener closes now,
                    // not at the next (never-arriving) connection.
                    if let Some(addr) = listener_addr {
                        let _ = TcpStream::connect(addr);
                    }
                }
                None => unavailable(writer)?,
            }
            Ok(Flow::Close)
        }
        Frame::Subscribe => {
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(writer)?;
                return Ok(Flow::Continue);
            };
            let events = server.subscribe();
            drop(guard);
            reply(writer, &Frame::Ack)?;
            // Server-push mode: pump bus events until shutdown closes the
            // bus or the client disconnects.
            for event in events {
                reply(writer, &Frame::Event(Box::new(event)))?;
            }
            Ok(Flow::Close)
        }
        // Reply-type frames arriving at the server are a protocol
        // violation by the client; answer with an error and carry on.
        Frame::Ack
        | Frame::Busy { .. }
        | Frame::Error { .. }
        | Frame::Result(_)
        | Frame::CheckpointData(_)
        | Frame::Report(_)
        | Frame::Event(_) => {
            shared.frames_dropped.fetch_add(1, Ordering::SeqCst);
            reply(
                writer,
                &Frame::Error {
                    code: ErrorCode::Malformed,
                    message: "reply frame sent to the server".to_string(),
                },
            )?;
            Ok(Flow::Continue)
        }
    }
}
