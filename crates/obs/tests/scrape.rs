//! End-to-end scrape: an [`ObsServer`] bound on loopback answers a plain
//! HTTP GET with Prometheus-text exposition that parses line-by-line —
//! every line is either a `# TYPE` header or a well-formed sample with a
//! finite value — and histogram `_bucket` series are cumulative.

use rbm_im_obs::{MetricsRegistry, ObsServer};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A metric (or sample) name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a sample line into (name, labels, value), asserting shape.
fn parse_sample(line: &str) -> (String, String, f64) {
    let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line:?}"));
    let value: f64 = value.parse().unwrap_or_else(|_| panic!("unparsable value: {line:?}"));
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let labels = rest.strip_suffix('}').unwrap_or_else(|| panic!("unclosed {{: {line:?}"));
            (name, labels)
        }
        None => (series, ""),
    };
    assert!(is_valid_name(name), "bad metric name in {line:?}");
    for pair in labels.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or_else(|| panic!("bad label pair: {line:?}"));
        assert!(is_valid_name(k), "bad label name in {line:?}");
        assert!(v.starts_with('"') && v.ends_with('"'), "unquoted label value in {line:?}");
    }
    (name.to_string(), labels.to_string(), value)
}

#[test]
fn scrape_parses_line_by_line_with_no_nan_leakage() {
    let registry = Arc::new(MetricsRegistry::new());
    for shard in 0..3 {
        let s = shard.to_string();
        registry.counter("rbm_serve_processed_instances_total", &[("shard", &s)]).add(100 + shard);
        registry.gauge("rbm_serve_queue_depth", &[("shard", &s)]).set(shard as i64 - 1);
        let hist = registry.histogram("rbm_serve_ingest_latency_seconds", &[("shard", &s)]);
        for v in [900u64, 25_000, 1_000_000, 40_000_000, u64::MAX] {
            hist.record(v);
        }
    }
    // An empty histogram must expose only the +Inf bucket with 0, never NaN.
    registry.histogram("rbm_net_request_latency_seconds", &[("frame", "drain")]);

    let obs = ObsServer::serve("127.0.0.1:0", vec![Arc::clone(&registry)]).expect("bind scrape");
    let mut conn = TcpStream::connect(obs.local_addr()).expect("connect scrape");
    conn.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    obs.shutdown();

    let (head, body) =
        response.split_once("\r\n\r\n").expect("HTTP response has a head/body separator");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "status line: {head:?}");
    assert!(head.contains("text/plain"), "content type: {head:?}");

    let mut typed: HashMap<String, String> = HashMap::new();
    let mut bucket_cumulative: HashMap<String, u64> = HashMap::new();
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("# TYPE ") {
            let mut parts = header.split_whitespace();
            let name = parts.next().expect("TYPE header has a name");
            let kind = parts.next().expect("TYPE header has a kind");
            assert!(is_valid_name(name), "bad family name in {line:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown family kind in {line:?}"
            );
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "only TYPE comments are emitted: {line:?}");
        let (name, labels, value) = parse_sample(line);
        assert!(value.is_finite(), "non-finite value leaked: {line:?}");
        samples += 1;
        // Every sample belongs to a declared family (histogram samples via
        // their _bucket/_sum/_count suffix).
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .filter(|f| typed.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(&name);
        assert!(typed.contains_key(family), "sample {name} has no # TYPE header");
        // Cumulative bucket counts never decrease within one series.
        if name.ends_with("_bucket") {
            let series =
                labels.split(',').filter(|p| !p.starts_with("le=")).collect::<Vec<_>>().join(",");
            let prev = bucket_cumulative.entry(format!("{name}{{{series}}}")).or_insert(0);
            assert!(value as u64 >= *prev, "bucket counts must be cumulative: {line:?}");
            *prev = value as u64;
        }
    }
    assert!(samples > 0, "exposition must not be empty");
    assert!(body.contains("rbm_serve_ingest_latency_seconds_bucket{shard=\"0\",le=\"+Inf\"} 5"));
    assert!(body.contains("rbm_net_request_latency_seconds_bucket{frame=\"drain\",le=\"+Inf\"} 0"));
    assert!(!body.contains("NaN") && !body.contains("inf"), "no non-finite text anywhere");
}
