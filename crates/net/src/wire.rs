//! The length-prefixed binary frame grammar.
//!
//! Every frame on the wire is
//!
//! ```text
//! u32 LE payload length | payload
//! payload = "RBMW" magic (4 bytes) | u16 LE version | u8 frame type | body
//! ```
//!
//! The body reuses the RBMC checkpoint codec's framing primitives
//! ([`rbm_im_harness::checkpoint::codec`]): LEB128 varints frame every
//! length and integer, strings are varint-length-prefixed UTF-8, and
//! control payloads (attach, results, checkpoints, reports, events) travel
//! as codec-encoded [`Value`] trees — so a wire capture is
//! decodable with the same tooling as a checkpoint spill. The hot ingest
//! path is hand-framed (raw little-endian `f64` feature words, varint
//! class/index) to avoid the tree detour per instance.
//!
//! Parsing is strict and total: a frame either decodes into a [`Frame`] or
//! fails with a [`WireError`] that tells the connection loop whether the
//! *framing* survived (frame-scoped errors such as an unsupported version
//! — reply and keep the connection) or not (garbage length prefix,
//! truncated payload — reply and close). No input, however malformed, may
//! panic the worker; `tests/protocol.rs` fuzzes truncations and byte
//! flips of every frame type against that contract.

use rbm_im_harness::checkpoint::codec::{
    self, read_varint, write_varint, CheckpointCodec, CodecError,
};
use rbm_im_harness::pipeline::{RunConfig, RunResult};
use rbm_im_obs::MetricsSnapshot;
use rbm_im_serve::{HealthSnapshot, ServeEvent, ServeEventKind, ServeReport, StreamCheckpoint};
use rbm_im_streams::{Instance, StreamSchema};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// The four magic bytes every wire payload starts with (`RBMW`: the RBMC
/// checkpoint family's wire sibling).
pub const WIRE_MAGIC: [u8; 4] = *b"RBMW";

/// The newest wire protocol version this build speaks.
pub const WIRE_VERSION: u16 = 1;

/// Hard cap on a single frame's payload size. A length prefix above this
/// is treated as a corrupt stream (random bytes decode to absurd lengths
/// with high probability), not an allocation request.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

// Frame type bytes. Requests have the high bit clear, replies set.
/// Frame type: [`Frame::Attach`].
pub const FT_ATTACH: u8 = 0x01;
/// Frame type: [`Frame::Detach`].
pub const FT_DETACH: u8 = 0x02;
/// Frame type: [`Frame::Ingest`].
pub const FT_INGEST: u8 = 0x03;
/// Frame type: [`Frame::Drain`].
pub const FT_DRAIN: u8 = 0x04;
/// Frame type: [`Frame::Checkpoint`].
pub const FT_CHECKPOINT: u8 = 0x05;
/// Frame type: [`Frame::Shutdown`].
pub const FT_SHUTDOWN: u8 = 0x06;
/// Frame type: [`Frame::Subscribe`].
pub const FT_SUBSCRIBE: u8 = 0x07;
/// Frame type: [`Frame::Metrics`].
pub const FT_METRICS: u8 = 0x08;
/// Frame type: [`Frame::Health`].
pub const FT_HEALTH: u8 = 0x09;
/// Frame type: [`Frame::Ack`].
pub const FT_ACK: u8 = 0x80;
/// Frame type: [`Frame::Busy`].
pub const FT_BUSY: u8 = 0x81;
/// Frame type: [`Frame::Error`].
pub const FT_ERROR: u8 = 0x82;
/// Frame type: [`Frame::Result`].
pub const FT_RESULT: u8 = 0x83;
/// Frame type: [`Frame::CheckpointData`].
pub const FT_CHECKPOINT_DATA: u8 = 0x84;
/// Frame type: [`Frame::Report`].
pub const FT_REPORT: u8 = 0x85;
/// Frame type: [`Frame::Event`].
pub const FT_EVENT: u8 = 0x86;
/// Frame type: [`Frame::MetricsData`].
pub const FT_METRICS_DATA: u8 = 0x87;
/// Frame type: [`Frame::HealthData`].
pub const FT_HEALTH_DATA: u8 = 0x88;

/// Machine-readable category of an [`Frame::Error`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad magic, truncated body,
    /// structurally invalid payload).
    Malformed,
    /// The frame carried a protocol version this build does not speak.
    UnsupportedVersion,
    /// Well-formed framing, but a frame type this build does not know.
    UnknownFrameType,
    /// The serving operation itself failed (unknown stream, spec did not
    /// resolve, already attached, …).
    Serve,
    /// The server behind this front-end has already shut down.
    Unavailable,
}

impl ErrorCode {
    fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::UnknownFrameType => 3,
            ErrorCode::Serve => 4,
            ErrorCode::Unavailable => 5,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::UnsupportedVersion),
            3 => Some(ErrorCode::UnknownFrameType),
            4 => Some(ErrorCode::Serve),
            5 => Some(ErrorCode::Unavailable),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::Malformed => write!(f, "malformed frame"),
            ErrorCode::UnsupportedVersion => write!(f, "unsupported protocol version"),
            ErrorCode::UnknownFrameType => write!(f, "unknown frame type"),
            ErrorCode::Serve => write!(f, "serve error"),
            ErrorCode::Unavailable => write!(f, "server unavailable"),
        }
    }
}

/// One decoded wire frame — requests (client → server) and replies
/// (server → client) share the enum so both endpoints use one
/// encoder/decoder pair.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Attach a stream: schema, the full detector spec *string* (parsed
    /// server-side against the server's registry), and an optional
    /// per-stream [`RunConfig`] override. Reply: [`Frame::Ack`].
    Attach {
        /// Stream id.
        stream: String,
        /// Stream schema.
        schema: StreamSchema,
        /// Detector spec in `DetectorSpec::parse` syntax.
        spec: String,
        /// Per-stream run config (`None` = the server's default).
        run: Option<RunConfig>,
    },
    /// Detach a stream. Reply: [`Frame::Result`] with its final summary.
    Detach {
        /// Stream id.
        stream: String,
    },
    /// Ingest a micro-batch. Reply: [`Frame::Ack`], or — non-blocking mode
    /// under backpressure — [`Frame::Busy`] carrying the rejected count.
    Ingest {
        /// Stream id.
        stream: String,
        /// `true` = blocking ingest (waits at the shards' pace);
        /// `false` = fail-fast with `Busy` when the shard queue is full.
        blocking: bool,
        /// The instances, in arrival order.
        instances: Vec<Instance>,
    },
    /// Barrier: everything ingested on any connection before this frame is
    /// fully processed when the [`Frame::Ack`] reply arrives.
    Drain,
    /// Capture a non-destructive checkpoint of one stream. Reply:
    /// [`Frame::CheckpointData`].
    Checkpoint {
        /// Stream id.
        stream: String,
    },
    /// Gracefully shut the serving plane down. Reply: [`Frame::Report`].
    Shutdown,
    /// Turn this connection into a server-push event stream: after the
    /// [`Frame::Ack`] reply the server sends [`Frame::Event`] frames until
    /// shutdown closes the bus.
    Subscribe,
    /// Request a point-in-time snapshot of the server's metric registry.
    /// Reply: [`Frame::MetricsData`].
    Metrics,
    /// Request a liveness summary (per-shard load, stream counts, latency
    /// quantiles, last-spill age). Reply: [`Frame::HealthData`].
    Health,
    /// Success reply carrying no data.
    Ack,
    /// Backpressure reply to a non-blocking [`Frame::Ingest`]: the shard
    /// queue was full and `rejected` instances were *not* ingested.
    Busy {
        /// Number of rejected instances (the whole batch — partial ingest
        /// never happens).
        rejected: u64,
    },
    /// Failure reply.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// A stream's final [`RunResult`] (reply to [`Frame::Detach`]).
    Result(Box<RunResult>),
    /// A captured [`StreamCheckpoint`] (reply to [`Frame::Checkpoint`]).
    CheckpointData(Box<StreamCheckpoint>),
    /// The final [`ServeReport`] (reply to [`Frame::Shutdown`]).
    Report(Box<ServeReport>),
    /// One [`ServeEvent`] pushed on a subscribed connection.
    Event(Box<ServeEvent>),
    /// The server's [`MetricsSnapshot`] (reply to [`Frame::Metrics`]).
    MetricsData(Box<MetricsSnapshot>),
    /// The server's [`HealthSnapshot`] (reply to [`Frame::Health`]).
    HealthData(Box<HealthSnapshot>),
}

/// Errors of reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// Transport I/O failed mid-frame.
    Io(io::Error),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] — a corrupt stream.
    TooLarge(u32),
    /// The payload carried the wire magic but a version this build does
    /// not speak. The framing itself was intact: the connection survives.
    UnsupportedVersion {
        /// Version found in the payload.
        found: u16,
    },
    /// Intact framing and version, but an unknown frame type byte. The
    /// connection survives.
    UnknownFrameType(u8),
    /// The payload is structurally invalid (bad magic, truncated body,
    /// malformed UTF-8, codec error). The frame was consumed whole, so the
    /// connection survives; a bad *length prefix* surfaces as
    /// [`WireError::TooLarge`] or [`WireError::Io`] instead.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            WireError::UnsupportedVersion { found } => write!(
                f,
                "wire protocol version {found} is not supported (this build speaks {WIRE_VERSION})"
            ),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Malformed(e.to_string())
    }
}

impl From<serde::Error> for WireError {
    fn from(e: serde::Error) -> Self {
        WireError::Malformed(e.to_string())
    }
}

// ---- encoding --------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    out.extend_from_slice(&codec::encode_value(value));
}

/// Encodes a frame's *payload* (magic + version + type + body), without
/// the length prefix.
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    match frame {
        Frame::Attach { stream, schema, spec, run } => {
            out.push(FT_ATTACH);
            put_value(
                &mut out,
                &Value::object(vec![
                    ("stream", Value::String(stream.clone())),
                    ("schema", schema.serialize_value()),
                    ("spec", Value::String(spec.clone())),
                    ("run", run.serialize_value()),
                ]),
            );
        }
        Frame::Detach { stream } => {
            out.push(FT_DETACH);
            put_str(&mut out, stream);
        }
        Frame::Ingest { stream, blocking, instances } => {
            out.push(FT_INGEST);
            put_str(&mut out, stream);
            out.push(u8::from(*blocking));
            write_varint(&mut out, instances.len() as u64);
            for instance in instances {
                write_varint(&mut out, instance.features.len() as u64);
                for feature in &instance.features {
                    out.extend_from_slice(&feature.to_bits().to_le_bytes());
                }
                write_varint(&mut out, instance.class as u64);
                write_varint(&mut out, instance.index);
            }
        }
        Frame::Drain => out.push(FT_DRAIN),
        Frame::Checkpoint { stream } => {
            out.push(FT_CHECKPOINT);
            put_str(&mut out, stream);
        }
        Frame::Shutdown => out.push(FT_SHUTDOWN),
        Frame::Subscribe => out.push(FT_SUBSCRIBE),
        Frame::Metrics => out.push(FT_METRICS),
        Frame::Health => out.push(FT_HEALTH),
        Frame::Ack => out.push(FT_ACK),
        Frame::Busy { rejected } => {
            out.push(FT_BUSY);
            write_varint(&mut out, *rejected);
        }
        Frame::Error { code, message } => {
            out.push(FT_ERROR);
            out.push(code.as_u8());
            put_str(&mut out, message);
        }
        Frame::Result(result) => {
            out.push(FT_RESULT);
            out.extend_from_slice(&codec::encode(CheckpointCodec::Binary, result.as_ref()));
        }
        Frame::CheckpointData(checkpoint) => {
            out.push(FT_CHECKPOINT_DATA);
            out.extend_from_slice(&codec::encode(CheckpointCodec::Binary, checkpoint.as_ref()));
        }
        Frame::Report(report) => {
            out.push(FT_REPORT);
            out.extend_from_slice(&codec::encode(CheckpointCodec::Binary, report.as_ref()));
        }
        Frame::Event(event) => {
            out.push(FT_EVENT);
            put_value(&mut out, &event_to_value(event));
        }
        Frame::MetricsData(snapshot) => {
            out.push(FT_METRICS_DATA);
            put_value(&mut out, &snapshot.serialize_value());
        }
        Frame::HealthData(health) => {
            out.push(FT_HEALTH_DATA);
            put_value(&mut out, &health.serialize_value());
        }
    }
    out
}

/// Encodes a complete frame: length prefix plus payload.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes one frame (length prefix + payload). The caller flushes.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

// ---- decoding --------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn varint(&mut self) -> Result<u64, WireError> {
        Ok(read_varint(self.bytes, &mut self.pos)?)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.bytes.len() {
            return Err(WireError::Malformed(format!(
                "body ended at byte {} of a {}-byte structure",
                self.bytes.len(),
                self.pos + n
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.varint()?;
        if len > (self.bytes.len() - self.pos) as u64 {
            return Err(WireError::Malformed(format!(
                "implausible string length {len} with {} bytes left",
                self.bytes.len() - self.pos
            )));
        }
        let raw = self.take(len as usize)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".to_string()))
    }

    /// The remaining bytes, consumed.
    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        slice
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after the frame body",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn decode_codec<T: Deserialize>(bytes: &[u8]) -> Result<T, WireError> {
    Ok(codec::decode(bytes)?)
}

/// Decodes a frame *payload* (everything after the length prefix).
pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor { bytes: payload, pos: 0 };
    let magic = c.take(4).map_err(|_| WireError::Malformed("missing RBMW magic".to_string()))?;
    if magic != WIRE_MAGIC {
        return Err(WireError::Malformed("missing RBMW magic".to_string()));
    }
    let version = u16::from_le_bytes(
        c.take(2)
            .map_err(|_| WireError::Malformed("payload too short for a version".to_string()))?
            .try_into()
            .expect("2 bytes"),
    );
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let frame_type = c
        .byte()
        .map_err(|_| WireError::Malformed("payload too short for a frame type".to_string()))?;
    let frame = match frame_type {
        FT_ATTACH => {
            let value = codec::decode_to_value(c.rest())?;
            Frame::Attach {
                stream: value.field::<String>("stream")?,
                schema: value.field::<StreamSchema>("schema")?,
                spec: value.field::<String>("spec")?,
                run: value.field::<Option<RunConfig>>("run")?,
            }
        }
        FT_DETACH => Frame::Detach { stream: c.str()? },
        FT_INGEST => {
            let stream = c.str()?;
            let blocking = match c.byte()? {
                0 => false,
                1 => true,
                other => {
                    return Err(WireError::Malformed(format!("unknown ingest mode {other}")));
                }
            };
            let count = c.varint()?;
            // Each instance costs at least 3 bytes; an implausible count is
            // rejected before any allocation.
            if count > (c.bytes.len() - c.pos) as u64 {
                return Err(WireError::Malformed(format!(
                    "implausible instance count {count} with {} bytes left",
                    c.bytes.len() - c.pos
                )));
            }
            let mut instances = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let num_features = c.varint()?;
                if num_features.checked_mul(8).is_none()
                    || num_features * 8 > (c.bytes.len() - c.pos) as u64
                {
                    return Err(WireError::Malformed(format!(
                        "implausible feature count {num_features} with {} bytes left",
                        c.bytes.len() - c.pos
                    )));
                }
                let mut features = Vec::with_capacity(num_features as usize);
                for _ in 0..num_features {
                    let raw = c.take(8)?;
                    features
                        .push(f64::from_bits(u64::from_le_bytes(raw.try_into().expect("8 bytes"))));
                }
                let class = c.varint()? as usize;
                let index = c.varint()?;
                instances.push(Instance::with_index(features, class, index));
            }
            Frame::Ingest { stream, blocking, instances }
        }
        FT_DRAIN => Frame::Drain,
        FT_CHECKPOINT => Frame::Checkpoint { stream: c.str()? },
        FT_SHUTDOWN => Frame::Shutdown,
        FT_SUBSCRIBE => Frame::Subscribe,
        FT_METRICS => Frame::Metrics,
        FT_HEALTH => Frame::Health,
        FT_ACK => Frame::Ack,
        FT_BUSY => Frame::Busy { rejected: c.varint()? },
        FT_ERROR => {
            let code = ErrorCode::from_u8(c.byte()?)
                .ok_or_else(|| WireError::Malformed("unknown error code".to_string()))?;
            Frame::Error { code, message: c.str()? }
        }
        FT_RESULT => Frame::Result(Box::new(decode_codec(c.rest())?)),
        FT_CHECKPOINT_DATA => Frame::CheckpointData(Box::new(decode_codec(c.rest())?)),
        FT_REPORT => Frame::Report(Box::new(decode_codec(c.rest())?)),
        FT_EVENT => {
            let value = codec::decode_to_value(c.rest())?;
            Frame::Event(Box::new(event_from_value(&value)?))
        }
        FT_METRICS_DATA => {
            let value = codec::decode_to_value(c.rest())?;
            Frame::MetricsData(Box::new(MetricsSnapshot::deserialize_value(&value)?))
        }
        FT_HEALTH_DATA => {
            let value = codec::decode_to_value(c.rest())?;
            Frame::HealthData(Box::new(HealthSnapshot::deserialize_value(&value)?))
        }
        other => return Err(WireError::UnknownFrameType(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Reads one frame off the transport: length prefix, payload, decode.
///
/// Clean EOF *between* frames is [`WireError::Closed`]; EOF inside a frame
/// is [`WireError::Io`] (the peer vanished mid-frame, the stream cannot be
/// resynchronized).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(&payload)
}

// ---- event <-> value -------------------------------------------------------

/// Converts a [`ServeEvent`] into the wire [`Value`] tree. Public so
/// captures and tests can inspect event frames symbolically.
pub fn event_to_value(event: &ServeEvent) -> Value {
    let mut fields = vec![
        ("stream", Value::String(event.stream.to_string())),
        ("shard", Value::Number(event.shard as f64)),
    ];
    match &event.kind {
        ServeEventKind::Attached => fields.push(("kind", Value::String("attached".into()))),
        ServeEventKind::Warning { position } => {
            fields.push(("kind", Value::String("warning".into())));
            fields.push(("position", position.serialize_value()));
        }
        ServeEventKind::Drift { position, classes } => {
            fields.push(("kind", Value::String("drift".into())));
            fields.push(("position", position.serialize_value()));
            fields.push(("classes", classes.serialize_value()));
        }
        ServeEventKind::Snapshot { position, snapshot } => {
            fields.push(("kind", Value::String("snapshot".into())));
            fields.push(("position", position.serialize_value()));
            fields.push(("snapshot", snapshot.serialize_value()));
        }
        ServeEventKind::Detached { result } => {
            fields.push(("kind", Value::String("detached".into())));
            fields.push(("result", result.serialize_value()));
        }
        ServeEventKind::Migrated { from_shard } => {
            fields.push(("kind", Value::String("migrated".into())));
            fields.push(("from_shard", from_shard.serialize_value()));
        }
        ServeEventKind::ResizeDecision { old_shards, new_shards, mean_queued_instances } => {
            fields.push(("kind", Value::String("resize_decision".into())));
            fields.push(("old_shards", old_shards.serialize_value()));
            fields.push(("new_shards", new_shards.serialize_value()));
            fields.push(("mean_queued_instances", mean_queued_instances.serialize_value()));
        }
        ServeEventKind::CheckpointSpilled { position, urgent } => {
            fields.push(("kind", Value::String("checkpoint_spilled".into())));
            fields.push(("position", position.serialize_value()));
            fields.push(("urgent", urgent.serialize_value()));
        }
        ServeEventKind::Hibernated { position, clean } => {
            fields.push(("kind", Value::String("hibernated".into())));
            fields.push(("position", position.serialize_value()));
            fields.push(("clean", clean.serialize_value()));
        }
        ServeEventKind::Rehydrated { position } => {
            fields.push(("kind", Value::String("rehydrated".into())));
            fields.push(("position", position.serialize_value()));
        }
    }
    Value::object(fields)
}

/// Inverse of [`event_to_value`].
pub fn event_from_value(value: &Value) -> Result<ServeEvent, WireError> {
    let stream: Arc<str> = Arc::from(value.field::<String>("stream")?.as_str());
    let shard = value.field::<usize>("shard")?;
    let kind = value.field::<String>("kind")?;
    let kind = match kind.as_str() {
        "attached" => ServeEventKind::Attached,
        "warning" => ServeEventKind::Warning { position: value.field("position")? },
        "drift" => ServeEventKind::Drift {
            position: value.field("position")?,
            classes: value.field("classes")?,
        },
        "snapshot" => ServeEventKind::Snapshot {
            position: value.field("position")?,
            snapshot: value.field("snapshot")?,
        },
        "detached" => ServeEventKind::Detached { result: value.field("result")? },
        "migrated" => ServeEventKind::Migrated { from_shard: value.field("from_shard")? },
        "resize_decision" => ServeEventKind::ResizeDecision {
            old_shards: value.field("old_shards")?,
            new_shards: value.field("new_shards")?,
            mean_queued_instances: value.field("mean_queued_instances")?,
        },
        "checkpoint_spilled" => ServeEventKind::CheckpointSpilled {
            position: value.field("position")?,
            urgent: value.field("urgent")?,
        },
        "hibernated" => ServeEventKind::Hibernated {
            position: value.field("position")?,
            clean: value.field("clean")?,
        },
        "rehydrated" => ServeEventKind::Rehydrated { position: value.field("position")? },
        other => return Err(WireError::Malformed(format!("unknown event kind `{other}`"))),
    };
    Ok(ServeEvent { stream, shard, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_serve::ShardHealth;

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = encode_frame(frame);
        let mut cursor = &bytes[..];
        let back = read_frame(&mut cursor).expect("decode");
        assert!(cursor.is_empty(), "frame fully consumed");
        back
    }

    #[test]
    fn request_frames_round_trip() {
        let attach = Frame::Attach {
            stream: "feed-00".into(),
            schema: StreamSchema::new("feed-00", 10, 4),
            spec: "rbm(minibatch=25, seed=7)".into(),
            run: Some(RunConfig { detector_batch: 25, ..Default::default() }),
        };
        match roundtrip(&attach) {
            Frame::Attach { stream, schema, spec, run } => {
                assert_eq!(stream, "feed-00");
                assert_eq!(schema.num_features, 10);
                assert_eq!(spec, "rbm(minibatch=25, seed=7)");
                assert_eq!(run.unwrap().detector_batch, 25);
            }
            other => panic!("wrong frame: {other:?}"),
        }
        let ingest = Frame::Ingest {
            stream: "feed-00".into(),
            blocking: true,
            instances: vec![
                Instance::with_index(vec![0.25, -1.5, f64::NEG_INFINITY], 3, 41),
                Instance::with_index(vec![], 0, 42),
            ],
        };
        match roundtrip(&ingest) {
            Frame::Ingest { stream, blocking, instances } => {
                assert_eq!(stream, "feed-00");
                assert!(blocking);
                assert_eq!(instances.len(), 2);
                assert_eq!(instances[0].features, vec![0.25, -1.5, f64::NEG_INFINITY]);
                assert_eq!(instances[0].class, 3);
                assert_eq!(instances[0].index, 41);
                assert!(instances[1].features.is_empty());
            }
            other => panic!("wrong frame: {other:?}"),
        }
        assert!(matches!(roundtrip(&Frame::Drain), Frame::Drain));
        assert!(matches!(roundtrip(&Frame::Shutdown), Frame::Shutdown));
        assert!(matches!(roundtrip(&Frame::Subscribe), Frame::Subscribe));
        match roundtrip(&Frame::Detach { stream: "s".into() }) {
            Frame::Detach { stream } => assert_eq!(stream, "s"),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn reply_frames_round_trip() {
        assert!(matches!(roundtrip(&Frame::Ack), Frame::Ack));
        assert!(matches!(roundtrip(&Frame::Busy { rejected: 300 }), Frame::Busy { rejected: 300 }));
        match roundtrip(&Frame::Error { code: ErrorCode::Serve, message: "no stream `x`".into() }) {
            Frame::Error { code, message } => {
                assert_eq!(code, ErrorCode::Serve);
                assert_eq!(message, "no stream `x`");
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn event_frames_round_trip() {
        use rbm_im_metrics::PrequentialSnapshot;
        let events = vec![
            ServeEvent { stream: Arc::from("s"), shard: 2, kind: ServeEventKind::Attached },
            ServeEvent {
                stream: Arc::from("s"),
                shard: 2,
                kind: ServeEventKind::Drift { position: 512, classes: vec![1, 3] },
            },
            ServeEvent {
                stream: Arc::from("s"),
                shard: 0,
                kind: ServeEventKind::Snapshot {
                    position: 1000,
                    snapshot: PrequentialSnapshot {
                        position: 1000,
                        pm_auc: 0.85,
                        pm_gmean: 0.5,
                        accuracy: 0.9,
                        kappa: 0.75,
                    },
                },
            },
            ServeEvent {
                stream: Arc::from(""),
                shard: 4,
                kind: ServeEventKind::ResizeDecision {
                    old_shards: 2,
                    new_shards: 4,
                    mean_queued_instances: 812.5,
                },
            },
            ServeEvent {
                stream: Arc::from("s"),
                shard: 1,
                kind: ServeEventKind::CheckpointSpilled { position: 4096, urgent: true },
            },
            ServeEvent {
                stream: Arc::from("s"),
                shard: 1,
                kind: ServeEventKind::Hibernated { position: 4096, clean: false },
            },
            ServeEvent {
                stream: Arc::from("s"),
                shard: 1,
                kind: ServeEventKind::Rehydrated { position: 4096 },
            },
        ];
        for event in events {
            let frame = Frame::Event(Box::new(event.clone()));
            match roundtrip(&frame) {
                Frame::Event(back) => {
                    assert_eq!(back.stream, event.stream);
                    assert_eq!(back.shard, event.shard);
                    assert_eq!(format!("{:?}", back.kind), format!("{:?}", event.kind));
                }
                other => panic!("wrong frame: {other:?}"),
            }
        }
    }

    #[test]
    fn metrics_frames_round_trip() {
        assert!(matches!(roundtrip(&Frame::Metrics), Frame::Metrics));
        assert!(matches!(roundtrip(&Frame::Health), Frame::Health));

        let registry = rbm_im_obs::MetricsRegistry::new();
        registry.counter("rbm_net_busy_total", &[]).add(7);
        registry.gauge("rbm_serve_queue_depth", &[("shard", "0")]).set(-3);
        let hist = registry.histogram("rbm_net_request_latency_seconds", &[("frame", "ingest")]);
        for v in [1u64, 900, 65_536, u64::MAX] {
            hist.record(v);
        }
        let snapshot = registry.snapshot();
        match roundtrip(&Frame::MetricsData(Box::new(snapshot.clone()))) {
            Frame::MetricsData(back) => {
                assert_eq!(back.counter_total("rbm_net_busy_total"), 7);
                let orig = snapshot.merged_histogram("rbm_net_request_latency_seconds");
                let dec = back.merged_histogram("rbm_net_request_latency_seconds");
                assert_eq!(dec.count(), orig.count());
                assert_eq!(dec.quantile(0.5), orig.quantile(0.5));
            }
            other => panic!("wrong frame: {other:?}"),
        }

        let health = HealthSnapshot {
            shards: vec![ShardHealth {
                shard: 0,
                streams: 2,
                hot_streams: 1,
                cold_streams: 1,
                queue_depth: 5,
                queued_instances: 120,
                processed_instances: 4096,
            }],
            streams: 2,
            hot_streams: 1,
            cold_streams: 1,
            ingest_p50_seconds: 0.000_25,
            ingest_p99_seconds: 0.004,
            rehydrate_p99_seconds: 0.000_8,
            last_spill_age_seconds: -1.0,
        };
        match roundtrip(&Frame::HealthData(Box::new(health))) {
            Frame::HealthData(back) => {
                assert_eq!(back.shards.len(), 1);
                assert_eq!(back.shards[0].queued_instances, 120);
                assert_eq!(back.shards[0].cold_streams, 1);
                assert_eq!(back.streams, 2);
                assert_eq!(back.hot_streams, 1);
                assert_eq!(back.cold_streams, 1);
                assert_eq!(back.ingest_p50_seconds, 0.000_25);
                assert_eq!(back.rehydrate_p99_seconds, 0.000_8);
                assert_eq!(back.last_spill_age_seconds, -1.0);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn framing_errors_are_classified() {
        // Clean EOF at a boundary.
        assert!(matches!(read_frame(&mut &[][..]), Err(WireError::Closed)));
        // EOF inside the prefix.
        assert!(matches!(read_frame(&mut &[1u8, 0][..]), Err(WireError::Io(_))));
        // Absurd length prefix.
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(read_frame(&mut &huge[..]), Err(WireError::TooLarge(_))));
        // Bad magic.
        let mut bytes = encode_frame(&Frame::Drain);
        bytes[4] = b'X';
        assert!(matches!(read_frame(&mut &bytes[..]), Err(WireError::Malformed(_))));
        // Future version: frame-scoped, distinguishable.
        let mut bytes = encode_frame(&Frame::Drain);
        bytes[8] = 0xFF;
        bytes[9] = 0x7F;
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::UnsupportedVersion { found: 0x7FFF })
        ));
        // Unknown frame type.
        let mut bytes = encode_frame(&Frame::Drain);
        bytes[10] = 0x6F;
        assert!(matches!(read_frame(&mut &bytes[..]), Err(WireError::UnknownFrameType(0x6F))));
        // Trailing garbage inside a well-framed payload.
        let mut bytes = encode_frame(&Frame::Drain);
        bytes.insert(11, 0xAA);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(read_frame(&mut &bytes[..]), Err(WireError::Malformed(_))));
    }
}
