//! Bayesian signed test for pairwise algorithm comparison (Benavoli et al.,
//! JMLR 2017), used by the paper for Figs. 6 and 7.
//!
//! Given paired performance differences of two algorithms over `n` datasets
//! and a region of practical equivalence (ROPE), the test produces a
//! posterior probability that algorithm A is practically better, that the
//! two are practically equivalent, and that B is practically better. The
//! posterior is a Dirichlet distribution over the three regions (with a
//! symmetric prior pseudo-count placed on the ROPE), sampled by Monte Carlo
//! using normalized Gamma draws.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Result, StatsError};

/// Posterior summary of the Bayesian signed test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesianSignedOutcome {
    /// Posterior probability that algorithm A (left) is practically better.
    pub p_left: f64,
    /// Posterior probability of practical equivalence (the ROPE).
    pub p_rope: f64,
    /// Posterior probability that algorithm B (right) is practically better.
    pub p_right: f64,
    /// Number of paired observations.
    pub n: usize,
}

impl BayesianSignedOutcome {
    /// Returns the label of the region with the highest posterior mass:
    /// `"left"`, `"rope"` or `"right"`.
    pub fn winner(&self) -> &'static str {
        if self.p_left >= self.p_rope && self.p_left >= self.p_right {
            "left"
        } else if self.p_right >= self.p_rope && self.p_right >= self.p_left {
            "right"
        } else {
            "rope"
        }
    }
}

/// Runs the Bayesian signed test.
///
/// * `scores_a`, `scores_b` — paired performance values (e.g. pmAUC per
///   stream) of the two algorithms;
/// * `rope` — half-width of the region of practical equivalence expressed in
///   the same units as the scores (the paper uses 0.01, i.e. 1% of pmAUC);
/// * `samples` — number of Monte Carlo samples of the Dirichlet posterior;
/// * `seed` — RNG seed so figures regenerate deterministically.
pub fn bayesian_signed_test(
    scores_a: &[f64],
    scores_b: &[f64],
    rope: f64,
    samples: usize,
    seed: u64,
) -> Result<BayesianSignedOutcome> {
    if scores_a.len() != scores_b.len() {
        return Err(StatsError::InvalidParameter(format!(
            "paired samples must have equal length ({} vs {})",
            scores_a.len(),
            scores_b.len()
        )));
    }
    if scores_a.len() < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: scores_a.len() });
    }
    if rope < 0.0 {
        return Err(StatsError::InvalidParameter(format!("rope must be >= 0, got {rope}")));
    }
    if samples == 0 {
        return Err(StatsError::InvalidParameter("samples must be > 0".into()));
    }

    // Count observations in each region.
    let mut n_left = 0.0_f64;
    let mut n_rope = 0.0_f64;
    let mut n_right = 0.0_f64;
    for (a, b) in scores_a.iter().zip(scores_b.iter()) {
        let d = a - b;
        if d > rope {
            n_left += 1.0;
        } else if d < -rope {
            n_right += 1.0;
        } else {
            n_rope += 1.0;
        }
    }
    // Symmetric Dirichlet prior with pseudo-count 1 on the ROPE (the prior
    // recommended by Benavoli et al. for the signed test).
    let alpha = [n_left + 1e-6, n_rope + 1.0, n_right + 1e-6];

    let mut rng = StdRng::seed_from_u64(seed);
    let mut wins = [0usize; 3];
    for _ in 0..samples {
        let g: Vec<f64> = alpha.iter().map(|&a| sample_gamma(&mut rng, a)).collect();
        let total: f64 = g.iter().sum();
        let theta: Vec<f64> = g.iter().map(|v| v / total).collect();
        let argmax = if theta[0] >= theta[1] && theta[0] >= theta[2] {
            0
        } else if theta[2] >= theta[1] {
            2
        } else {
            1
        };
        wins[argmax] += 1;
    }
    let s = samples as f64;
    Ok(BayesianSignedOutcome {
        p_left: wins[0] as f64 / s,
        p_rope: wins[1] as f64 / s,
        p_right: wins[2] as f64 / s,
        n: scores_a.len(),
    })
}

/// Marsaglia–Tsang gamma sampler (shape `a`, scale 1), with the standard
/// boost trick for `a < 1`.
fn sample_gamma<R: Rng>(rng: &mut R, a: f64) -> f64 {
    debug_assert!(a > 0.0);
    if a < 1.0 {
        // Boosting: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(rng, a + 1.0) * u.powf(1.0 / a);
    }
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_winner_gets_posterior_mass() {
        // A beats B by 10 points on every one of 24 datasets, rope = 1.
        let a: Vec<f64> = (0..24).map(|i| 80.0 + i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..24).map(|i| 70.0 + i as f64 * 0.1).collect();
        let out = bayesian_signed_test(&a, &b, 1.0, 20_000, 42).unwrap();
        assert!(out.p_left > 0.95, "p_left = {}", out.p_left);
        assert_eq!(out.winner(), "left");
        assert!((out.p_left + out.p_rope + out.p_right - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_case_flips_roles() {
        let a: Vec<f64> = (0..24).map(|i| 70.0 + i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..24).map(|i| 80.0 + i as f64 * 0.1).collect();
        let out = bayesian_signed_test(&a, &b, 1.0, 20_000, 42).unwrap();
        assert!(out.p_right > 0.95, "p_right = {}", out.p_right);
        assert_eq!(out.winner(), "right");
    }

    #[test]
    fn equivalent_algorithms_land_in_rope() {
        // Differences all within the rope.
        let a: Vec<f64> = (0..24).map(|i| 75.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..24).map(|i| 75.0 - (i % 2) as f64 * 0.1).collect();
        let out = bayesian_signed_test(&a, &b, 1.0, 20_000, 7).unwrap();
        assert!(out.p_rope > 0.9, "p_rope = {}", out.p_rope);
        assert_eq!(out.winner(), "rope");
    }

    #[test]
    fn mixed_results_are_uncertain() {
        // A wins half the time by 5, loses half the time by 5.
        let a: Vec<f64> = (0..24).map(|i| if i % 2 == 0 { 80.0 } else { 70.0 }).collect();
        let b: Vec<f64> = vec![75.0; 24];
        let out = bayesian_signed_test(&a, &b, 1.0, 20_000, 11).unwrap();
        assert!(out.p_left < 0.9 && out.p_right < 0.9, "left {} right {}", out.p_left, out.p_right);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = (0..24).map(|i| 80.0 + (i % 5) as f64).collect();
        let b: Vec<f64> = (0..24).map(|i| 78.0 + (i % 7) as f64).collect();
        let o1 = bayesian_signed_test(&a, &b, 1.0, 5_000, 123).unwrap();
        let o2 = bayesian_signed_test(&a, &b, 1.0, 5_000, 123).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn error_handling() {
        assert!(bayesian_signed_test(&[1.0, 2.0], &[1.0], 0.1, 100, 0).is_err());
        assert!(bayesian_signed_test(&[1.0], &[1.0], 0.1, 100, 0).is_err());
        assert!(bayesian_signed_test(&[1.0, 2.0], &[1.0, 2.0], -0.1, 100, 0).is_err());
        assert!(bayesian_signed_test(&[1.0, 2.0], &[1.0, 2.0], 0.1, 0, 0).is_err());
    }

    #[test]
    fn gamma_sampler_has_correct_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        for &shape in &[0.5, 1.0, 3.0, 10.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!((mean - shape).abs() < 0.15 * shape.max(1.0), "shape {shape}: mean {mean}");
        }
    }
}
