//! Compatibility shim over the [`pipeline`](crate::pipeline) module.
//!
//! The prequential loop now lives in
//! [`PipelineBuilder`]; this module
//! re-exports the run configuration/result types under their historical
//! paths and keeps a deprecated [`run_detector_on_stream`] wrapper for
//! callers that have not migrated yet. New code should build pipelines (or
//! grids) directly.

use crate::detectors::DetectorKind;
use crate::pipeline::PipelineBuilder;
pub use crate::pipeline::{RunConfig, RunResult};
use rbm_im_streams::DataStream;

/// Runs one detector on one stream with the paper's prequential protocol.
///
/// Deprecated compatibility wrapper: equivalent to
/// `PipelineBuilder::new().boxed_stream(…).detector_spec(kind.spec()).config(*config).run()`.
#[deprecated(note = "use rbm_im_harness::pipeline::PipelineBuilder (or run_grid) instead")]
pub fn run_detector_on_stream(
    stream: &mut (dyn DataStream + Send),
    detector_kind: DetectorKind,
    config: &RunConfig,
) -> RunResult {
    // The pipeline owns its stream; adapt the borrowed stream through a
    // forwarding wrapper so the old by-reference signature keeps working.
    struct BorrowedStream<'a>(&'a mut (dyn DataStream + Send));
    impl DataStream for BorrowedStream<'_> {
        fn next_instance(&mut self) -> Option<rbm_im_streams::Instance> {
            self.0.next_instance()
        }
        fn schema(&self) -> &rbm_im_streams::StreamSchema {
            self.0.schema()
        }
        fn restart(&mut self) {
            self.0.restart()
        }
    }
    PipelineBuilder::new()
        .stream(BorrowedStream(stream))
        .detector_spec(detector_kind.spec())
        .config(*config)
        .run()
        .expect("compat runner: registry resolution of a DetectorKind cannot fail")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use rbm_im_streams::generators::RandomRbfGenerator;
    use rbm_im_streams::scenarios::{scenario1, ScenarioConfig};

    fn small_scenario() -> ScenarioConfig {
        ScenarioConfig {
            length: 8_000,
            num_features: 8,
            num_classes: 3,
            imbalance_ratio: 10.0,
            n_drifts: 1,
            ..Default::default()
        }
    }

    #[test]
    fn compat_shim_matches_pipeline_output() {
        let config =
            RunConfig { metric_window: 500, max_instances: Some(2_000), ..Default::default() };
        let mut scenario = scenario1(&small_scenario());
        let via_shim =
            run_detector_on_stream(scenario.stream.as_mut(), DetectorKind::Adwin, &config);

        let scenario = scenario1(&small_scenario());
        let via_pipeline = PipelineBuilder::new()
            .boxed_stream(scenario.stream)
            .detector_spec(DetectorKind::Adwin.spec())
            .config(config)
            .run()
            .unwrap();
        // Timing fields are wall-clock and never reproducible; every
        // semantic field must match exactly.
        assert_eq!(via_shim.detector, via_pipeline.detector);
        assert_eq!(via_shim.stream, via_pipeline.stream);
        assert_eq!(via_shim.pm_auc, via_pipeline.pm_auc);
        assert_eq!(via_shim.pm_gmean, via_pipeline.pm_gmean);
        assert_eq!(via_shim.accuracy, via_pipeline.accuracy);
        assert_eq!(via_shim.kappa, via_pipeline.kappa);
        assert_eq!(via_shim.detections, via_pipeline.detections);
        assert_eq!(via_shim.detector, "ADWIN");
        assert_eq!(via_shim.instances, 2_000);
    }

    #[test]
    fn detector_driven_adaptation_beats_no_detector_after_drift() {
        // A stream with a severe sudden drift: the classifier driven by a
        // reasonable detector (ADWIN) should end up at least as good as one
        // that never adapts (emulated by disabling reset_on_drift).
        let make_stream = || {
            let mut gen = RandomRbfGenerator::new(8, 3, 2, 0.0, 77);
            let before: Vec<_> = {
                use rbm_im_streams::StreamExt;
                gen.take_instances(6_000)
            };
            gen.regenerate();
            let after: Vec<_> = {
                use rbm_im_streams::StreamExt;
                gen.take_instances(6_000)
            };
            let mut all = before;
            all.extend(after);
            VecStream::new(all, 8, 3)
        };
        let config_adapt = RunConfig { metric_window: 500, ..Default::default() };
        let config_frozen =
            RunConfig { metric_window: 500, reset_on_drift: false, ..Default::default() };
        let mut s1 = make_stream();
        let adaptive = run_detector_on_stream(&mut s1, DetectorKind::Adwin, &config_adapt);
        let mut s2 = make_stream();
        let frozen = run_detector_on_stream(&mut s2, DetectorKind::Adwin, &config_frozen);
        assert!(
            adaptive.pm_auc >= frozen.pm_auc - 3.0,
            "adaptive {:.2} should not trail frozen {:.2} materially",
            adaptive.pm_auc,
            frozen.pm_auc
        );
    }

    /// Minimal in-memory stream used by runner tests.
    struct VecStream {
        data: Vec<rbm_im_streams::Instance>,
        pos: usize,
        schema: rbm_im_streams::StreamSchema,
    }

    impl VecStream {
        fn new(
            data: Vec<rbm_im_streams::Instance>,
            num_features: usize,
            num_classes: usize,
        ) -> Self {
            VecStream {
                data,
                pos: 0,
                schema: rbm_im_streams::StreamSchema::new("vec", num_features, num_classes),
            }
        }
    }

    impl DataStream for VecStream {
        fn next_instance(&mut self) -> Option<rbm_im_streams::Instance> {
            let inst = self.data.get(self.pos).cloned();
            self.pos += 1;
            inst
        }
        fn schema(&self) -> &rbm_im_streams::StreamSchema {
            &self.schema
        }
        fn restart(&mut self) {
            self.pos = 0;
        }
    }
}
