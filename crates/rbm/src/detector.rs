//! RBM-IM: the complete trainable drift detector (paper Sec. V-B).
//!
//! Instances flow in one by one (the harness feeds every tested instance);
//! RBM-IM buffers them into mini-batches of `mini_batch_size` instances.
//! When a batch completes:
//!
//! 1. the per-class average reconstruction error of the batch is computed
//!    with the *current* network (Eq. 27),
//! 2. each class's [`TrendTracker`] is updated, yielding the new trend
//!    `Q_r(t)^m` (Eq. 28) and the verdict of the class's self-adaptive
//!    (ADWIN) window over the raw error level,
//! 3. the drift decision for class `m` combines the paper's Granger rule
//!    with a magnitude guard:
//!    * the Granger causality test (first differences) between the older and
//!      the recent half of the trend history finds **no** causal
//!      relationship — the paper's criterion for "the new trend is not
//!      explainable from the old one" — **and** the recent error level has
//!      moved materially away from the older level (without this guard a
//!      perfectly flat, stable stream would also be flagged, because two
//!      constant series trivially exhibit no Granger causality), **or**
//!    * the class's adaptive window shrank (ADWIN detected a change in the
//!      reconstruction-error level), which is the self-adaptive mechanism
//!      the paper adopts from \[19\];
//! 4. the network is trained on the batch (CD-k with the class-balanced
//!    loss), so the detector keeps following the stream;
//! 5. if any class drifted, the detector reports [`DetectorState::Drift`]
//!    and lists the affected classes — local drifts affecting a single
//!    minority class are therefore visible, which is exactly what
//!    Experiment 2 measures.

use crate::network::{RbmNetwork, RbmNetworkConfig};
use crate::trend::TrendTracker;
use rbm_im_detectors::{DetectorState, DriftDetector, Observation};
use rbm_im_stats::granger::{granger_causality, GrangerConfig};
use rbm_im_streams::Instance;

/// Configuration of the RBM-IM detector (the RBM-IM rows of Tab. II plus
/// the detection-rule constants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbmImConfig {
    /// Mini-batch size M (25–100 in the paper's grid).
    pub mini_batch_size: usize,
    /// Network hyper-parameters (hidden fraction, learning rate η, CD-k
    /// steps, class-balanced loss β).
    pub network: RbmNetworkConfig,
    /// Maximum length (in batches) of the per-class trend regression window.
    pub trend_window: usize,
    /// Number of trend values retained per class for the Granger test
    /// (split into an older and a recent half).
    pub trend_history: usize,
    /// Significance level of the Granger causality test.
    pub granger_alpha: f64,
    /// Confidence δ of the per-class adaptive (ADWIN) windows.
    pub adwin_delta: f64,
    /// Magnitude guard: the recent mean reconstruction error must differ
    /// from the older mean by at least this many standard deviations of the
    /// older window for the Granger rule to fire.
    pub magnitude_sigmas: f64,
    /// Number of mini-batches used purely for initial training before any
    /// detection is attempted (the paper trains RBM-IM on the first batch;
    /// a short warm-up makes the reconstruction errors meaningful).
    pub warmup_batches: u64,
    /// Number of consecutive over-threshold batches required before the
    /// magnitude / Granger rules signal a drift. Per-class batch errors are
    /// means over a handful of instances and occasionally spike on a single
    /// hard-to-reconstruct instance; a genuine concept change keeps the
    /// error elevated for several batches, so requiring persistence trades a
    /// one-batch delay for a large reduction in false alarms.
    pub persistence: u32,
    /// Minimum number of batches a class's error window must hold before
    /// any detection is attempted for that class.
    pub min_window_batches: usize,
}

impl Default for RbmImConfig {
    fn default() -> Self {
        RbmImConfig {
            mini_batch_size: 50,
            network: RbmNetworkConfig::default(),
            trend_window: 30,
            trend_history: 16,
            granger_alpha: 0.05,
            adwin_delta: 0.002,
            magnitude_sigmas: 4.0,
            warmup_batches: 10,
            persistence: 2,
            min_window_batches: 10,
        }
    }
}

/// The RBM-IM drift detector.
pub struct RbmIm {
    config: RbmImConfig,
    num_features: usize,
    num_classes: usize,
    network: RbmNetwork,
    trackers: Vec<TrendTracker>,
    /// Per-class count of consecutive batches whose error exceeded the
    /// magnitude / Granger thresholds (the persistence mechanism).
    consecutive_high: Vec<u32>,
    /// Flat mini-batch buffer: `batch_classes.len()` rows of `num_features`
    /// feature values. Observations are copied here directly — no
    /// [`Instance`] is materialized or cloned on the hot path — and the
    /// buffer is handed to the network's batched detect/train kernels,
    /// then cleared in place so its capacity is reused forever.
    batch_features: Vec<f64>,
    batch_classes: Vec<usize>,
    /// Reusable per-class reconstruction-error buffer (Eq. 27 output).
    batch_errors: Vec<Option<f64>>,
    batch_counter: u64,
    state: DetectorState,
    drifted: Vec<usize>,
    /// Total drifts signalled (diagnostics).
    drift_count: u64,
}

impl RbmIm {
    /// Creates an RBM-IM detector for a stream with the given schema.
    pub fn new(num_features: usize, num_classes: usize, config: RbmImConfig) -> Self {
        assert!(config.mini_batch_size >= 5, "mini-batch must hold at least a few instances");
        assert!(config.trend_history >= 4 && config.trend_history.is_multiple_of(2));
        assert!(config.granger_alpha > 0.0 && config.granger_alpha < 1.0);
        assert!(config.magnitude_sigmas >= 0.0);
        assert!(config.persistence >= 1, "persistence must be at least one batch");
        let network = RbmNetwork::new(num_features, num_classes, config.network);
        let trackers = (0..num_classes)
            .map(|_| {
                TrendTracker::new(config.trend_window, config.trend_history, config.adwin_delta)
            })
            .collect();
        RbmIm {
            config,
            num_features,
            num_classes,
            network,
            trackers,
            consecutive_high: vec![0; num_classes],
            batch_features: Vec::with_capacity(config.mini_batch_size * num_features),
            batch_classes: Vec::with_capacity(config.mini_batch_size),
            batch_errors: Vec::with_capacity(num_classes),
            batch_counter: 0,
            state: DetectorState::Stable,
            drifted: Vec::new(),
            drift_count: 0,
        }
    }

    /// Creates a detector with the default configuration.
    pub fn with_defaults(num_features: usize, num_classes: usize) -> Self {
        Self::new(num_features, num_classes, RbmImConfig::default())
    }

    /// Access to the underlying network (examples / diagnostics).
    pub fn network(&self) -> &RbmNetwork {
        &self.network
    }

    /// The configuration this detector was built with (diagnostics — lets
    /// infrastructure verify which execution mode a spec resolved to).
    pub fn config(&self) -> &RbmImConfig {
        &self.config
    }

    /// Installs a (typically pooled) scratch workspace into the underlying
    /// network, returning the previous one. The serving layer calls this at
    /// stream attach so a fresh detector inherits the grown buffer capacity
    /// of every stream its shard served before; see
    /// [`WorkspacePool`](crate::pool::WorkspacePool).
    pub fn adopt_workspace(&mut self, ws: crate::network::Workspace) -> crate::network::Workspace {
        self.network.adopt_workspace(ws)
    }

    /// Takes the network's scratch workspace out (e.g. back to a pool when
    /// the stream detaches).
    pub fn take_workspace(&mut self) -> crate::network::Workspace {
        self.network.take_workspace()
    }

    /// Total number of drift signals raised so far.
    pub fn drift_count(&self) -> u64 {
        self.drift_count
    }

    /// Number of complete mini-batches processed.
    pub fn batches_processed(&self) -> u64 {
        self.batch_counter
    }

    /// Feeds one labeled instance directly (the natural API when RBM-IM is
    /// used standalone rather than through the [`DriftDetector`] trait).
    /// Returns the detector state after the instance.
    pub fn observe_instance(&mut self, instance: &Instance) -> DetectorState {
        self.push_observation(&instance.features, instance.class)
    }

    /// Copies one observation into the flat mini-batch buffer and runs the
    /// detect-then-train step when the batch completes.
    fn push_observation(&mut self, features: &[f64], class: usize) -> DetectorState {
        assert_eq!(features.len(), self.num_features, "feature count mismatch");
        self.batch_features.extend_from_slice(features);
        self.batch_classes.push(class);
        if self.batch_classes.len() < self.config.mini_batch_size {
            // A drift signal lasts for exactly one observation; afterwards
            // the detector returns to stable until the next batch decision.
            if self.state == DetectorState::Drift {
                self.state = DetectorState::Stable;
            }
            return self.state;
        }
        self.process_buffered_batch()
    }

    /// Processes the buffered mini-batch: detect first, then train, both on
    /// the flat buffers (no per-instance clones anywhere on this path).
    fn process_buffered_batch(&mut self) -> DetectorState {
        self.batch_counter += 1;
        self.drifted.clear();

        // Move the buffers out so the borrow checker lets the network (also
        // a field of `self`) consume them; moved back — still holding their
        // capacity — before returning.
        let features = std::mem::take(&mut self.batch_features);
        let classes = std::mem::take(&mut self.batch_classes);
        let mut errors = std::mem::take(&mut self.batch_errors);

        let warmed_up = self.batch_counter > self.config.warmup_batches;
        if warmed_up {
            // Score through the immutable `_with` surface against the
            // network's own (temporarily detached) scratch workspace.
            let mut ws = self.network.take_workspace();
            self.network.reconstruction_errors_flat_with(&mut ws, &features, &classes, &mut errors);
            self.network.adopt_workspace(ws);
            for (class, error) in errors.iter().enumerate() {
                let Some(error) = error else { continue };
                let drifted = self.update_class(class, *error);
                if drifted {
                    self.drifted.push(class);
                }
            }
        }

        // Train after detection so the decision is made against the old
        // concept representation (test-then-train at the batch level).
        self.network.train_flat(&features, &classes);

        self.batch_features = features;
        self.batch_features.clear();
        self.batch_classes = classes;
        self.batch_classes.clear();
        self.batch_errors = errors;

        self.state = if self.drifted.is_empty() {
            DetectorState::Stable
        } else {
            self.drift_count += 1;
            // Forget the trend state of the drifted classes so monitoring
            // restarts on the new concept; the network itself keeps training
            // online (its trainable nature is what lets it re-align).
            for &class in &self.drifted {
                self.trackers[class].reset();
            }
            DetectorState::Drift
        };
        self.state
    }

    /// Updates one class's trackers with the batch error and decides whether
    /// that class drifted.
    ///
    /// Three triggers, evaluated against the window state *before* the new
    /// observation enters it (so the comparison is old-concept vs new batch):
    ///
    /// 1. **adaptive window** — ADWIN over the per-batch error series shrank
    ///    its window *and* the error moved upward (fires immediately: ADWIN
    ///    already demands sustained evidence);
    /// 2. **magnitude** — the batch error exceeds the window mean by more
    ///    than `magnitude_sigmas` window standard deviations (one-sided:
    ///    reconstruction-error *increases* indicate an unfamiliar concept,
    ///    decreases just mean the network is still improving);
    /// 3. **trend causality** — the Granger test finds no causal relation
    ///    between the older and recent halves of the trend history while the
    ///    error sits materially (80% of the magnitude threshold) above the
    ///    old level — the paper's rule, guarded so flat stable series do not
    ///    trigger it.
    ///
    /// Rules 2 and 3 must hold for `persistence` consecutive batches before
    /// the class is declared drifted.
    fn update_class(&mut self, class: usize, error: f64) -> bool {
        // Snapshot the old-concept error level before this observation
        // enters the window.
        let older_mean = self.trackers[class].window_mean();
        let older_std = self.trackers[class].window_std().max(1e-6);
        let older_len = self.trackers[class].window_len();

        let (_trend, adwin_change) = self.trackers[class].observe(error);
        if older_len < self.config.min_window_batches {
            // Not enough history on this class yet to judge anything.
            self.consecutive_high[class] = 0;
            return false;
        }
        let shift = error - older_mean;

        // Rule 2: the self-adaptive window flagged a change and the error
        // moved upward. ADWIN already requires sustained evidence, so it is
        // not subject to the persistence counter.
        if adwin_change && shift > 0.0 {
            self.consecutive_high[class] = 0;
            return true;
        }

        // Rule 1: one-sided magnitude test.
        let magnitude_exceeded = shift > self.config.magnitude_sigmas * older_std;
        // Rule 3: Granger causality between the older and recent halves of
        // the trend history, with a slightly reduced magnitude guard.
        let granger_exceeded = if shift > 0.8 * self.config.magnitude_sigmas * older_std {
            match self.trackers[class].trend_series() {
                Some((older_trends, recent_trends)) => {
                    let granger_cfg = GrangerConfig {
                        lags: 1,
                        alpha: self.config.granger_alpha,
                        first_difference: true,
                    };
                    match granger_causality(&older_trends, &recent_trends, &granger_cfg) {
                        Ok(res) => !res.causality_found,
                        // Too little data or degenerate series: no decision.
                        Err(_) => false,
                    }
                }
                None => false,
            }
        } else {
            false
        };

        if magnitude_exceeded || granger_exceeded {
            self.consecutive_high[class] += 1;
        } else {
            self.consecutive_high[class] = 0;
        }
        if self.consecutive_high[class] >= self.config.persistence {
            self.consecutive_high[class] = 0;
            return true;
        }
        false
    }
}

impl DriftDetector for RbmIm {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        self.push_observation(observation.features, observation.true_class)
    }

    /// Mini-batches are RBM-IM's natural unit of work (Sec. V-B): each
    /// observation's features are copied straight into the flat mini-batch
    /// buffer (no `Instance` is ever materialized) and the batched
    /// detect-then-train kernels run whenever a mini-batch completes.
    /// Drift offsets are exactly the positions the per-observation loop
    /// would report (the observation whose arrival completed a drifting
    /// mini-batch).
    fn update_batch(
        &mut self,
        observations: &[Observation<'_>],
        drift_offsets: &mut Vec<usize>,
    ) -> DetectorState {
        drift_offsets.clear();
        let mut state = self.state;
        for (offset, observation) in observations.iter().enumerate() {
            assert_eq!(observation.features.len(), self.num_features, "feature count mismatch");
            self.batch_features.extend_from_slice(observation.features);
            self.batch_classes.push(observation.true_class);
            if self.batch_classes.len() >= self.config.mini_batch_size {
                state = self.process_buffered_batch();
                if state.is_drift() {
                    drift_offsets.push(offset);
                }
            } else if state == DetectorState::Drift {
                // Mirror `observe_instance`: a drift signal lasts exactly one
                // observation, then the detector reads stable again.
                state = DetectorState::Stable;
            }
        }
        self.state = state;
        state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = RbmIm::new(self.num_features, self.num_classes, self.config);
    }

    fn name(&self) -> &'static str {
        "RBM-IM"
    }

    fn per_class_detection(&self) -> bool {
        true
    }

    fn drifted_classes_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend_from_slice(&self.drifted);
    }

    /// Opt in to downcasting so infrastructure holding
    /// `Box<dyn DriftDetector>` (the serving shards) can reach
    /// [`RbmIm::adopt_workspace`] / [`RbmIm::take_workspace`].
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    /// Complete detector state: the RBM network (weights, momentum, RNG),
    /// every per-class trend tracker (regression window + embedded ADWIN),
    /// the partially filled mini-batch buffer and the drift bookkeeping.
    /// The network's scratch workspace is rebuilt, never serialized.
    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        let trackers: Vec<Value> = self.trackers.iter().map(|t| t.snapshot_state()).collect();
        Some(Value::object(vec![
            ("num_features", self.num_features.serialize_value()),
            ("num_classes", self.num_classes.serialize_value()),
            ("network", self.network.snapshot_state()),
            ("trackers", Value::Array(trackers)),
            ("consecutive_high", self.consecutive_high.serialize_value()),
            ("batch_features", self.batch_features.serialize_value()),
            ("batch_classes", self.batch_classes.serialize_value()),
            ("batch_counter", self.batch_counter.serialize_value()),
            ("state", self.state.serialize_value()),
            ("drifted", self.drifted.serialize_value()),
            ("drift_count", self.drift_count.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let num_features: usize = state.field("num_features")?;
        let num_classes: usize = state.field("num_classes")?;
        if num_features != self.num_features || num_classes != self.num_classes {
            return Err(serde::Error::msg(format!(
                "rbm-im shape mismatch: snapshot is {num_features}×{num_classes}, detector is \
                 {}×{}",
                self.num_features, self.num_classes
            )));
        }
        self.network.restore_state(state.req("network")?)?;
        let serde::Value::Array(trackers) = state.req("trackers")? else {
            return Err(serde::Error::msg("rbm-im `trackers` must be an array"));
        };
        if trackers.len() != self.trackers.len() {
            return Err(serde::Error::msg("rbm-im tracker count mismatch"));
        }
        for (tracker, value) in self.trackers.iter_mut().zip(trackers) {
            tracker.restore_state(value)?;
        }
        let consecutive_high: Vec<u32> = state.field("consecutive_high")?;
        if consecutive_high.len() != self.num_classes {
            return Err(serde::Error::msg("rbm-im `consecutive_high` length mismatch"));
        }
        // Validate the buffered partial mini-batch before accepting it — a
        // corrupt snapshot must fail here, not panic inside the batched
        // kernels at the next flush. (Out-of-range class labels are legal:
        // the batch path skips them, exactly like live ingest does.)
        let batch_features: Vec<f64> = state.field("batch_features")?;
        let batch_classes: Vec<usize> = state.field("batch_classes")?;
        if batch_features.len() != batch_classes.len() * self.num_features {
            return Err(serde::Error::msg(format!(
                "rbm-im batch buffer mismatch: {} feature values for {} buffered instances of {} \
                 features",
                batch_features.len(),
                batch_classes.len(),
                self.num_features
            )));
        }
        if batch_classes.len() >= self.config.mini_batch_size {
            return Err(serde::Error::msg(
                "rbm-im batch buffer holds a full mini-batch; snapshots are only taken with a \
                 partial buffer",
            ));
        }
        self.consecutive_high = consecutive_high;
        self.batch_features = batch_features;
        self.batch_classes = batch_classes;
        self.batch_counter = state.field("batch_counter")?;
        self.state = state.field("state")?;
        self.drifted = state.field("drifted")?;
        self.drift_count = state.field("drift_count")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_detectors::DriftDetectorExt;
    use rbm_im_streams::generators::{GaussianMixtureGenerator, RandomRbfGenerator};
    use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
    use rbm_im_streams::StreamExt;

    fn feed(detector: &mut RbmIm, instances: &[Instance]) -> Vec<(u64, Vec<usize>)> {
        let mut detections = Vec::new();
        for (i, inst) in instances.iter().enumerate() {
            if detector.observe_instance(inst).is_drift() {
                detections.push((i as u64, detector.drifted_classes()));
            }
        }
        detections
    }

    fn quick_config() -> RbmImConfig {
        RbmImConfig { mini_batch_size: 25, warmup_batches: 4, ..Default::default() }
    }

    #[test]
    fn stable_stream_stays_quiet() {
        let mut stream = GaussianMixtureGenerator::balanced(6, 4, 2, 11);
        let mut detector = RbmIm::new(6, 4, quick_config());
        let data = stream.take_instances(10_000);
        let detections = feed(&mut detector, &data);
        assert!(
            detections.len() <= 2,
            "stationary stream should produce (almost) no drift signals, got {detections:?}"
        );
        assert!(detector.batches_processed() > 300);
    }

    #[test]
    fn detects_global_sudden_drift() {
        let mut concept_a = RandomRbfGenerator::new(8, 4, 2, 0.0, 8);
        let mut detector = RbmIm::new(8, 4, quick_config());
        let before = concept_a.take_instances(6_000);
        concept_a.regenerate();
        let after = concept_a.take_instances(4_000);
        let pre_detections = feed(&mut detector, &before);
        let post_detections = feed(&mut detector, &after);
        assert!(
            !post_detections.is_empty(),
            "a global sudden drift must be detected (pre: {pre_detections:?})"
        );
        // The first post-drift detection should come reasonably quickly
        // (within ~40 mini-batches of 25 instances).
        assert!(post_detections[0].0 < 1_000, "detection too slow: {:?}", post_detections[0]);
        assert!(pre_detections.len() <= 2, "false alarms before the drift: {pre_detections:?}");
    }

    #[test]
    fn detects_local_drift_and_attributes_affected_class() {
        // Only class 3 changes its distribution; RBM-IM must notice and name it.
        let mut gen = RandomRbfGenerator::new(6, 4, 2, 0.0, 16);
        let mut detector = RbmIm::new(6, 4, quick_config());
        let before = gen.take_instances(6_000);
        gen.regenerate_classes(&[3]);
        let after = gen.take_instances(4_000);
        feed(&mut detector, &before);
        let detections = feed(&mut detector, &after);
        assert!(!detections.is_empty(), "local drift must be detected");
        let attributed: Vec<usize> =
            detections.iter().flat_map(|(_, classes)| classes.iter().copied()).collect();
        assert!(
            attributed.contains(&3),
            "the drifted class (3) must appear among the attributed classes: {attributed:?}"
        );
        // The stable classes should dominate far less often than the drifted one.
        let drifted_hits = attributed.iter().filter(|&&c| c == 3).count();
        let other_hits = attributed.iter().filter(|&&c| c != 3).count();
        assert!(
            drifted_hits >= other_hits,
            "attribution should favour the drifted class: class3 {drifted_hits}, others {other_hits}"
        );
    }

    #[test]
    fn detects_minority_class_drift_under_imbalance() {
        // 50:10:1 imbalance; the smallest class drifts. This is the paper's
        // headline capability (Experiment 2 with one drifting class).
        let base = RandomRbfGenerator::new(6, 3, 2, 0.0, 21);
        let profile = ImbalanceProfile::Static(vec![50.0, 10.0, 1.0]);
        let mut stream = ImbalancedStream::new(base, profile, 13);
        let mut detector = RbmIm::new(6, 3, quick_config());
        let before = stream.take_instances(8_000);
        feed(&mut detector, &before);
        // Drift the minority class only.
        let mut inner = stream; // take ownership to reach the generator
                                // Rebuild: easier to construct a fresh imbalanced stream around a
                                // drifted copy of the generator.
        let mut drifted_gen = RandomRbfGenerator::new(6, 3, 2, 0.0, 21);
        // Re-play the same number of draws the original generator performed
        // is unnecessary: regenerating class 2 gives a new concept regardless.
        drifted_gen.regenerate_classes(&[2]);
        let profile = ImbalanceProfile::Static(vec![50.0, 10.0, 1.0]);
        let mut drifted_stream = ImbalancedStream::new(drifted_gen, profile, 14);
        let after = drifted_stream.take_instances(8_000);
        let detections = feed(&mut detector, &after);
        let _ = &mut inner;
        assert!(
            !detections.is_empty(),
            "a drift in the minority class must not go unnoticed under 50:1 imbalance"
        );
    }

    #[test]
    fn trainable_detector_adapts_and_goes_quiet_after_drift() {
        let mut gen = RandomRbfGenerator::new(6, 3, 2, 0.0, 33);
        let mut detector = RbmIm::new(6, 3, quick_config());
        feed(&mut detector, &gen.take_instances(5_000));
        gen.regenerate();
        let after = gen.take_instances(10_000);
        let detections = feed(&mut detector, &after);
        assert!(!detections.is_empty());
        // After adapting to the new concept the detector should quiet down:
        // no signals in the last third of the post-drift stream.
        let late_alarms = detections.iter().filter(|(pos, _)| *pos > 7_000).count();
        assert!(late_alarms <= 1, "detector should re-stabilize after retraining: {detections:?}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut stream = GaussianMixtureGenerator::balanced(5, 3, 1, 2);
        let mut detector = RbmIm::new(5, 3, quick_config());
        feed(&mut detector, &stream.take_instances(2_000));
        detector.reset();
        assert_eq!(detector.state(), DetectorState::Stable);
        assert_eq!(detector.batches_processed(), 0);
        assert_eq!(detector.drift_count(), 0);
        assert!(detector.drifted_classes().is_empty());
        assert_eq!(detector.name(), "RBM-IM");
        assert!(detector.per_class_detection());
    }

    #[test]
    fn batched_updates_match_per_instance_updates() {
        // Same drifting stream, fed once through `update` and once through
        // `update_batch` with a chunk size deliberately misaligned with the
        // mini-batch size: detection positions must be identical.
        let mut gen = RandomRbfGenerator::new(8, 4, 2, 0.0, 8);
        let mut data = gen.take_instances(6_000);
        gen.regenerate();
        data.extend(gen.take_instances(4_000));

        let mut sequential = RbmIm::new(8, 4, quick_config());
        let mut sequential_positions = Vec::new();
        for (i, inst) in data.iter().enumerate() {
            let obs = Observation::new(&inst.features, inst.class, inst.class);
            if sequential.update(&obs).is_drift() {
                sequential_positions.push(i);
            }
        }

        let mut batched = RbmIm::new(8, 4, quick_config());
        let mut batched_positions = Vec::new();
        let mut offsets = Vec::new();
        let chunk_size = 37;
        for (chunk_index, chunk) in data.chunks(chunk_size).enumerate() {
            let observations: Vec<Observation<'_>> = chunk
                .iter()
                .map(|inst| Observation::new(&inst.features, inst.class, inst.class))
                .collect();
            batched.update_batch(&observations, &mut offsets);
            batched_positions.extend(offsets.iter().map(|o| chunk_index * chunk_size + o));
        }

        assert_eq!(sequential_positions, batched_positions);
        assert!(!sequential_positions.is_empty(), "the injected drift must be detected");
        assert_eq!(sequential.batches_processed(), batched.batches_processed());
    }

    /// Snapshot mid-mini-batch (an awkward cut), serialize to JSON, restore
    /// onto a fresh detector: drift positions, attributed classes, and the
    /// underlying network weights must match the uninterrupted run bitwise.
    #[test]
    fn checkpoint_roundtrip_resumes_bitwise() {
        let mut gen = RandomRbfGenerator::new(8, 4, 2, 0.0, 8);
        let mut data = gen.take_instances(6_000);
        gen.regenerate();
        data.extend(gen.take_instances(4_000));

        // Cut deliberately misaligned with the 25-instance mini-batch.
        let cut = 5_237;
        let mut uninterrupted = RbmIm::new(8, 4, quick_config());
        let mut head = RbmIm::new(8, 4, quick_config());
        for inst in &data[..cut] {
            uninterrupted.observe_instance(inst);
            head.observe_instance(inst);
        }
        let json = serde_json::to_string(&head.snapshot_state().unwrap()).unwrap();
        let mut resumed = RbmIm::new(8, 4, quick_config());
        resumed.restore_state(&serde_json::parse_value(&json).unwrap()).unwrap();
        assert_eq!(resumed.batches_processed(), uninterrupted.batches_processed());

        let mut expected = Vec::new();
        let mut got = Vec::new();
        for (i, inst) in data[cut..].iter().enumerate() {
            let a = uninterrupted.observe_instance(inst);
            let b = resumed.observe_instance(inst);
            assert_eq!(a, b, "state diverged at offset {i}");
            if a.is_drift() {
                expected.push((i, uninterrupted.drifted_classes()));
            }
            if b.is_drift() {
                got.push((i, resumed.drifted_classes()));
            }
        }
        assert_eq!(expected, got);
        assert!(!expected.is_empty(), "the injected drift must be detected");
        assert_eq!(
            uninterrupted.network().w().as_slice(),
            resumed.network().w().as_slice(),
            "network weights must stay bitwise-identical"
        );
    }

    #[test]
    fn works_through_the_drift_detector_trait() {
        let mut stream = GaussianMixtureGenerator::balanced(4, 2, 1, 6);
        let mut detector: Box<dyn DriftDetector + Send> =
            Box::new(RbmIm::new(4, 2, quick_config()));
        for inst in stream.take_instances(1_000) {
            let obs = Observation::new(&inst.features, inst.class, inst.class);
            detector.update(&obs);
        }
        assert_eq!(detector.name(), "RBM-IM");
    }

    #[test]
    #[should_panic]
    fn mismatched_features_rejected() {
        let mut detector = RbmIm::with_defaults(4, 2);
        detector.observe_instance(&Instance::new(vec![1.0], 0));
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        RbmIm::new(4, 2, RbmImConfig { trend_history: 3, ..Default::default() });
    }
}
