//! Prints the benchmark inventory (Table I): name, instances, features,
//! classes, maximum imbalance ratio and drift type for all 24 streams, and
//! the scaled instance counts the default harness configuration uses.

use rbm_im_streams::registry::{all_benchmarks, BuildConfig};

fn main() {
    let config = BuildConfig::default();
    println!(
        "{:<16}{:>12}{:>10}{:>9}{:>9}  {:<12}{:>14}",
        "Dataset", "Instances", "Features", "Classes", "IR", "Drift", "Scaled length"
    );
    for spec in all_benchmarks() {
        println!(
            "{:<16}{:>12}{:>10}{:>9}{:>9.2}  {:<12}{:>14}",
            spec.name,
            spec.instances,
            spec.features,
            spec.classes,
            spec.ir,
            spec.drift.label(),
            spec.scaled_instances(&config)
        );
    }
    println!(
        "\n(scale divisor = {}; pass --scale 1 to experiment1 for paper-length streams)",
        config.scale_divisor
    );
}
