//! HDDM — drift detection based on Hoeffding's / McDiarmid's bounds
//! (Frías-Blanco et al., TKDE 2015).
//!
//! Two variants:
//!
//! * [`HddmA`] (A-test) compares the running mean of the full sequence with
//!   the minimum running mean observed so far using Hoeffding bounds on the
//!   difference of averages — sensitive to abrupt changes;
//! * [`HddmW`] (W-test) uses EWMA-weighted means and a McDiarmid bound,
//!   which weights recent instances more heavily — sensitive to gradual
//!   changes.

use crate::{DetectorState, DriftDetector, Observation};
use rbm_im_stats::hoeffding::{hoeffding_bound_two_means, mcdiarmid_bound};
use rbm_im_stats::online::Ewma;

/// Configuration shared by both HDDM variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HddmConfig {
    /// Confidence for the drift test.
    pub drift_confidence: f64,
    /// Confidence for the warning test (larger than `drift_confidence`).
    pub warning_confidence: f64,
}

impl Default for HddmConfig {
    fn default() -> Self {
        HddmConfig { drift_confidence: 0.0001, warning_confidence: 0.001 }
    }
}

/// HDDM with the averages test (abrupt drifts).
#[derive(Debug, Clone)]
pub struct HddmA {
    config: HddmConfig,
    total: f64,
    n: u64,
    /// Running statistics at the historical minimum of the bounded mean.
    cut_total: f64,
    cut_n: u64,
    state: DetectorState,
}

impl HddmA {
    /// Creates an HDDM-A detector with the default confidences.
    pub fn new() -> Self {
        Self::with_config(HddmConfig::default())
    }

    /// Creates an HDDM-A detector with explicit confidences.
    pub fn with_config(config: HddmConfig) -> Self {
        assert!(
            config.drift_confidence < config.warning_confidence,
            "drift confidence must be stricter"
        );
        HddmA { config, total: 0.0, n: 0, cut_total: 0.0, cut_n: 0, state: DetectorState::Stable }
    }

    fn mean(total: f64, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

impl Default for HddmA {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for HddmA {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let x = if observation.correct { 0.0 } else { 1.0 };
        self.total += x;
        self.n += 1;

        // Track the cut point with the lowest upper-bounded mean so far.
        let epsilon_cut =
            (1.0 / (2.0 * self.n as f64) * (1.0 / self.config.drift_confidence).ln()).sqrt();
        let current_bound = Self::mean(self.total, self.n) + epsilon_cut;
        let cut_bound = if self.cut_n == 0 {
            f64::MAX
        } else {
            Self::mean(self.cut_total, self.cut_n)
                + (1.0 / (2.0 * self.cut_n as f64) * (1.0 / self.config.drift_confidence).ln())
                    .sqrt()
        };
        if current_bound < cut_bound {
            self.cut_total = self.total;
            self.cut_n = self.n;
        }

        // Compare the post-cut segment with the pre-cut segment.
        self.state = if self.cut_n > 0 && self.n > self.cut_n {
            let recent_n = self.n - self.cut_n;
            let recent_mean = (self.total - self.cut_total) / recent_n as f64;
            let cut_mean = Self::mean(self.cut_total, self.cut_n);
            let diff = recent_mean - cut_mean;
            let eps_drift =
                hoeffding_bound_two_means(1.0, self.config.drift_confidence, self.cut_n, recent_n);
            let eps_warn = hoeffding_bound_two_means(
                1.0,
                self.config.warning_confidence,
                self.cut_n,
                recent_n,
            );
            if diff > eps_drift {
                let state = DetectorState::Drift;
                self.total = 0.0;
                self.n = 0;
                self.cut_total = 0.0;
                self.cut_n = 0;
                state
            } else if diff > eps_warn {
                DetectorState::Warning
            } else {
                DetectorState::Stable
            }
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = HddmA::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "HDDM-A"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("total", self.total.serialize_value()),
            ("n", self.n.serialize_value()),
            ("cut_total", self.cut_total.serialize_value()),
            ("cut_n", self.cut_n.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.total = state.field("total")?;
        self.n = state.field("n")?;
        self.cut_total = state.field("cut_total")?;
        self.cut_n = state.field("cut_n")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

/// HDDM with EWMA-weighted means and a McDiarmid bound (gradual drifts).
#[derive(Debug, Clone)]
pub struct HddmW {
    config: HddmConfig,
    lambda: f64,
    ewma: Ewma,
    /// EWMA snapshot at the historical minimum.
    cut_value: f64,
    cut_sum_sq: f64,
    has_cut: bool,
    state: DetectorState,
}

impl HddmW {
    /// Creates an HDDM-W detector with EWMA factor `lambda` (0.05 in the
    /// original paper) and default confidences.
    pub fn new(lambda: f64) -> Self {
        Self::with_config(lambda, HddmConfig::default())
    }

    /// Creates an HDDM-W detector with explicit configuration.
    pub fn with_config(lambda: f64, config: HddmConfig) -> Self {
        assert!(config.drift_confidence < config.warning_confidence);
        HddmW {
            config,
            lambda,
            ewma: Ewma::new(lambda),
            cut_value: f64::MAX,
            cut_sum_sq: 0.0,
            has_cut: false,
            state: DetectorState::Stable,
        }
    }
}

impl DriftDetector for HddmW {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let x = if observation.correct { 0.0 } else { 1.0 };
        self.ewma.update(x);
        let value = self.ewma.value();
        let sum_sq = self.ewma.sum_squared_weights();

        // Warm-up: the EWMA needs a few time constants before its value and
        // weight sum are representative; testing earlier produces spurious
        // minima locked in by cold-start noise.
        let warmup = (2.0 / self.lambda).ceil() as u64;
        if self.ewma.count() < warmup {
            self.state = DetectorState::Stable;
            return self.state;
        }
        let bound = mcdiarmid_bound(sum_sq, self.config.drift_confidence);
        if !self.has_cut
            || value + bound
                < self.cut_value + mcdiarmid_bound(self.cut_sum_sq, self.config.drift_confidence)
        {
            self.cut_value = value;
            self.cut_sum_sq = sum_sq;
            self.has_cut = true;
        }

        let diff = value - self.cut_value;
        let eps_drift = mcdiarmid_bound(sum_sq + self.cut_sum_sq, self.config.drift_confidence);
        let eps_warn = mcdiarmid_bound(sum_sq + self.cut_sum_sq, self.config.warning_confidence);
        self.state = if diff > eps_drift {
            self.ewma.reset();
            self.cut_value = f64::MAX;
            self.cut_sum_sq = 0.0;
            self.has_cut = false;
            DetectorState::Drift
        } else if diff > eps_warn {
            DetectorState::Warning
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = HddmW::with_config(self.lambda, self.config);
    }

    fn name(&self) -> &'static str {
        "HDDM-W"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        let (ewma_value, ewma_sum_sq, ewma_initialized, ewma_count) = self.ewma.raw_state();
        Some(Value::object(vec![
            ("ewma_value", ewma_value.serialize_value()),
            ("ewma_sum_sq", ewma_sum_sq.serialize_value()),
            ("ewma_initialized", ewma_initialized.serialize_value()),
            ("ewma_count", ewma_count.serialize_value()),
            ("cut_value", self.cut_value.serialize_value()),
            ("cut_sum_sq", self.cut_sum_sq.serialize_value()),
            ("has_cut", self.has_cut.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.ewma.restore_raw(
            state.field("ewma_value")?,
            state.field("ewma_sum_sq")?,
            state.field("ewma_initialized")?,
            state.field("ewma_count")?,
        );
        self.cut_value = state.field("cut_value")?;
        self.cut_sum_sq = state.field("cut_sum_sq")?;
        self.has_cut = state.field("has_cut")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_abrupt_change, assert_quiet_on_stationary, run_error_stream,
    };

    #[test]
    fn hddm_a_detects_abrupt_change() {
        assert_detects_abrupt_change(&mut HddmA::new(), 600, 2);
    }

    #[test]
    fn hddm_a_quiet_on_stationary() {
        assert_quiet_on_stationary(&mut HddmA::new(), 2);
    }

    #[test]
    fn hddm_w_detects_abrupt_change() {
        assert_detects_abrupt_change(&mut HddmW::new(0.05), 800, 2);
    }

    #[test]
    fn hddm_w_quiet_on_stationary() {
        assert_quiet_on_stationary(&mut HddmW::new(0.05), 2);
    }

    #[test]
    fn hddm_w_catches_gradual_change() {
        let mut detector = HddmW::new(0.05);
        let features = [0.0];
        let mut detected = false;
        for i in 0..20_000usize {
            let p = if i < 8_000 { 0.1 } else { (0.1 + (i - 8_000) as f64 * 0.00004).min(0.45) };
            let wrong = ((i as f64 * 0.917_152).fract()) < p;
            let obs = Observation {
                features: &features,
                true_class: 0,
                predicted_class: if wrong { 1 } else { 0 },
                correct: !wrong,
            };
            if detector.update(&obs).is_drift() && i > 8_000 {
                detected = true;
                break;
            }
        }
        assert!(detected, "HDDM-W should catch a gradual error increase");
    }

    #[test]
    fn improvement_does_not_trigger_either_variant() {
        // An error-rate *decrease* must never be reported as drift. (Alarms
        // during the maximal-variance p=0.5 warm-up phase are a separate,
        // false-alarm concern covered by the stationary tests.)
        let a = run_error_stream(&mut HddmA::new(), 0.5, 0.1, 3000, 6000, 3);
        assert!(a.iter().all(|&p| p < 3000), "HDDM-A fired after the improvement: {a:?}");
        let w = run_error_stream(&mut HddmW::new(0.05), 0.5, 0.1, 3000, 6000, 3);
        assert!(w.iter().all(|&p| p < 3000), "HDDM-W fired after the improvement: {w:?}");
    }

    #[test]
    fn resets_restore_initial_state() {
        let mut a = HddmA::new();
        run_error_stream(&mut a, 0.1, 0.6, 1000, 3000, 8);
        a.reset();
        assert_eq!(a.state(), DetectorState::Stable);
        assert_eq!(a.name(), "HDDM-A");
        let mut w = HddmW::new(0.05);
        run_error_stream(&mut w, 0.1, 0.6, 1000, 3000, 8);
        w.reset();
        assert_eq!(w.state(), DetectorState::Stable);
        assert_eq!(w.name(), "HDDM-W");
    }

    #[test]
    #[should_panic]
    fn invalid_confidences_rejected() {
        HddmA::with_config(HddmConfig { drift_confidence: 0.01, warning_confidence: 0.001 });
    }
}
