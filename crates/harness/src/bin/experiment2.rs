//! Regenerates Fig. 8: pmAUC as a function of the number of classes affected
//! by a local concept drift (1 … M), for every detector.
//!
//! Usage:
//! ```text
//! cargo run -p rbm-im-harness --release --bin experiment2 -- \
//!     [--classes M] [--features D] [--length N] [--ir R] [--seed S] [--json out.json]
//! ```

use rbm_im_harness::experiment2::{run_experiment2, Experiment2Config};
use rbm_im_harness::report::{format_fig8, to_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = Experiment2Config::default();
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--classes" => {
                config.num_classes = args[i + 1].parse().expect("--classes needs an integer");
                i += 2;
            }
            "--features" => {
                config.num_features = args[i + 1].parse().expect("--features needs an integer");
                i += 2;
            }
            "--length" => {
                config.length = args[i + 1].parse().expect("--length needs an integer");
                i += 2;
            }
            "--ir" => {
                config.imbalance_ratio = args[i + 1].parse().expect("--ir needs a number");
                i += 2;
            }
            "--seed" => {
                config.seed = args[i + 1].parse().expect("--seed needs an integer");
                i += 2;
            }
            "--json" => {
                json_path = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "Experiment 2 (local drift): {} classes, {} features, {} instances, IR {}",
        config.num_classes, config.num_features, config.length, config.imbalance_ratio
    );
    let result = run_experiment2(&config, |k, r| {
        eprintln!(
            "  k={k:<3} {:<10} pmAUC {:6.2}  drifts {:4}",
            r.detector,
            r.pm_auc,
            r.drift_count()
        );
    });
    println!("{}", format_fig8(&result));
    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&result.points)).expect("failed to write JSON results");
        eprintln!("wrote raw results to {path}");
    }
}
