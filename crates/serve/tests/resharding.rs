//! Elastic resharding + checkpoint persistence integration suite.
//!
//! The load-bearing property mirrors the serving suite's: a mid-run
//! `resize_shards` (8→4 and 4→8, with feeders pumping **throughout** the
//! resize) must lose no instances, reorder nothing, and produce drift
//! offsets and prequential metrics bitwise-identical to a sequential
//! [`PipelineBuilder`] run — while moving only the streams whose
//! consistent-hash ring ownership changed. On top of that, the
//! checkpoint-to-disk flow (`checkpoint_all` → [`SnapshotSink`] →
//! `restore_stream` in a fresh server) must resume mid-stream with the
//! same bitwise guarantee.

use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_serve::{
    IngestError, ServeConfig, ServeEventKind, ServerHandle, SnapshotSink, StreamClient,
    StreamRouter,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, ReplayStream, StreamExt, StreamSchema};
use std::collections::{HashMap, HashSet};

fn record_drifting_stream(
    seed: u64,
    features: usize,
    classes: usize,
    drift_at: usize,
    total: usize,
) -> (StreamSchema, Vec<Instance>) {
    let mut gen = RandomRbfGenerator::new(features, classes, 2, 0.0, seed);
    let schema = gen.schema().clone();
    let mut instances = gen.take_instances(drift_at);
    gen.regenerate();
    instances.extend(gen.take_instances(total - drift_at));
    (schema, instances)
}

struct Feed {
    id: String,
    schema: StreamSchema,
    instances: Vec<Instance>,
    spec: DetectorSpec,
}

/// Twelve drifting feeds mixing trainable RBM-IM detectors with classic
/// ones — enough ids that a resize between 8 and 4 shards moves several.
fn fleet() -> Vec<Feed> {
    let specs = [
        "rbm(mini_batch=25, warmup=4, persistence=1)",
        "adwin(delta=0.01)",
        "ddm",
        "rbm-im(minibatch=25, hidden=8, warmup=4, persistence=1)",
        "hddm-w",
        "rbm(mini_batch=25, warmup=4, persistence=1, learning_rate=0.1)",
    ];
    (0..12)
        .map(|i| {
            let (schema, instances) = record_drifting_stream(300 + i as u64, 8, 4, 1_500, 2_600);
            Feed {
                id: format!("elastic-{i:02}"),
                schema,
                instances,
                spec: DetectorSpec::parse(specs[i % specs.len()]).unwrap(),
            }
        })
        .collect()
}

fn run_config() -> RunConfig {
    RunConfig { metric_window: 500, detector_batch: 25, ..Default::default() }
}

fn sequential_baseline(server: &ServerHandle, feed: &Feed, run: RunConfig) -> RunResult {
    let spec = server.effective_spec(&feed.id, &feed.spec);
    PipelineBuilder::new()
        .stream(ReplayStream::new(feed.schema.clone(), feed.instances.clone()))
        .stream_label(feed.id.clone())
        .detector_spec(spec)
        .config(run)
        .run()
        .unwrap()
}

fn assert_results_match(context: &str, served: &RunResult, sequential: &RunResult) {
    assert_eq!(served.detections, sequential.detections, "{context}: drift offsets");
    assert_eq!(served.instances, sequential.instances, "{context}: instance count");
    assert_eq!(served.pm_auc, sequential.pm_auc, "{context}: pmAUC");
    assert_eq!(served.pm_gmean, sequential.pm_gmean, "{context}: pmGM");
    assert_eq!(served.accuracy, sequential.accuracy, "{context}: accuracy");
    assert_eq!(served.kappa, sequential.kappa, "{context}: kappa");
}

fn ingest_all(client: &StreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(IngestError::Full(rejected)) => {
                batch = rejected;
                std::thread::yield_now();
            }
            Err(IngestError::Closed(_)) => panic!("shard closed during ingest"),
        }
    }
}

/// The acceptance-criteria pin: resize 8→4 and 4→8 **mid-stream, under
/// concurrent ingest**; no instance lost or reordered, results equal the
/// sequential pipeline bitwise, and only ring-reassigned streams moved.
#[test]
fn mid_run_resize_is_lossless_and_bitwise_deterministic() {
    for (from_shards, to_shards) in [(8usize, 4usize), (4, 8)] {
        let feeds = fleet();
        let run = run_config();
        let server = ServerHandle::start(ServeConfig {
            num_shards: from_shards,
            queue_capacity: 64,
            run,
            ..Default::default()
        });
        let events = server.subscribe();
        let clients: Vec<StreamClient> = feeds
            .iter()
            .map(|feed| server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap())
            .collect();

        // First ~40% of every feed before the resize.
        let cut = |feed: &Feed| feed.instances.len() * 2 / 5;
        for (feed, client) in feeds.iter().zip(&clients) {
            ingest_all(client, feed.instances[..cut(feed)].to_vec());
        }

        // Feeders pump the remainder concurrently with the resize, through
        // the same clients (which re-resolve routing per send).
        let report = std::thread::scope(|scope| {
            for (feed, client) in feeds.iter().zip(&clients) {
                scope.spawn(move || {
                    for chunk in feed.instances[cut(feed)..].chunks(23) {
                        ingest_all(client, chunk.to_vec());
                    }
                });
            }
            server.resize_shards(to_shards).unwrap()
        });

        // Exactly the ring-reassigned streams moved — no more, no fewer.
        assert_eq!(report.old_shards, from_shards);
        assert_eq!(report.new_shards, to_shards);
        let before = StreamRouter::new(from_shards);
        let after = StreamRouter::new(to_shards);
        let expected_movers: HashSet<String> = feeds
            .iter()
            .filter(|f| before.shard_of(&f.id) != after.shard_of(&f.id))
            .map(|f| f.id.clone())
            .collect();
        let reported_movers: HashSet<String> =
            report.moved.iter().map(|m| m.stream.clone()).collect();
        assert_eq!(reported_movers, expected_movers, "{from_shards}→{to_shards}");
        assert!(
            !expected_movers.is_empty(),
            "{from_shards}→{to_shards}: the fixture must actually exercise migration"
        );
        assert!(
            expected_movers.len() < feeds.len(),
            "{from_shards}→{to_shards}: some streams must stay put (consistent hashing)"
        );
        for migrated in &report.moved {
            assert_eq!(migrated.from, before.shard_of(&migrated.stream));
            assert_eq!(migrated.to, after.shard_of(&migrated.stream));
        }
        assert_eq!(server.num_shards(), to_shards);

        server.drain();
        let serve_report = server.shutdown();
        assert_eq!(serve_report.streams.len(), feeds.len());
        assert_eq!(
            serve_report.dropped_unknown, 0,
            "{from_shards}→{to_shards}: a resize must not drop instances"
        );

        // Every moved stream announced its migration on the bus.
        let mut migrated_events: HashSet<String> = HashSet::new();
        for event in events.try_iter() {
            if let ServeEventKind::Migrated { from_shard } = event.kind {
                assert_eq!(from_shard, before.shard_of(&event.stream));
                migrated_events.insert(event.stream.to_string());
            }
        }
        assert_eq!(migrated_events, expected_movers);

        // Bitwise determinism against the sequential pipeline, resize and
        // all.
        let results: HashMap<String, RunResult> =
            serve_report.streams.into_iter().map(|s| (s.stream.clone(), s.result)).collect();
        let reference = ServerHandle::start(ServeConfig::default());
        let mut drifting = 0;
        for feed in &feeds {
            let sequential = sequential_baseline(&reference, feed, run);
            drifting += usize::from(!sequential.detections.is_empty());
            assert_results_match(
                &format!("{} across {from_shards}→{to_shards}", feed.id),
                &results[&feed.id],
                &sequential,
            );
        }
        assert!(drifting >= feeds.len() / 2, "most feeds must detect their injected drift");
        reference.shutdown();
    }
}

/// Back-to-back resizes (grow then shrink to the starting count) keep the
/// pipeline bitwise-deterministic; streams that bounced shards twice lose
/// nothing.
#[test]
fn repeated_resizes_keep_determinism() {
    let feeds: Vec<Feed> = fleet().into_iter().take(6).collect();
    let run = run_config();
    let server = ServerHandle::start(ServeConfig {
        num_shards: 2,
        queue_capacity: 64,
        run,
        ..Default::default()
    });
    let clients: Vec<StreamClient> = feeds
        .iter()
        .map(|feed| server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap())
        .collect();

    let thirds = |feed: &Feed, k: usize| {
        let len = feed.instances.len();
        feed.instances[len * k / 3..len * (k + 1) / 3].to_vec()
    };
    for (feed, client) in feeds.iter().zip(&clients) {
        ingest_all(client, thirds(feed, 0));
    }
    server.resize_shards(5).unwrap();
    for (feed, client) in feeds.iter().zip(&clients) {
        ingest_all(client, thirds(feed, 1));
    }
    server.resize_shards(2).unwrap();
    for (feed, client) in feeds.iter().zip(&clients) {
        ingest_all(client, thirds(feed, 2));
    }
    server.drain();
    let report = server.shutdown();
    assert_eq!(report.dropped_unknown, 0);

    let results: HashMap<String, RunResult> =
        report.streams.into_iter().map(|s| (s.stream.clone(), s.result)).collect();
    let reference = ServerHandle::start(ServeConfig::default());
    for feed in &feeds {
        let sequential = sequential_baseline(&reference, feed, run);
        assert_results_match(&format!("{} across 2→5→2", feed.id), &results[&feed.id], &sequential);
    }
    reference.shutdown();
}

/// Restart-from-disk: drain + `checkpoint_all` + spill through a
/// [`SnapshotSink`], shut the server down, start a fresh one, restore every
/// stream from the sink, feed the remaining instances — final results are
/// bitwise-identical to never having restarted.
#[test]
fn checkpoint_spill_and_restore_resumes_bitwise() {
    let feeds: Vec<Feed> = fleet().into_iter().take(5).collect();
    let run = run_config();
    let dir = std::env::temp_dir().join(format!("rbm-serve-sink-{}", std::process::id()));
    let sink = SnapshotSink::new(&dir).unwrap();

    // Phase 1: serve the head of every feed, checkpoint, spill, shut down.
    let server = ServerHandle::start(ServeConfig {
        num_shards: 4,
        queue_capacity: 64,
        run,
        ..Default::default()
    });
    let events = server.subscribe();
    let mut cuts = HashMap::new();
    for feed in &feeds {
        let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
        // Awkward per-feed cuts, misaligned with every batch boundary.
        let cut = feed.instances.len() / 2 + 13 * (feed.id.len() % 3);
        ingest_all(&client, feed.instances[..cut].to_vec());
        cuts.insert(feed.id.clone(), cut);
    }
    server.drain();
    // Metric history rides along with the checkpoints.
    for event in events.try_iter() {
        sink.record_event(&event).unwrap();
    }
    let checkpoints = server.checkpoint_all().unwrap();
    assert_eq!(checkpoints.len(), feeds.len());
    let paths = sink.spill_all(&checkpoints).unwrap();
    assert_eq!(paths.len(), feeds.len());
    server.shutdown();

    // Phase 2: a fresh server — different shard count, same determinism —
    // restores every stream from disk and serves the tails.
    let restored = SnapshotSink::new(&dir).unwrap().load_checkpoints().unwrap();
    assert_eq!(restored, checkpoints, "disk round-trip must be lossless");
    let server = ServerHandle::start(ServeConfig {
        num_shards: 3,
        queue_capacity: 64,
        run,
        ..Default::default()
    });
    for checkpoint in &restored {
        let client = server.restore_stream(checkpoint).unwrap();
        let feed = feeds.iter().find(|f| f.id == checkpoint.stream).unwrap();
        ingest_all(&client, feed.instances[cuts[&feed.id]..].to_vec());
    }
    server.drain();
    let report = server.shutdown();
    assert_eq!(report.dropped_unknown, 0);

    let results: HashMap<String, RunResult> =
        report.streams.into_iter().map(|s| (s.stream.clone(), s.result)).collect();
    let reference = ServerHandle::start(ServeConfig::default());
    let mut drifting = 0;
    for feed in &feeds {
        let sequential = sequential_baseline(&reference, feed, run);
        drifting += usize::from(!sequential.detections.is_empty());
        assert_results_match(
            &format!("{} across restart", feed.id),
            &results[&feed.id],
            &sequential,
        );
    }
    assert!(drifting >= feeds.len() / 2, "most feeds must detect their injected drift");
    reference.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
