//! Criterion benchmark crate: all targets live under `benches/`, one per
//! paper table/figure plus the serving/checkpoint infrastructure benches
//! (see DESIGN.md §4 and the `BENCH_*.json` baselines at the repo root).
//!
//! Besides the bench targets this crate exports [`runner_metadata`]: every
//! bench prints a machine-readable description of the runner it executed
//! on (core count, shard-pinning env), and the recorded `BENCH_*.json`
//! baselines embed the same object — so a "this number was taken on 1
//! vCPU" caveat travels *with the data* instead of living in a ROADMAP
//! footnote.

#![warn(missing_docs)]

use serde::{Serialize, Value};

/// Machine-readable description of the bench runner, embedded in every
/// recorded `BENCH_*.json` under the `"runner"` key and printed by each
/// bench at startup.
///
/// * `logical_cores` — what `std::thread::available_parallelism` reports;
///   the figure scaling claims must be read against (shard scaling cannot
///   manifest on one core);
/// * `multi_core` — convenience flag: `logical_cores >= 2`. Consumers
///   gating on scaling validity should check this, not parse prose;
/// * `shard_env` — the value of `RBM_SERVE_SHARDS` if the process was
///   pinned to specific shard counts, else `null`;
/// * `rayon_pool_threads` — the *effective* kernel-pool size
///   ([`rayon::pool_threads`]): `RAYON_NUM_THREADS` when set, else
///   available parallelism, else whatever the pool was already spun up
///   with. Parallel-kernel numbers are only interpretable against this —
///   `logical_cores` alone can't tell a pinned pool from a free one;
/// * `rayon_num_threads_env` — the raw `RAYON_NUM_THREADS` value if the
///   pool size was pinned from the environment, else `null`;
/// * `os` / `arch` — the compile-time target.
pub fn runner_metadata() -> Value {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    Value::object(vec![
        ("logical_cores", cores.serialize_value()),
        ("multi_core", (cores >= 2).serialize_value()),
        ("shard_env", std::env::var("RBM_SERVE_SHARDS").ok().serialize_value()),
        ("rayon_pool_threads", rayon::pool_threads().serialize_value()),
        ("rayon_num_threads_env", std::env::var("RAYON_NUM_THREADS").ok().serialize_value()),
        ("os", std::env::consts::OS.serialize_value()),
        ("arch", std::env::consts::ARCH.serialize_value()),
    ])
}

/// Prints the runner metadata as one JSON line, prefixed so bench logs are
/// greppable (`runner: {...}`). Call once at the top of a bench main.
pub fn print_runner_metadata() {
    println!("runner: {}", serde_json::to_string(&runner_metadata()).unwrap_or_default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_metadata_is_well_formed() {
        let meta = runner_metadata();
        let cores: usize = meta.field("logical_cores").unwrap();
        assert!(cores >= 1);
        let multi: bool = meta.field("multi_core").unwrap();
        assert_eq!(multi, cores >= 2);
        assert!(meta.get("shard_env").is_some());
        let pool: usize = meta.field("rayon_pool_threads").unwrap();
        assert!(pool >= 1, "effective pool size is always at least 1");
        assert!(meta.get("rayon_num_threads_env").is_some());
        let json = serde_json::to_string(&meta).unwrap();
        assert!(json.contains("logical_cores"));
        assert!(json.contains("rayon_pool_threads"));
    }
}
