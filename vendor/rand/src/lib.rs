//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of `rand` APIs the repository uses are re-implemented here behind
//! the same paths (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::StdRng`).
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the experiments rely on (streams are only
//! ever compared against other streams built from the same seed, never
//! against externally recorded sequences).

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply bounded draw (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state words — checkpoint support: a
        /// generator rebuilt with [`StdRng::from_state`] continues the
        /// exact stream this one would have produced.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from captured state words.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
