//! The wire determinism pin: a fleet fed over N TCP connections is
//! **bitwise-identical** — drift offsets, prequential metrics, final
//! report — to the same feed through in-process `StreamClient`s, and to a
//! sequential `PipelineBuilder` run per stream. The serving chain
//! `sequential ≡ 1-process sharded` (pinned in `rbm-im-serve`) is thereby
//! extended one hop toward N-process: `sequential ≡ sharded ≡ TCP-fed`.
//!
//! Shard counts default to 1 and 4 and can be pinned from CI via
//! `RBM_SERVE_SHARDS` (comma-separated), like the serving suite.

use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_net::{NetClient, NetServer, NetStreamClient};
use rbm_im_serve::{
    deterministic_spec, IngestError, ServeConfig, ServeEventKind, ServeReport, ServerHandle,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, ReplayStream, StreamExt, StreamSchema};
use std::collections::HashMap;

fn shard_counts() -> Vec<usize> {
    match std::env::var("RBM_SERVE_SHARDS") {
        Ok(raw) => {
            raw.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n >= 1).collect()
        }
        Err(_) => vec![1, 4],
    }
}

fn record_drifting_stream(
    seed: u64,
    features: usize,
    classes: usize,
    drift_at: usize,
    total: usize,
) -> (StreamSchema, Vec<Instance>) {
    let mut gen = RandomRbfGenerator::new(features, classes, 2, 0.0, seed);
    let schema = gen.schema().clone();
    let mut instances = gen.take_instances(drift_at);
    gen.regenerate();
    instances.extend(gen.take_instances(total - drift_at));
    (schema, instances)
}

struct Feed {
    id: String,
    schema: StreamSchema,
    instances: Vec<Instance>,
    spec: DetectorSpec,
}

/// Four drifting feeds with mixed specs: trainable RBM-IM variants (the
/// state-heavy path) and classic detectors (the cheap path).
fn fleet() -> Vec<Feed> {
    let specs = [
        "rbm(mini_batch=25, warmup=4, persistence=1)",
        "rbm-im(minibatch=25, hidden=8, warmup=4, persistence=1)",
        "adwin(delta=0.01)",
        "ddm",
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (schema, instances) = record_drifting_stream(100 + i as u64, 8, 4, 2_500, 4_500);
            Feed {
                id: format!("feed-{i:02}"),
                schema,
                instances,
                spec: DetectorSpec::parse(spec).unwrap(),
            }
        })
        .collect()
}

fn run_config() -> RunConfig {
    RunConfig { metric_window: 500, detector_batch: 50, ..Default::default() }
}

/// Sequential ground truth, built with the exact spec the servers build:
/// `deterministic_spec` over the default registry with the default base
/// seed (both serving planes here run `ServeConfig::default()` seeding).
fn sequential_baseline(feed: &Feed, run: RunConfig) -> RunResult {
    let registry = DetectorRegistry::with_defaults();
    let spec =
        deterministic_spec(&registry, ServeConfig::default().base_seed, &feed.id, &feed.spec);
    PipelineBuilder::new()
        .stream(ReplayStream::new(feed.schema.clone(), feed.instances.clone()))
        .stream_label(feed.id.clone())
        .detector_spec(spec)
        .config(run)
        .run()
        .unwrap()
}

fn assert_results_match(context: &str, served: &RunResult, sequential: &RunResult) {
    assert_eq!(served.detections, sequential.detections, "{context}: drift offsets");
    assert_eq!(served.instances, sequential.instances, "{context}: instance count");
    assert_eq!(served.pm_auc, sequential.pm_auc, "{context}: pmAUC");
    assert_eq!(served.pm_gmean, sequential.pm_gmean, "{context}: pmGM");
    assert_eq!(served.accuracy, sequential.accuracy, "{context}: accuracy");
    assert_eq!(served.kappa, sequential.kappa, "{context}: kappa");
    assert_eq!(served.detector, sequential.detector, "{context}: detector label");
}

/// Wire-client retry loop mirroring the serving suite's `ingest_all`.
fn net_ingest_all(client: &NetStreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(IngestError::Full(rejected)) => {
                batch = rejected;
                std::thread::yield_now();
            }
            Err(IngestError::Closed(_)) => panic!("server closed during ingest"),
        }
    }
}

/// Feeds the fleet over `connections` TCP connections — each feed pinned
/// to one connection (per-stream order is the determinism contract; the
/// interleaving across connections is free), even feeds ingested blocking,
/// odd feeds fail-fast with retry — and returns the final report plus the
/// drift offsets observed on a TCP event subscription.
fn run_over_tcp(
    feeds: &[Feed],
    num_shards: usize,
    connections: usize,
    chunk: usize,
) -> (ServeReport, HashMap<String, Vec<u64>>) {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ServeConfig { num_shards, queue_capacity: 64, run: run_config(), ..Default::default() },
    )
    .expect("bind loopback");
    let control = NetClient::connect(server.local_addr()).expect("connect control");
    let events = control.subscribe().expect("subscribe");
    for feed in feeds {
        control.attach(&feed.id, feed.schema.clone(), &feed.spec).expect("attach");
    }

    std::thread::scope(|scope| {
        for worker in 0..connections {
            let addr = server.local_addr();
            scope.spawn(move || {
                let conn = NetClient::connect(addr).expect("connect feeder");
                let mine: Vec<&Feed> = feeds.iter().skip(worker).step_by(connections).collect();
                let clients: Vec<NetStreamClient> =
                    mine.iter().map(|feed| conn.client(&feed.id)).collect();
                let mut cursors = vec![0usize; mine.len()];
                loop {
                    let mut progressed = false;
                    for (slot, feed) in mine.iter().enumerate() {
                        let cursor = cursors[slot];
                        if cursor >= feed.instances.len() {
                            continue;
                        }
                        let end = (cursor + chunk).min(feed.instances.len());
                        let batch = feed.instances[cursor..end].to_vec();
                        if slot % 2 == 0 {
                            clients[slot].ingest_batch(batch).expect("blocking ingest");
                        } else {
                            net_ingest_all(&clients[slot], batch);
                        }
                        cursors[slot] = end;
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
            });
        }
    });

    control.drain().expect("drain barrier");
    let report = control.shutdown().expect("shutdown over the wire");
    server.shutdown();

    let mut drifts: HashMap<String, Vec<u64>> = HashMap::new();
    for event in events {
        if let ServeEventKind::Drift { position, .. } = event.kind {
            drifts.entry(event.stream.to_string()).or_default().push(position);
        }
    }
    (report, drifts)
}

/// The same fleet through in-process `StreamClient`s (same attach order,
/// same per-feed chunking).
fn run_in_process(feeds: &[Feed], num_shards: usize, chunk: usize) -> ServeReport {
    let server = ServerHandle::start(ServeConfig {
        num_shards,
        queue_capacity: 64,
        run: run_config(),
        ..Default::default()
    });
    let clients: Vec<_> = feeds
        .iter()
        .map(|feed| server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap())
        .collect();
    let mut cursors = vec![0usize; feeds.len()];
    loop {
        let mut progressed = false;
        for (i, feed) in feeds.iter().enumerate() {
            let cursor = cursors[i];
            if cursor >= feed.instances.len() {
                continue;
            }
            let end = (cursor + chunk).min(feed.instances.len());
            clients[i].ingest_batch(feed.instances[cursor..end].to_vec()).unwrap();
            cursors[i] = end;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    server.drain();
    server.shutdown()
}

/// The acceptance-criteria pin: TCP-fed ≡ in-process ≡ sequential, at
/// every shard count, bitwise.
#[test]
fn tcp_fed_fleet_is_bitwise_identical_to_in_process_and_sequential() {
    let feeds = fleet();
    let sequential: HashMap<String, RunResult> = feeds
        .iter()
        .map(|feed| (feed.id.clone(), sequential_baseline(feed, run_config())))
        .collect();
    for feed in &feeds {
        // DDM stays quiet on this fleet (it still pins metric equality);
        // every other detector must fire so the offset pin is meaningful.
        if feed.spec.name != "ddm" {
            assert!(
                !sequential[&feed.id].detections.is_empty(),
                "{}: the injected drift must be detected so the pin is meaningful",
                feed.id
            );
        }
    }

    for (round, &num_shards) in shard_counts().iter().enumerate() {
        let chunk = [17usize, 53][round % 2];
        let (tcp_report, tcp_drifts) = run_over_tcp(&feeds, num_shards, 3, chunk);
        let in_process_report = run_in_process(&feeds, num_shards, chunk);

        // Final report: identical stream summaries (results AND shard
        // placement — timing counters are the one wall-clock-dependent
        // field, skipped like everywhere else), identical diagnostics.
        assert_eq!(tcp_report.streams.len(), in_process_report.streams.len());
        for (tcp, local) in tcp_report.streams.iter().zip(&in_process_report.streams) {
            assert_eq!(tcp.stream, local.stream, "@ {num_shards} shards: summary order");
            assert_eq!(tcp.shard, local.shard, "@ {num_shards} shards: shard placement");
            assert_results_match(
                &format!("{} @ {num_shards} shards TCP vs in-process", tcp.stream),
                &tcp.result,
                &local.result,
            );
        }
        assert_eq!(tcp_report.dropped_unknown, 0, "@ {num_shards} shards");
        assert_eq!(in_process_report.dropped_unknown, 0, "@ {num_shards} shards");
        assert_eq!(tcp_report.frames_dropped, 0, "@ {num_shards} shards: clean wire traffic");
        assert_eq!(tcp_report.panicked_shards, 0, "@ {num_shards} shards");
        assert_eq!(
            tcp_report.workspace_reuse_misses, in_process_report.workspace_reuse_misses,
            "@ {num_shards} shards: workspace accounting"
        );

        // Every stream matches the sequential ground truth, and the drift
        // events observed over the TCP subscription agree with the report.
        assert_eq!(tcp_report.streams.len(), feeds.len());
        for summary in &tcp_report.streams {
            assert_results_match(
                &format!("{} @ {num_shards} shards over TCP", summary.stream),
                &summary.result,
                &sequential[&summary.stream],
            );
            let observed = tcp_drifts.get(&summary.stream).cloned().unwrap_or_default();
            assert_eq!(
                observed, summary.result.detections,
                "{} @ {num_shards} shards: subscribed drift events vs report",
                summary.stream
            );
        }
    }
}

/// Serializes a checkpoint with the wall-clock timing counters zeroed —
/// the only nondeterministic bytes in a checkpoint (the result comparison
/// above skips the same fields).
fn scrubbed(checkpoint: &rbm_im_serve::StreamCheckpoint) -> serde::Value {
    fn scrub(value: &mut serde::Value) {
        match value {
            serde::Value::Object(fields) => {
                for (key, field) in fields.iter_mut() {
                    if matches!(
                        key.as_str(),
                        "detector_update_seconds" | "test_seconds" | "train_seconds"
                    ) {
                        *field = serde::Value::Number(0.0);
                    } else {
                        scrub(field);
                    }
                }
            }
            serde::Value::Array(items) => items.iter_mut().for_each(scrub),
            _ => {}
        }
    }
    let mut value = serde::Serialize::serialize_value(checkpoint);
    scrub(&mut value);
    value
}

/// Checkpoints captured over the wire are bitwise the checkpoints the
/// in-process server captures at the same drain point — and restoring a
/// wire-captured checkpoint resumes the stream to the exact sequential
/// result.
#[test]
fn wire_checkpoints_are_bitwise_and_resumable() {
    let (schema, instances) = record_drifting_stream(7, 8, 4, 1_200, 2_000);
    let spec = DetectorSpec::parse("rbm(mini_batch=25, warmup=4, persistence=1)").unwrap();
    let feed = Feed { id: "ckpt".into(), schema, instances, spec };
    let run = run_config();
    let split = 900usize;

    // Over the wire: feed the first half, drain, checkpoint, detach.
    let net_server =
        NetServer::bind("127.0.0.1:0", ServeConfig { num_shards: 2, run, ..Default::default() })
            .expect("bind");
    let client = NetClient::connect(net_server.local_addr()).expect("connect");
    let ingest = client.attach(&feed.id, feed.schema.clone(), &feed.spec).expect("attach");
    ingest.ingest_batch(feed.instances[..split].to_vec()).expect("ingest");
    client.drain().expect("drain");
    let wire_checkpoint = client.checkpoint_stream(&feed.id).expect("checkpoint over the wire");
    client.shutdown().expect("shutdown");
    net_server.shutdown();

    // In process: identical feed, identical drain point.
    let server = ServerHandle::start(ServeConfig { num_shards: 2, run, ..Default::default() });
    let in_proc = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
    in_proc.ingest_batch(feed.instances[..split].to_vec()).unwrap();
    server.drain();
    let local_checkpoint = server.checkpoint_stream(&feed.id).unwrap();
    server.shutdown();
    assert_eq!(
        scrubbed(&wire_checkpoint),
        scrubbed(&local_checkpoint),
        "wire and in-process checkpoints are bitwise (modulo wall-clock timers)"
    );

    // Restore the wire-captured checkpoint and feed the rest: the final
    // result equals the never-interrupted sequential run.
    let resume = ServerHandle::start(ServeConfig { num_shards: 2, run, ..Default::default() });
    let resumed = resume.restore_stream(&wire_checkpoint).unwrap();
    resumed.ingest_batch(feed.instances[split..].to_vec()).unwrap();
    resume.drain();
    let result = resume.detach(&feed.id).unwrap();
    resume.shutdown();
    let sequential = sequential_baseline(&feed, run);
    assert_results_match("resumed wire checkpoint", &result, &sequential);
}

/// Detach over the wire returns the same final summary the sequential
/// pipeline produces, and the detached id stops being servable.
#[test]
fn wire_detach_returns_the_sequential_result() {
    let (schema, instances) = record_drifting_stream(11, 6, 3, 900, 1_500);
    let spec = DetectorSpec::parse("adwin(delta=0.01)").unwrap();
    let feed = Feed { id: "detach-me".into(), schema, instances, spec };
    let run = run_config();

    let server =
        NetServer::bind("127.0.0.1:0", ServeConfig { num_shards: 2, run, ..Default::default() })
            .expect("bind");
    let client = NetClient::connect(server.local_addr()).expect("connect");
    let ingest = client.attach(&feed.id, feed.schema.clone(), &feed.spec).expect("attach");
    ingest.ingest_batch(feed.instances.clone()).expect("ingest");
    client.drain().expect("drain");
    let result = client.detach(&feed.id).expect("detach over the wire");
    assert_results_match("wire detach", &result, &sequential_baseline(&feed, run));

    let err = client.detach(&feed.id).expect_err("second detach must fail");
    assert!(
        matches!(err, rbm_im_net::NetError::Remote { code: rbm_im_net::ErrorCode::Serve, .. }),
        "{err}"
    );
    let report = client.shutdown().expect("shutdown");
    assert!(report.streams.is_empty(), "the detached stream already returned its result");
    server.shutdown();
}

/// The new kernel knobs survive the wire: a TCP `Attach` whose spec carries
/// `parallel=on, threads=2` (and a second feed with `fastmath=on`) produces
/// a report bitwise-identical to the same feeds attached in-process, and to
/// the sequential pipeline ground truth. This extends the serving-level
/// mode-transparency pin (`rbm-im-serve`) across the wire protocol — the
/// spec grammar's word-valued params round-trip through the frame codec.
#[test]
fn kernel_mode_params_attach_bitwise_identically_over_tcp() {
    rayon::ensure_pool(4);
    let specs = [
        "rbm(mini_batch=25, warmup=4, persistence=1, parallel=on, threads=2)",
        "rbm(mini_batch=25, warmup=4, persistence=1, fastmath=on)",
    ];
    let feeds: Vec<Feed> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (schema, instances) = record_drifting_stream(300 + i as u64, 8, 4, 2_500, 4_500);
            Feed {
                id: format!("mode-{i}"),
                schema,
                instances,
                spec: DetectorSpec::parse(spec).unwrap(),
            }
        })
        .collect();

    let (tcp_report, tcp_drifts) = run_over_tcp(&feeds, 2, 2, 41);
    let in_process_report = run_in_process(&feeds, 2, 41);

    assert_eq!(tcp_report.streams.len(), feeds.len());
    for (tcp, local) in tcp_report.streams.iter().zip(&in_process_report.streams) {
        assert_eq!(tcp.stream, local.stream, "summary order");
        assert_results_match(
            &format!("{} TCP vs in-process", tcp.stream),
            &tcp.result,
            &local.result,
        );
    }
    for (feed, summary) in feeds.iter().zip(&tcp_report.streams) {
        let sequential = sequential_baseline(feed, run_config());
        assert!(
            !sequential.detections.is_empty(),
            "{}: the injected drift must fire for the pin to bite",
            feed.id
        );
        assert_results_match(
            &format!("{} TCP vs sequential", feed.id),
            &summary.result,
            &sequential,
        );
        let observed = tcp_drifts.get(&feed.id).cloned().unwrap_or_default();
        assert_eq!(observed, summary.result.detections, "{}: subscribed drift events", feed.id);
    }
}
