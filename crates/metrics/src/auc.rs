//! Windowed multi-class AUC (the "pmAUC" of the paper).
//!
//! Following Wang & Minku (2020), the prequential multi-class AUC keeps a
//! sliding window of the most recent `(score vector, true class)` pairs and
//! computes the Hand & Till M-measure over the window: the average, over all
//! ordered class pairs `(i, j)`, of the probability that a random window
//! instance of class `i` receives a higher class-`i` score than a random
//! window instance of class `j` (ties count one half).
//!
//! The window makes the metric *prequential* (it follows the current state
//! of the stream) and the pairwise averaging makes it insensitive to class
//! imbalance — the property the paper's evaluation depends on.

use std::collections::VecDeque;

/// Sliding-window multi-class AUC estimator.
#[derive(Debug, Clone)]
pub struct WindowedMultiClassAuc {
    num_classes: usize,
    capacity: usize,
    /// Window of (per-class scores, true class).
    window: VecDeque<(Vec<f64>, usize)>,
}

impl WindowedMultiClassAuc {
    /// Creates an estimator over `num_classes` classes with a window of
    /// `capacity` recent predictions (the paper uses 1000).
    ///
    /// # Panics
    /// Panics if `num_classes < 2` or `capacity == 0`.
    pub fn new(num_classes: usize, capacity: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        assert!(capacity > 0, "window capacity must be > 0");
        WindowedMultiClassAuc { num_classes, capacity, window: VecDeque::with_capacity(capacity) }
    }

    /// Adds one prediction (per-class scores and the true class).
    ///
    /// # Panics
    /// Panics if `scores.len() != num_classes` or `true_class` is out of
    /// range.
    pub fn record(&mut self, scores: &[f64], true_class: usize) {
        assert_eq!(scores.len(), self.num_classes, "score vector length mismatch");
        assert!(true_class < self.num_classes, "true class out of range");
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back((scores.to_vec(), true_class));
    }

    /// Number of predictions currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Pairwise AUC `A(i | j)`: probability that class-`i` instances score
    /// higher on class `i` than class-`j` instances do. Returns `None` if
    /// either class is absent from the window.
    fn pairwise_auc(&self, class_i: usize, class_j: usize) -> Option<f64> {
        let scores_i: Vec<f64> =
            self.window.iter().filter(|(_, c)| *c == class_i).map(|(s, _)| s[class_i]).collect();
        let scores_j: Vec<f64> =
            self.window.iter().filter(|(_, c)| *c == class_j).map(|(s, _)| s[class_i]).collect();
        if scores_i.is_empty() || scores_j.is_empty() {
            return None;
        }
        // Rank-based computation: O((n+m) log(n+m)) via sorting.
        let mut combined: Vec<(f64, bool)> = scores_i
            .iter()
            .map(|&s| (s, true))
            .chain(scores_j.iter().map(|&s| (s, false)))
            .collect();
        combined.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores must not be NaN"));
        // Sum of ranks of class-i instances with midrank tie handling.
        let mut rank_sum_i = 0.0;
        let mut idx = 0usize;
        let n = combined.len();
        while idx < n {
            let mut j = idx;
            while j + 1 < n && combined[j + 1].0 == combined[idx].0 {
                j += 1;
            }
            let avg_rank = (idx + j) as f64 / 2.0 + 1.0;
            for item in &combined[idx..=j] {
                if item.1 {
                    rank_sum_i += avg_rank;
                }
            }
            idx = j + 1;
        }
        let n_i = scores_i.len() as f64;
        let n_j = scores_j.len() as f64;
        let u = rank_sum_i - n_i * (n_i + 1.0) / 2.0;
        Some(u / (n_i * n_j))
    }

    /// The multi-class AUC over the current window: the mean of
    /// `A(i | j)` over all ordered pairs of classes present in the window.
    /// Returns 0.5 (chance level) if fewer than two classes are present.
    pub fn auc(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..self.num_classes {
            for j in 0..self.num_classes {
                if i == j {
                    continue;
                }
                if let Some(a) = self.pairwise_auc(i, j) {
                    sum += a;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.5
        } else {
            sum / count as f64
        }
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Captures the window contents as a serde value (checkpoint support);
    /// restored with [`WindowedMultiClassAuc::restore_state`] onto an
    /// estimator of the same shape.
    pub fn snapshot_state(&self) -> serde::Value {
        use serde::Serialize;
        serde::Value::object(vec![
            ("num_classes", self.num_classes.serialize_value()),
            ("capacity", self.capacity.serialize_value()),
            ("window", self.window.serialize_value()),
        ])
    }

    /// Restores state captured by [`WindowedMultiClassAuc::snapshot_state`].
    pub fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let num_classes: usize = state.field("num_classes")?;
        let capacity: usize = state.field("capacity")?;
        if num_classes != self.num_classes || capacity != self.capacity {
            return Err(serde::Error::msg(format!(
                "auc window shape mismatch: snapshot is {num_classes} classes / capacity \
                 {capacity}, estimator is {} / {}",
                self.num_classes, self.capacity
            )));
        }
        self.window = state.field("window")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-hot score vector helper.
    fn one_hot(n: usize, class: usize, confidence: f64) -> Vec<f64> {
        let rest = (1.0 - confidence) / (n as f64 - 1.0);
        (0..n).map(|c| if c == class { confidence } else { rest }).collect()
    }

    #[test]
    fn perfect_scores_give_auc_one() {
        let mut auc = WindowedMultiClassAuc::new(3, 100);
        for i in 0..60 {
            let class = i % 3;
            auc.record(&one_hot(3, class, 0.9), class);
        }
        assert!((auc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_scores_give_auc_half() {
        let mut auc = WindowedMultiClassAuc::new(4, 400);
        // Identical scores for every instance: all pairwise comparisons tie.
        for i in 0..400 {
            auc.record(&[0.25, 0.25, 0.25, 0.25], i % 4);
        }
        assert!((auc.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let mut auc = WindowedMultiClassAuc::new(2, 100);
        for i in 0..100 {
            let class = i % 2;
            // Score is always higher for the wrong class.
            let scores = if class == 0 { vec![0.1, 0.9] } else { vec![0.9, 0.1] };
            auc.record(&scores, class);
        }
        assert!(auc.auc() < 1e-12);
    }

    #[test]
    fn imbalance_does_not_inflate_auc() {
        // A classifier that always scores class 0 highest: on a 99:1
        // imbalanced window its accuracy would be 99%, but its AUC must be
        // 0.5 because it cannot separate the classes.
        let mut auc = WindowedMultiClassAuc::new(2, 1000);
        for i in 0..1000 {
            let class = if i % 100 == 0 { 1 } else { 0 };
            auc.record(&[0.8, 0.2], class);
        }
        assert!((auc.auc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn partial_separation_is_between_half_and_one() {
        let mut auc = WindowedMultiClassAuc::new(2, 200);
        for i in 0..200 {
            let class = i % 2;
            // Class-1 instances score a bit higher on class 1, with overlap.
            let s1 =
                if class == 1 { 0.5 + (i % 7) as f64 * 0.05 } else { 0.4 + (i % 5) as f64 * 0.05 };
            auc.record(&[1.0 - s1, s1], class);
        }
        let a = auc.auc();
        assert!(a > 0.55 && a < 0.95, "auc = {a}");
    }

    #[test]
    fn missing_class_falls_back_gracefully() {
        let mut auc = WindowedMultiClassAuc::new(3, 50);
        for _ in 0..20 {
            auc.record(&one_hot(3, 0, 0.9), 0);
        }
        // Only one class present → chance level by definition.
        assert_eq!(auc.auc(), 0.5);
        // Two of three classes present: only those pairs count.
        for _ in 0..20 {
            auc.record(&one_hot(3, 1, 0.9), 1);
        }
        assert!((auc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_slides() {
        let mut auc = WindowedMultiClassAuc::new(2, 10);
        // Fill with bad predictions, then push 10 perfect ones: the bad ones
        // must be evicted entirely.
        for i in 0..10 {
            let class = i % 2;
            let scores = if class == 0 { vec![0.1, 0.9] } else { vec![0.9, 0.1] };
            auc.record(&scores, class);
        }
        for i in 0..10 {
            let class = i % 2;
            auc.record(&one_hot(2, class, 0.95), class);
        }
        assert_eq!(auc.len(), 10);
        assert!((auc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_window() {
        let mut auc = WindowedMultiClassAuc::new(2, 10);
        auc.record(&[0.4, 0.6], 1);
        assert!(!auc.is_empty());
        auc.reset();
        assert!(auc.is_empty());
        assert_eq!(auc.auc(), 0.5);
    }

    #[test]
    #[should_panic]
    fn wrong_score_length_rejected() {
        WindowedMultiClassAuc::new(3, 10).record(&[0.5, 0.5], 0);
    }
}
