//! ECDD — EWMA for Concept Drift Detection (Ross et al., 2012).
//!
//! Monitors the classifier error through an exponentially weighted moving
//! average `Z_t`. Under a stable error rate `p̂`, `Z_t` has standard
//! deviation `σ_Z = sqrt(λ / (2 − λ) · p̂ (1 − p̂))`; control limits at
//! `p̂ + L·σ_Z` give the warning and drift thresholds.

use crate::{DetectorState, DriftDetector, Observation};

/// Configuration of [`Ecdd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcddConfig {
    /// EWMA smoothing factor λ.
    pub lambda: f64,
    /// Warning control-limit multiplier.
    pub warning_limit: f64,
    /// Drift control-limit multiplier.
    pub drift_limit: f64,
    /// Minimum number of instances before the test activates.
    pub min_instances: u64,
}

impl Default for EcddConfig {
    fn default() -> Self {
        EcddConfig { lambda: 0.05, warning_limit: 3.0, drift_limit: 4.0, min_instances: 50 }
    }
}

/// The ECDD (EWMA) drift detector.
#[derive(Debug, Clone)]
pub struct Ecdd {
    config: EcddConfig,
    n: u64,
    errors: u64,
    z: f64,
    state: DetectorState,
}

impl Ecdd {
    /// Creates an ECDD detector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(EcddConfig::default())
    }

    /// Creates an ECDD detector with an explicit configuration.
    pub fn with_config(config: EcddConfig) -> Self {
        assert!(config.lambda > 0.0 && config.lambda <= 1.0);
        assert!(config.drift_limit > config.warning_limit);
        Ecdd { config, n: 0, errors: 0, z: 0.0, state: DetectorState::Stable }
    }
}

impl Default for Ecdd {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for Ecdd {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let x = if observation.correct { 0.0 } else { 1.0 };
        self.n += 1;
        if !observation.correct {
            self.errors += 1;
        }
        let lambda = self.config.lambda;
        // Raw EWMA starts at zero; the bias correction below rescales it so
        // early values are unbiased estimates of the error rate.
        self.z = lambda * x + (1.0 - lambda) * self.z;
        if self.n < self.config.min_instances {
            self.state = DetectorState::Stable;
            return self.state;
        }
        let p = self.errors as f64 / self.n as f64;
        let correction = 1.0 - (1.0 - lambda).powi(self.n as i32);
        let z_corrected = if correction > 0.0 { self.z / correction } else { self.z };
        // Finite-sample EWMA standard deviation (Ross et al., 2012).
        let finite = 1.0 - (1.0 - lambda).powi(2 * self.n as i32);
        let sigma_z = (lambda / (2.0 - lambda) * finite * p * (1.0 - p)).sqrt();
        self.state = if sigma_z > 0.0 && z_corrected > p + self.config.drift_limit * sigma_z {
            let c = self.config;
            *self = Ecdd::with_config(c);
            DetectorState::Drift
        } else if sigma_z > 0.0 && z_corrected > p + self.config.warning_limit * sigma_z {
            DetectorState::Warning
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = Ecdd::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "ECDD"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("n", self.n.serialize_value()),
            ("errors", self.errors.serialize_value()),
            ("z", self.z.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.n = state.field("n")?;
        self.errors = state.field("errors")?;
        self.z = state.field("z")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_abrupt_change, assert_quiet_on_stationary, run_error_stream,
    };

    #[test]
    fn detects_abrupt_error_increase() {
        assert_detects_abrupt_change(&mut Ecdd::new(), 500, 3);
    }

    #[test]
    fn quiet_on_stationary_stream() {
        assert_quiet_on_stationary(&mut Ecdd::new(), 3);
    }

    #[test]
    fn improvement_does_not_trigger() {
        assert!(run_error_stream(&mut Ecdd::new(), 0.5, 0.05, 3000, 6000, 11).is_empty());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut e = Ecdd::new();
        run_error_stream(&mut e, 0.1, 0.7, 500, 2000, 12);
        e.reset();
        assert_eq!(e.state(), DetectorState::Stable);
        assert_eq!(e.name(), "ECDD");
    }

    #[test]
    #[should_panic]
    fn invalid_limits_rejected() {
        Ecdd::with_config(EcddConfig {
            warning_limit: 3.0,
            drift_limit: 2.0,
            ..Default::default()
        });
    }
}
