//! Quick end-to-end timing of the flat vs reference CD-k trainers
//! (min-over-repetitions; see the `rbm_train` criterion bench for the
//! recorded baseline).

use rbm_im::network::{RbmNetwork, RbmNetworkConfig};
use rbm_im::reference::ReferenceRbmNetwork;
use rbm_im_streams::generators::GaussianMixtureGenerator;
use rbm_im_streams::{MiniBatch, StreamExt};
use std::time::Instant;

fn main() {
    for (v, z) in [(10usize, 4usize), (40, 4)] {
        let mut stream = GaussianMixtureGenerator::balanced(v, z, 1, 7);
        let batches: Vec<MiniBatch> = (0..64)
            .map(|_| MiniBatch { start_index: 0, instances: stream.take_instances(50) })
            .collect();
        let mut net = RbmNetwork::new(v, z, RbmNetworkConfig::default());
        for b in &batches {
            net.train_batch(b);
        }
        let mut flat_best = f64::INFINITY;
        for _ in 0..7 {
            let n = 3000;
            let start = Instant::now();
            for i in 0..n {
                std::hint::black_box(net.train_batch(&batches[i % 64]));
            }
            flat_best = flat_best.min(start.elapsed().as_secs_f64() * 1e6 / n as f64);
        }
        let mut rnet = ReferenceRbmNetwork::new(v, z, RbmNetworkConfig::default());
        for b in &batches {
            rnet.train_batch(b);
        }
        let mut ref_best = f64::INFINITY;
        for _ in 0..7 {
            let n = 1500;
            let start = Instant::now();
            for i in 0..n {
                std::hint::black_box(rnet.train_batch(&batches[i % 64]));
            }
            ref_best = ref_best.min(start.elapsed().as_secs_f64() * 1e6 / n as f64);
        }
        println!(
            "{v}f{z}c  flat {flat_best:7.3} us/batch ({:9.0} inst/s) | ref {ref_best:7.3} us/batch ({:9.0} inst/s) | speedup {:.2}x",
            50.0 / flat_best * 1e6,
            50.0 / ref_best * 1e6,
            ref_best / flat_best
        );
    }
}
