//! Checkout/restore pooling of RBM scratch [`Workspace`]s.
//!
//! A [`Workspace`] holds no model state — only
//! grown buffer capacity — so one workspace can serve any number of
//! [`RbmNetwork`](crate::network::RbmNetwork)s of any shape, sequentially.
//! The serving layer exploits that: each shard worker keeps one
//! [`WorkspacePool`]; when a stream attaches, its RBM-IM detector adopts a
//! pooled workspace (inheriting the capacity grown by every stream that ran
//! on the shard before it, so the new stream's hot path is allocation-free
//! from the first mini-batch of an already-seen shape), and when the stream
//! detaches, the workspace returns to the pool.
//!
//! The pool is deliberately single-threaded (no locking): it is per-shard
//! state owned by the shard's worker thread, exactly like the detectors it
//! feeds. Share-nothing sharding, not synchronization, is the concurrency
//! model.

use crate::network::Workspace;

/// A LIFO pool of scratch workspaces.
///
/// LIFO order keeps the most recently used — and therefore most
/// capacity-grown and cache-warm — workspace on top.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Vec<Workspace>,
    checked_out: usize,
    /// Total checkouts served from the free list (reuse hits).
    hits: u64,
    /// Total checkouts that had to create a fresh workspace.
    misses: u64,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Takes a workspace out of the pool, creating a fresh (empty) one if
    /// none is free. The caller returns it with [`WorkspacePool::restore`]
    /// when done; dropping it instead is safe but forfeits the capacity.
    pub fn checkout(&mut self) -> Workspace {
        self.checked_out += 1;
        match self.free.pop() {
            Some(ws) => {
                self.hits += 1;
                ws
            }
            None => {
                self.misses += 1;
                Workspace::default()
            }
        }
    }

    /// Returns a previously checked-out (or externally built) workspace to
    /// the pool.
    pub fn restore(&mut self, ws: Workspace) {
        self.checked_out = self.checked_out.saturating_sub(1);
        self.free.push(ws);
    }

    /// Number of free workspaces currently pooled.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of workspaces currently checked out.
    pub fn checked_out(&self) -> usize {
        self.checked_out
    }

    /// Checkouts satisfied by reusing a pooled workspace.
    pub fn reuse_hits(&self) -> u64 {
        self.hits
    }

    /// Checkouts that created a fresh workspace.
    pub fn reuse_misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{RbmNetwork, RbmNetworkConfig};
    use rbm_im_streams::generators::GaussianMixtureGenerator;
    use rbm_im_streams::{Instance, StreamExt};

    #[test]
    fn checkout_restore_cycles_reuse_capacity() {
        let mut pool = WorkspacePool::new();
        let ws = pool.checkout();
        assert_eq!(pool.reuse_misses(), 1);
        assert_eq!(pool.checked_out(), 1);
        pool.restore(ws);
        assert_eq!(pool.free_count(), 1);
        assert_eq!(pool.checked_out(), 0);
        let _ws = pool.checkout();
        assert_eq!(pool.reuse_hits(), 1);
        assert_eq!(pool.free_count(), 0);
    }

    #[test]
    fn pooled_workspace_serves_multiple_networks() {
        // One workspace scores instances against two different networks —
        // the read-only `_with` API plus the pool is exactly what lets a
        // shard share scratch across all its streams.
        let mut stream = GaussianMixtureGenerator::balanced(6, 3, 1, 5);
        let mut net_a = RbmNetwork::new(6, 3, RbmNetworkConfig::default());
        let mut net_b =
            RbmNetwork::new(6, 3, RbmNetworkConfig { seed: 7, ..RbmNetworkConfig::default() });
        let warm = stream.take_instances(100);
        let mut features = Vec::new();
        let mut classes = Vec::new();
        for inst in &warm {
            features.extend_from_slice(&inst.features);
            classes.push(inst.class);
        }
        net_a.train_flat(&features, &classes);
        net_b.train_flat(&features, &classes);

        let mut pool = WorkspacePool::new();
        let mut ws = pool.checkout();
        let probe = Instance::new(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], 1);
        let err_a = net_a.reconstruction_error_with(&mut ws, &probe);
        let err_b = net_b.reconstruction_error_with(&mut ws, &probe);
        assert!(err_a.is_finite() && err_b.is_finite());
        // Scoring depends only on the model, never on which workspace is
        // used: a fresh workspace reproduces the pooled one's results
        // exactly.
        let mut fresh = Workspace::default();
        assert_eq!(err_a, net_a.reconstruction_error_with(&mut fresh, &probe));
        assert_eq!(err_b, net_b.reconstruction_error_with(&mut fresh, &probe));
        pool.restore(ws);
        assert_eq!(pool.free_count(), 1);
    }

    #[test]
    fn adopted_workspace_round_trips_through_a_network() {
        let mut pool = WorkspacePool::new();
        let mut net = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        let previous = net.adopt_workspace(pool.checkout());
        pool.restore(previous);
        let mut stream = GaussianMixtureGenerator::balanced(5, 3, 1, 9);
        let batch = stream.take_instances(50);
        let mut features = Vec::new();
        let mut classes = Vec::new();
        for inst in &batch {
            features.extend_from_slice(&inst.features);
            classes.push(inst.class);
        }
        net.train_flat(&features, &classes);
        pool.restore(net.take_workspace());
        assert_eq!(pool.free_count(), 2);
    }
}
