//! `serve_throughput`: sustained multi-stream serving throughput versus
//! shard count.
//!
//! 64 concurrent drifting streams (the scale of the acceptance criteria)
//! are attached with tuned RBM-IM detectors and pumped to completion; one
//! iteration measures attach → ingest (client-side micro-batches of 50,
//! blocking backpressure) → drain → shutdown, and the throughput is total
//! instances over wall time. Shard counts 1, 2 and 8 quantify scaling;
//! `BENCH_serve.json` records the measured baseline (note the runner's
//! core count — shard scaling needs real cores).
//!
//! The `budget-capped` arm reruns the 8-shard workload under a
//! supervisor [`TierPolicy`] whose hot cap (16 of 64 streams) forces
//! continuous evict/rehydrate churn — the throughput cost of serving the
//! same traffic in a quarter of the memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_serve::{
    ServeConfig, ServerHandle, SnapshotSink, Supervisor, SupervisorConfig, TierPolicy,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, StreamExt, StreamSchema};
use std::sync::Arc;
use std::time::Duration;

const STREAMS: usize = 64;
const INSTANCES_PER_STREAM: usize = 400;

/// Pre-recorded drifting feeds so iterations measure serving, not
/// generation.
fn record_feeds() -> Vec<(String, StreamSchema, Vec<Instance>)> {
    (0..STREAMS)
        .map(|i| {
            let mut gen = RandomRbfGenerator::new(10, 4, 2, 0.0, 900 + i as u64);
            let schema = gen.schema().clone();
            let mut instances = gen.take_instances(INSTANCES_PER_STREAM / 2);
            gen.regenerate();
            instances.extend(gen.take_instances(INSTANCES_PER_STREAM / 2));
            (format!("feed-{i:02}"), schema, instances)
        })
        .collect()
}

fn bench_serve_throughput(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let feeds = record_feeds();
    let spec = DetectorSpec::parse("rbm(minibatch=25, warmup=4)").unwrap();
    let total = (STREAMS * INSTANCES_PER_STREAM) as u64;

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    for shards in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("64streams", format!("{shards}shards")),
            &(),
            |b, _| {
                b.iter(|| {
                    let server = ServerHandle::start(ServeConfig {
                        num_shards: shards,
                        queue_capacity: 256,
                        ..Default::default()
                    });
                    let clients: Vec<_> = feeds
                        .iter()
                        .map(|(id, schema, _)| server.attach(id, schema.clone(), &spec).unwrap())
                        .collect();
                    // Round-robin micro-batched ingest across all feeds.
                    for chunk_start in (0..INSTANCES_PER_STREAM).step_by(50) {
                        for ((_, _, instances), client) in feeds.iter().zip(&clients) {
                            let end = (chunk_start + 50).min(instances.len());
                            client.ingest_batch(instances[chunk_start..end].to_vec()).unwrap();
                        }
                    }
                    server.drain();
                    server.shutdown()
                })
            },
        );
    }

    // Same 64-stream workload, 8 shards, but the hot tier is budget-capped
    // to 16 streams: the supervisor evicts LRU streams to binary spill
    // files while ingest keeps waking them — worst-case tier churn.
    let spill_dir = std::env::temp_dir().join(format!("rbm-bench-budget-{}", std::process::id()));
    group.bench_with_input(BenchmarkId::new("64streams-budget", "8shards-16hot"), &(), |b, _| {
        b.iter(|| {
            let server = Arc::new(ServerHandle::start(ServeConfig {
                num_shards: 8,
                queue_capacity: 256,
                ..Default::default()
            }));
            let supervisor = Supervisor::start(
                Arc::clone(&server),
                SnapshotSink::new(&spill_dir).expect("spill dir"),
                SupervisorConfig {
                    tick: Duration::from_millis(2),
                    checkpoint: None,
                    resize: None,
                    tier: Some(TierPolicy::default().with_max_hot_streams(16)),
                },
            );
            let clients: Vec<_> = feeds
                .iter()
                .map(|(id, schema, _)| server.attach(id, schema.clone(), &spec).unwrap())
                .collect();
            for chunk_start in (0..INSTANCES_PER_STREAM).step_by(50) {
                for ((_, _, instances), client) in feeds.iter().zip(&clients) {
                    let end = (chunk_start + 50).min(instances.len());
                    client.ingest_batch(instances[chunk_start..end].to_vec()).unwrap();
                }
            }
            server.drain();
            let report = supervisor.stop();
            assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
            Arc::try_unwrap(server).expect("supervisor stopped").shutdown()
        })
    });
    let _ = std::fs::remove_dir_all(&spill_dir);
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
