//! The retained naive reference implementation of the three-layer RBM.
//!
//! This is the seed's per-instance, `Vec<Vec<f64>>`-backed network, kept
//! verbatim (modulo visibility) as the ground truth that the flat-matrix
//! [`crate::network::RbmNetwork`] is tested against: the equivalence suite
//! (`crates/rbm/tests/equivalence.rs`) proves that hidden/visible/class
//! probabilities, free-energy prediction, reconstruction errors, and
//! `train_batch` weight updates of the two implementations agree to within
//! 1e-12. Training, errors, and probabilities are in fact designed to be
//! bitwise-identical — both consume the RNG stream in the same
//! per-instance order and accumulate every sum in the same element order;
//! only `predict` re-associates its free-energy sum (the flat version
//! hoists the class-independent `v·w` term), so predictions agree up to
//! last-ulp rounding of near-exact ties.
//!
//! The reference is deliberately slow — one heap allocation per matrix row,
//! fresh `Vec`s in every probability call, scalar per-instance CD-k — and
//! serves double duty as the "seed per-instance CD-k" baseline of the
//! `rbm_train` microbenchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbm_im_streams::{Instance, MiniBatch};

use crate::network::RbmNetworkConfig;

/// The seed's three-layer RBM: nested-`Vec` storage, per-instance CD-k.
#[derive(Debug, Clone)]
pub struct ReferenceRbmNetwork {
    num_visible: usize,
    num_hidden: usize,
    num_classes: usize,
    config: RbmNetworkConfig,
    /// Visible–hidden weights, `w[i][j]` connecting `v_i` to `h_j`.
    pub w: Vec<Vec<f64>>,
    /// Hidden–class weights, `u[j][k]` connecting `h_j` to `z_k`.
    pub u: Vec<Vec<f64>>,
    /// Visible biases `a_i`.
    pub a: Vec<f64>,
    /// Hidden biases `b_j`.
    pub b: Vec<f64>,
    /// Class biases `c_k`.
    pub c: Vec<f64>,
    w_vel: Vec<Vec<f64>>,
    u_vel: Vec<Vec<f64>>,
    class_counts: Vec<u64>,
    feature_min: Vec<f64>,
    feature_max: Vec<f64>,
    rng: StdRng,
    batches_trained: u64,
}

impl ReferenceRbmNetwork {
    /// Creates an untrained network for the given schema.
    pub fn new(num_features: usize, num_classes: usize, config: RbmNetworkConfig) -> Self {
        assert!(num_features > 0);
        assert!(num_classes >= 2);
        assert!(config.hidden_fraction > 0.0);
        assert!(config.learning_rate > 0.0);
        assert!(config.gibbs_steps >= 1);
        assert!(config.class_balance_beta > 0.0 && config.class_balance_beta < 1.0);
        let num_hidden = crate::network::hidden_count(num_features, &config);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = 0.1;
        let w = (0..num_features)
            .map(|_| (0..num_hidden).map(|_| (rng.gen::<f64>() - 0.5) * scale).collect())
            .collect();
        let u = (0..num_hidden)
            .map(|_| (0..num_classes).map(|_| (rng.gen::<f64>() - 0.5) * scale).collect())
            .collect();
        ReferenceRbmNetwork {
            num_visible: num_features,
            num_hidden,
            num_classes,
            config,
            w,
            u,
            a: vec![0.0; num_features],
            b: vec![0.0; num_hidden],
            c: vec![0.0; num_classes],
            w_vel: vec![vec![0.0; num_hidden]; num_features],
            u_vel: vec![vec![0.0; num_classes]; num_hidden],
            class_counts: vec![0; num_classes],
            feature_min: vec![f64::INFINITY; num_features],
            feature_max: vec![f64::NEG_INFINITY; num_features],
            rng,
            batches_trained: 0,
        }
    }

    /// Number of hidden units.
    pub fn num_hidden(&self) -> usize {
        self.num_hidden
    }

    /// Number of mini-batches trained on so far.
    pub fn batches_trained(&self) -> u64 {
        self.batches_trained
    }

    /// Per-class instance counts accumulated during training.
    pub fn class_counts(&self) -> &[u64] {
        &self.class_counts
    }

    fn sigmoid(x: f64) -> f64 {
        1.0 / (1.0 + (-x).exp())
    }

    /// Min–max normalizes a feature vector into `[0, 1]` using the running
    /// per-feature ranges (features never observed to vary map to 0.5).
    pub fn normalize(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let (lo, hi) = (self.feature_min[i], self.feature_max[i]);
                if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-12 {
                    0.5
                } else {
                    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    fn observe_ranges(&mut self, instance: &Instance) {
        for (i, &x) in instance.features.iter().enumerate() {
            if x < self.feature_min[i] {
                self.feature_min[i] = x;
            }
            if x > self.feature_max[i] {
                self.feature_max[i] = x;
            }
        }
    }

    /// Hidden activation probabilities given visible values and a class
    /// one-hot/soft encoding (Eq. 10).
    pub fn hidden_probabilities(&self, v: &[f64], z: &[f64]) -> Vec<f64> {
        (0..self.num_hidden)
            .map(|j| {
                let mut act = self.b[j];
                for (i, &vi) in v.iter().enumerate() {
                    act += vi * self.w[i][j];
                }
                for (k, &zk) in z.iter().enumerate() {
                    act += zk * self.u[j][k];
                }
                Self::sigmoid(act)
            })
            .collect()
    }

    /// Visible reconstruction probabilities given hidden values (Eq. 11).
    pub fn visible_probabilities(&self, h: &[f64]) -> Vec<f64> {
        (0..self.num_visible)
            .map(|i| {
                let mut act = self.a[i];
                for (j, &hj) in h.iter().enumerate() {
                    act += hj * self.w[i][j];
                }
                Self::sigmoid(act)
            })
            .collect()
    }

    /// Class reconstruction probabilities (softmax, Eq. 12).
    pub fn class_probabilities(&self, h: &[f64]) -> Vec<f64> {
        let activations: Vec<f64> = (0..self.num_classes)
            .map(|k| {
                let mut act = self.c[k];
                for (j, &hj) in h.iter().enumerate() {
                    act += hj * self.u[j][k];
                }
                act
            })
            .collect();
        let max = activations.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = activations.iter().map(|&x| (x - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.iter().map(|e| e / total).collect()
    }

    fn sample_binary(&mut self, probabilities: &[f64]) -> Vec<f64> {
        probabilities.iter().map(|&p| if self.rng.gen::<f64>() < p { 1.0 } else { 0.0 }).collect()
    }

    /// Class-balanced loss weight of a class (Eq. 13).
    pub fn class_weight(&self, class: usize) -> f64 {
        let beta = self.config.class_balance_beta;
        let raw: Vec<f64> = self
            .class_counts
            .iter()
            .map(|&n| {
                if n == 0 {
                    (1.0 - beta) / (1.0 - beta.powi(1))
                } else {
                    (1.0 - beta) / (1.0 - beta.powi(n.min(i32::MAX as u64) as i32))
                }
            })
            .collect();
        let mean: f64 = raw.iter().sum::<f64>() / raw.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            raw[class] / mean
        }
    }

    /// Free-energy prediction (lowest-energy class wins).
    pub fn predict(&self, features: &[f64]) -> usize {
        let v = self.normalize(features);
        let visible_term: f64 = v.iter().zip(self.a.iter()).map(|(vi, ai)| vi * ai).sum();
        let mut best = (0usize, f64::NEG_INFINITY);
        for k in 0..self.num_classes {
            let mut neg_free_energy = visible_term + self.c[k];
            for j in 0..self.num_hidden {
                let mut act = self.b[j] + self.u[j][k];
                for (i, &vi) in v.iter().enumerate() {
                    act += vi * self.w[i][j];
                }
                neg_free_energy += if act > 30.0 { act } else { (1.0 + act.exp()).ln() };
            }
            if neg_free_energy > best.1 {
                best = (k, neg_free_energy);
            }
        }
        best.0
    }

    /// Reconstruction error of a single labeled instance (Eq. 22–26).
    pub fn reconstruction_error(&self, instance: &Instance) -> f64 {
        let v = self.normalize(&instance.features);
        let mut z = vec![0.0; self.num_classes];
        if instance.class < self.num_classes {
            z[instance.class] = 1.0;
        }
        let h = self.hidden_probabilities(&v, &z);
        let v_rec = self.visible_probabilities(&h);
        let z_rec = self.class_probabilities(&h);
        let mut sum = 0.0;
        for (x, xr) in v.iter().zip(v_rec.iter()) {
            sum += (x - xr) * (x - xr);
        }
        for (y, yr) in z.iter().zip(z_rec.iter()) {
            sum += (y - yr) * (y - yr);
        }
        sum.sqrt()
    }

    /// Average reconstruction error of each class over a mini-batch
    /// (Eq. 27). Classes absent from the batch yield `None`.
    pub fn batch_reconstruction_errors(&self, batch: &MiniBatch) -> Vec<Option<f64>> {
        let mut sums = vec![0.0; self.num_classes];
        let mut counts = vec![0usize; self.num_classes];
        for instance in &batch.instances {
            if instance.class >= self.num_classes {
                continue;
            }
            sums[instance.class] += self.reconstruction_error(instance);
            counts[instance.class] += 1;
        }
        sums.iter()
            .zip(counts.iter())
            .map(|(&s, &c)| if c == 0 { None } else { Some(s / c as f64) })
            .collect()
    }

    /// Trains on one mini-batch with per-instance CD-k (the seed hot loop).
    pub fn train_batch(&mut self, batch: &MiniBatch) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        for instance in &batch.instances {
            self.observe_ranges(instance);
            if instance.class < self.num_classes {
                self.class_counts[instance.class] += 1;
            }
        }

        let lr = self.config.learning_rate / batch.len() as f64;
        let momentum = self.config.momentum;
        let decay = self.config.weight_decay;

        let mut dw = vec![vec![0.0; self.num_hidden]; self.num_visible];
        let mut du = vec![vec![0.0; self.num_classes]; self.num_hidden];
        let mut da = vec![0.0; self.num_visible];
        let mut db = vec![0.0; self.num_hidden];
        let mut dc = vec![0.0; self.num_classes];
        let mut total_error = 0.0;

        for instance in &batch.instances {
            if instance.class >= self.num_classes {
                continue;
            }
            let weight = self.class_weight(instance.class);
            let v0 = self.normalize(&instance.features);
            let mut z0 = vec![0.0; self.num_classes];
            z0[instance.class] = 1.0;

            let h0_prob = self.hidden_probabilities(&v0, &z0);
            let mut h_sample = self.sample_binary(&h0_prob);

            let mut vk = v0.clone();
            let mut zk = z0.clone();
            let mut hk_prob = h0_prob.clone();
            for step in 0..self.config.gibbs_steps {
                vk = self.visible_probabilities(&h_sample);
                zk = self.class_probabilities(&h_sample);
                hk_prob = self.hidden_probabilities(&vk, &zk);
                if step + 1 < self.config.gibbs_steps {
                    h_sample = self.sample_binary(&hk_prob);
                } else {
                    h_sample = hk_prob.clone();
                }
            }

            for i in 0..self.num_visible {
                for j in 0..self.num_hidden {
                    dw[i][j] += weight * (v0[i] * h0_prob[j] - vk[i] * hk_prob[j]);
                }
                da[i] += weight * (v0[i] - vk[i]);
            }
            for j in 0..self.num_hidden {
                for k in 0..self.num_classes {
                    du[j][k] += weight * (h0_prob[j] * z0[k] - hk_prob[j] * zk[k]);
                }
                db[j] += weight * (h0_prob[j] - hk_prob[j]);
            }
            for k in 0..self.num_classes {
                dc[k] += weight * (z0[k] - zk[k]);
            }

            let mut err = 0.0;
            for (x, xr) in v0.iter().zip(vk.iter()) {
                err += (x - xr) * (x - xr);
            }
            for (y, yr) in z0.iter().zip(zk.iter()) {
                err += (y - yr) * (y - yr);
            }
            total_error += weight * err.sqrt();
        }

        for i in 0..self.num_visible {
            for (j, dw_ij) in dw[i].iter().enumerate() {
                self.w_vel[i][j] =
                    momentum * self.w_vel[i][j] + lr * (dw_ij - decay * self.w[i][j]);
                self.w[i][j] += self.w_vel[i][j];
            }
            self.a[i] += lr * da[i];
        }
        for j in 0..self.num_hidden {
            for (k, du_jk) in du[j].iter().enumerate() {
                self.u_vel[j][k] =
                    momentum * self.u_vel[j][k] + lr * (du_jk - decay * self.u[j][k]);
                self.u[j][k] += self.u_vel[j][k];
            }
            self.b[j] += lr * db[j];
        }
        for (c, dc_k) in self.c.iter_mut().zip(dc.iter()) {
            *c += lr * dc_k;
        }
        self.batches_trained += 1;
        total_error / batch.len() as f64
    }

    /// Forgets everything.
    pub fn reset(&mut self) {
        *self = ReferenceRbmNetwork::new(self.num_visible, self.num_classes, self.config);
    }
}
