//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`) backed by a
//! simple wall-clock measurement: each benchmark closure is warmed up once,
//! then timed over enough iterations to fill a short measurement window, and
//! the mean per-iteration time (plus derived throughput) is printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the std black box.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: function name plus parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; this stub always runs one batch per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Exactly one setup per timed routine call.
    PerIteration,
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_seconds: f64,
    iterations: u64,
    measurement: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up + calibration run.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        // Pick an iteration count that roughly fills the measurement window,
        // capped so pathologically slow routines still finish.
        let target = self.measurement.as_secs_f64();
        let iters = (target / first.as_secs_f64()).clamp(1.0, 1e6) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_seconds = elapsed.as_secs_f64() / iters as f64;
        self.iterations = iters;
    }

    /// Times `routine` over per-iteration inputs built by `setup`, with
    /// the setup excluded from the measurement — the shape benches use
    /// when each timed call must start from a state the call destroys
    /// (e.g. parking a stream that the next setup wakes back up).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Warm-up + calibration run.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let first = start.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement.as_secs_f64();
        let iters = (target / first.as_secs_f64()).clamp(1.0, 1e6) as u64;
        let mut timed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
        }
        self.mean_seconds = timed.as_secs_f64() / iters as f64;
        self.iterations = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted for API compatibility; this stub
    /// always runs one calibrated measurement per benchmark).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.measurement = window;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher =
            Bencher { mean_seconds: 0.0, iterations: 0, measurement: self.criterion.measurement };
        routine(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Benchmarks `routine` without an input.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher =
            Bencher { mean_seconds: 0.0, iterations: 0, measurement: self.criterion.measurement };
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    fn report(&self, label: &str, bencher: &Bencher) {
        let mean = bencher.mean_seconds;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{:<40} {:>12}  [{} iter]{}",
            self.name,
            label,
            format_duration(mean),
            bencher.iterations,
            rate
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("standalone");
        group.bench_function(id, routine);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro. Cargo passes
/// `--bench` (and possibly filters) on the command line; this stub runs every
/// group unconditionally unless `--list` is given.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { measurement: Duration::from_millis(5) };
        let mut group = c.benchmark_group("test");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut c = Criterion { measurement: Duration::from_millis(5) };
        let mut group = c.benchmark_group("test");
        group.bench_with_input(BenchmarkId::new("batched", 1), &(), |b, _| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(2.0).ends_with(" s"));
        assert!(format_duration(2e-3).ends_with(" ms"));
        assert!(format_duration(2e-6).ends_with(" us"));
        assert!(format_duration(2e-9).ends_with(" ns"));
    }
}
