//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in. Built directly on `proc_macro` (no `syn`/`quote`, which are
//! unavailable offline), so it supports exactly the shapes this workspace
//! uses: structs with named fields and enums with unit variants. Anything
//! else panics at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct name + named field identifiers.
    Struct(String, Vec<String>),
    /// Enum name + unit variant identifiers.
    Enum(String, Vec<String>),
}

/// Parses the derive input far enough to know the type name and its fields
/// or variants.
fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and the
    // visibility qualifier.
    let mut kind: Option<String> = None;
    while let Some(tree) = iter.next() {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let text = id.to_string();
                match text.as_str() {
                    "pub" => {
                        // `pub(crate)` carries a parenthesized group.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                let _ = iter.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        kind = Some(text);
                        break;
                    }
                    _ => panic!("serde derive: unexpected token `{text}` before struct/enum"),
                }
            }
            other => panic!("serde derive: unexpected token {other} before struct/enum"),
        }
    }
    let kind = kind.expect("serde derive: no struct/enum keyword found");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde derive: only non-generic braced types are supported (type {name}, found {other:?})"
        ),
    };
    if kind == "struct" {
        Shape::Struct(name, parse_named_fields(body))
    } else {
        Shape::Enum(name, parse_unit_variants(body))
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        let mut field_name: Option<String> = None;
        while let Some(tree) = iter.next() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    let _ = iter.next();
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                TokenTree::Ident(id) => {
                    field_name = Some(id.to_string());
                    break;
                }
                other => panic!("serde derive: unexpected token {other} in struct body"),
            }
        }
        let Some(field_name) = field_name else { break };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde derive: expected `:` after field `{field_name}` (tuple structs unsupported), found {other:?}"
            ),
        }
        // Consume the type tokens up to the next top-level comma. Groups are
        // single token trees, so generic arguments inside `<...>` need
        // explicit depth tracking.
        let mut angle_depth = 0usize;
        for tree in iter.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field_name);
    }
    fields
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tree) = iter.next() {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                let name = id.to_string();
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    panic!(
                        "serde derive: enum variant `{name}` carries data; only unit variants are supported"
                    );
                }
                variants.push(name);
            }
            other => panic!("serde derive: unexpected token {other} in enum body"),
        }
    }
    variants
}

/// Derives `serde::Serialize` (value-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",\n")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let variant = match self {{ {arms} }};\n\
                         ::serde::Value::String(variant.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated.parse().expect("serde derive: generated invalid Rust")
}

/// Derives `serde::Deserialize` (value-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let reads: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(value.get(\"{f}\").ok_or_else(|| ::serde::Error::msg(\"missing field `{f}` in {name}\"))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {reads} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String =
                variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v}),\n")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => Err(::serde::Error::msg(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(::serde::Error::msg(format!(\"expected {name} variant string, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated.parse().expect("serde derive: generated invalid Rust")
}
