//! Shard worker threads: each shard exclusively owns the pipeline state of
//! the streams routed to it.
//!
//! A shard is a plain loop over its bounded ingest channel. All state —
//! classifier, detector, prequential evaluator, and the pooled RBM scratch
//! [`Workspace`](rbm_im::Workspace)s — lives on the worker thread;
//! correctness needs no locks because nothing is shared. Per-stream
//! instance order is the channel order, so results are independent of how
//! streams interleave: every stream steps through exactly the code a
//! sequential [`PipelineBuilder`](rbm_im_harness::pipeline::PipelineBuilder)
//! run executes ([`PipelineStepper`]).
//!
//! On top of ingest, workers speak the **migration protocol** that powers
//! elastic resharding (`ServerHandle::resize_shards`) and
//! restart-from-disk:
//!
//! * `Park` marks stream ids whose ingest should be *buffered* instead of
//!   processed — on a migration source this freezes the stream's state
//!   while keeping every instance; on a migration target it catches
//!   instances that arrive before the stream's state does;
//! * `Extract` removes a parked stream and hands back a
//!   [`MigrationBundle`]: its checkpoint (schema + effective spec + run
//!   config + the stepper's complete state, partially filled detector
//!   micro-batch included) plus everything parked so far;
//! * `Unpark` closes a park entry — returning the buffered instances if
//!   the stream is gone (migration stragglers, replayed on the target), or
//!   replaying them in place if the stream is still attached (abort path);
//! * `Restore` rebuilds a stream from a bundle, replays the carried
//!   instances and then the target's own park buffer — in exactly arrival
//!   order, so a migrated stream loses nothing and reorders nothing.
//!
//! Streams additionally live in one of two **residency tiers**
//! (`ARCHITECTURE.md` §9). A [`StreamSlot::Hot`] slot holds live pipeline
//! state; a [`StreamSlot::Cold`] slot holds only the stream's binary
//! checkpoint — as in-memory bytes right after a dirty eviction, or as a
//! path into the spill directory once the supervisor has demoted it to
//! disk. `Hibernate` evicts (reusing the caller's fresh spill when the
//! positions match, encoding on demand otherwise) and returns the
//! stream's workspace scratch to the shard pool; ingest, detach and
//! shutdown transparently rehydrate through the same codec path the
//! migration protocol uses, so a hibernated stream is observationally
//! identical to a hot one — bitwise.

use crate::chaos::FaultPlane;
use crate::event::{EventBus, ServeEvent, ServeEventKind};
use crate::server::{HibernateOutcome, ServeError, StreamCheckpoint, StreamSummary};
use rbm_im::pool::WorkspacePool;
use rbm_im::RbmIm;
use rbm_im_detectors::DriftDetector;
use rbm_im_harness::checkpoint::codec::{self, CheckpointCodec};
use rbm_im_harness::checkpoint::PipelineCheckpoint;
use rbm_im_harness::pipeline::{RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_harness::stepper::PipelineStepper;
use rbm_im_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use rbm_im_streams::{Instance, StreamSchema};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Whether `RBM_HIBERNATE` forces aggressive shard-level hibernation:
/// every stream is evicted to its binary checkpoint right after **each**
/// processed ingest message, so the next message rehydrates it again.
/// Worst-case thrash on purpose — the CI `hibernate` job runs the
/// determinism suites under this to prove tiering is bitwise-invisible.
/// Read once; the value is fixed for the process lifetime.
fn forced_hibernate() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        matches!(
            std::env::var("RBM_HIBERNATE").ok().as_deref(),
            Some("on") | Some("1") | Some("true") | Some("aggressive") | Some("every")
        )
    })
}

/// Lock-free per-shard load counters, shared between the ingest senders
/// (which count enqueues) and the worker thread (which counts completions).
/// `enqueued − processed` is the shard's live queue depth — the signal the
/// supervisor's [`ResizePolicy`](crate::supervisor::ResizePolicy) watches.
/// Counters are monotone, so reads need no coordination with the hot path.
///
/// The counters live in the server's
/// [`MetricsRegistry`] (`rbm_serve_*_total{shard}` families), so the
/// resize policy, `ServerHandle::shard_loads`, and the exposition paths
/// all read the **same** instruments — there is no private duplicate.
/// Registry handles are monotone across resizes: a re-grown shard slot
/// reattaches to its counters, which keeps `enqueued − processed`
/// consistent because both sides survive together.
#[derive(Clone)]
pub(crate) struct ShardGauge {
    /// Ingest messages successfully enqueued to this shard.
    pub enqueued_messages: Arc<Counter>,
    /// Ingest messages the worker has fully processed.
    pub processed_messages: Arc<Counter>,
    /// Instances inside the enqueued messages.
    pub enqueued_instances: Arc<Counter>,
    /// Instances inside the processed messages.
    pub processed_instances: Arc<Counter>,
}

impl ShardGauge {
    /// Binds (or rebinds) the gauge counters of shard slot `index` in the
    /// server's metrics registry.
    pub fn for_shard(metrics: &MetricsRegistry, index: usize) -> Self {
        let shard = index.to_string();
        let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
        ShardGauge {
            enqueued_messages: metrics.counter("rbm_serve_enqueued_messages_total", labels),
            processed_messages: metrics.counter("rbm_serve_processed_messages_total", labels),
            enqueued_instances: metrics.counter("rbm_serve_enqueued_instances_total", labels),
            processed_instances: metrics.counter("rbm_serve_processed_instances_total", labels),
        }
    }

    /// Records one enqueued ingest message of `instances` instances.
    pub fn record_enqueue(&self, instances: u64) {
        self.enqueued_messages.inc();
        self.enqueued_instances.add(instances);
    }

    /// Records one fully processed ingest message of `instances` instances.
    pub fn record_processed(&self, instances: u64) {
        self.processed_messages.inc();
        self.processed_instances.add(instances);
    }
}

/// One or many instances carried by an ingest message. Client-side
/// micro-batches (`try_ingest_batch`) amortize channel traffic; either way
/// the pipeline's `detector_batch` micro-batching governs how observations
/// reach the detector kernels.
#[derive(Debug)]
pub(crate) enum Payload {
    /// A single instance.
    One(Instance),
    /// A client-side micro-batch, in per-stream arrival order.
    Many(Vec<Instance>),
}

impl Payload {
    pub(crate) fn into_instances(self) -> Vec<Instance> {
        match self {
            Payload::One(instance) => vec![instance],
            Payload::Many(instances) => instances,
        }
    }

    pub(crate) fn len(&self) -> u64 {
        match self {
            Payload::One(_) => 1,
            Payload::Many(instances) => instances.len() as u64,
        }
    }
}

/// Where a cold stream's checkpoint bytes live.
#[derive(Debug)]
pub(crate) enum ColdHandle {
    /// Encoded on demand at eviction (the state was dirtier than the
    /// freshest background spill); resident until the supervisor re-spills
    /// and demotes it to disk.
    Memory(Vec<u8>),
    /// The authoritative spill file in the sink directory — zero resident
    /// state beyond the path.
    Disk(PathBuf),
}

impl ColdHandle {
    /// Bytes this handle keeps resident in memory.
    fn resident_bytes(&self) -> u64 {
        match self {
            ColdHandle::Memory(bytes) => bytes.len() as u64,
            ColdHandle::Disk(_) => 0,
        }
    }
}

/// A hibernated stream: attached, routable, but holding no live pipeline
/// state — only its binary checkpoint.
struct ColdStream {
    handle: ColdHandle,
    /// Instances the checkpoint covers (its resume offset).
    position: u64,
    /// When the stream went cold (tier-scan reporting).
    since: Instant,
}

/// A stream's residency slot: live pipeline state, or its checkpoint.
/// `Hot` is boxed so the streams map pays ~1 pointer per slot instead of
/// sizing every bucket for the full pipeline state — at 100k mostly-cold
/// streams the inline variant would cost ~75 MB of dead bucket space.
enum StreamSlot {
    Hot(Box<StreamState>),
    Cold(ColdStream),
}

/// The transferable state inside a [`MigrationBundle`]: a hot stream
/// moves as its captured checkpoint; a cold stream moves as its already-
/// encoded checkpoint handle — **without rehydrating** — unless buffered
/// instances force a replay on the target.
#[derive(Debug)]
pub(crate) enum BundleState {
    Hot(PipelineCheckpoint),
    Cold { handle: ColdHandle, position: u64 },
}

/// Everything needed to move a stream to another shard: its self-contained
/// state plus the instances parked at the source while the migration was
/// in flight.
#[derive(Debug)]
pub(crate) struct MigrationBundle {
    pub state: BundleState,
    pub parked: Vec<Instance>,
}

/// Why a stream is being rebuilt from a bundle — governs the bus event the
/// restore publishes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RestoreKind {
    /// Live migration from another shard (`Migrated` event).
    Migration { from_shard: usize },
    /// Restart-from-disk via `ServerHandle::restore_stream` (`Attached`
    /// event — subscribers see every serving stream).
    FromDisk,
    /// Reinstatement on its original shard after an aborted migration (no
    /// event: subscribers already saw this stream attach).
    Reinstate,
}

/// A failed restore, carrying the bundle back (boxed — this is a cold
/// path and the bundle is large) so the caller can salvage the stream's
/// state, e.g. reinstate it on its source shard after a failed migration
/// instead of dropping learned state.
#[derive(Debug)]
pub(crate) struct RestoreFailure {
    pub error: ServeError,
    pub bundle: Option<Box<MigrationBundle>>,
}

/// One stream's row in a tier scan
/// ([`ServerHandle::tier_scan`](crate::server::ServerHandle::tier_scan)):
/// the supervisor's [`TierPolicy`](crate::config::TierPolicy) pass and
/// `ServerHandle::health` both read these.
#[derive(Debug, Clone)]
pub struct TierScanEntry {
    /// Stream id.
    pub id: Arc<str>,
    /// Instances processed (hot) or covered by the cold checkpoint.
    pub position: u64,
    /// Time since last ingest activity (hot) or since hibernation (cold).
    pub idle: Duration,
    /// Residency tier of the slot.
    pub tier: TierKind,
    /// Bytes the slot keeps resident beyond bookkeeping (cold in-memory
    /// checkpoints; 0 for hot and disk-backed slots).
    pub resident_bytes: u64,
}

/// Which tier a scanned stream occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierKind {
    /// Live in-memory pipeline state.
    Hot,
    /// Hibernated; checkpoint bytes resident in memory (dirty eviction
    /// awaiting its disk demotion).
    ColdMemory,
    /// Hibernated; only the spill file path is held.
    ColdDisk,
}

/// Control/data messages of a shard's ingest channel. FIFO channel order
/// doubles as the consistency mechanism: a `Drain` marker reaching the
/// worker proves every earlier ingest has been fully processed, and an
/// `Extract` reaching the worker proves every instance ingested before the
/// migration started is either in the stream's state or in its park
/// buffer.
pub(crate) enum ShardMsg {
    /// Create pipeline state for a stream.
    Attach {
        id: Arc<str>,
        schema: StreamSchema,
        spec: DetectorSpec,
        run: RunConfig,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Close a stream's pipeline and report its final summary.
    Detach { id: Arc<str>, reply: Sender<Result<RunResult, ServeError>> },
    /// Instances for one stream.
    Ingest { id: Arc<str>, payload: Payload },
    /// Barrier: replied to once every earlier message is processed.
    Drain { reply: Sender<()> },
    /// List the stream ids attached to this shard (resize planning);
    /// includes hibernated streams — they are attached.
    Inventory { reply: Sender<Vec<Arc<str>>> },
    /// Per-stream tier rows (hot/cold, idleness, resident bytes) for the
    /// supervisor's tier policy and `health()`.
    Tiers { reply: Sender<Vec<TierScanEntry>> },
    /// Evict a stream's live state to its binary checkpoint. `spill`
    /// carries the freshest background spill (position, path): when it
    /// matches the stream's position the eviction is **clean** (the disk
    /// file becomes the cold handle, no encode); otherwise the state is
    /// encoded on demand and held in memory. Also demotes an in-memory
    /// cold handle to disk when the spill position matches.
    Hibernate {
        id: Arc<str>,
        spill: Option<(u64, PathBuf)>,
        reply: Sender<Result<HibernateOutcome, ServeError>>,
    },
    /// Start buffering ingest for these ids instead of processing it.
    Park { ids: Vec<Arc<str>>, reply: Sender<()> },
    /// Remove a (parked) stream and hand its state + park buffer over.
    Extract { id: Arc<str>, reply: Sender<Result<MigrationBundle, ServeError>> },
    /// Close a park entry: replay it in place if the stream is still
    /// attached (abort path), else return the buffered stragglers.
    Unpark { id: Arc<str>, reply: Sender<Vec<Instance>> },
    /// Rebuild a stream from a bundle (migration target, restart-from-
    /// disk, or migration-abort reinstatement), replaying carried +
    /// locally parked instances in order.
    Restore {
        id: Arc<str>,
        bundle: MigrationBundle,
        kind: RestoreKind,
        reply: Sender<Result<(), RestoreFailure>>,
    },
    /// Non-destructive checkpoint of one stream (a cold stream's handle is
    /// decoded — not rehydrated).
    Checkpoint { id: Arc<str>, reply: Sender<Result<StreamCheckpoint, ServeError>> },
    /// Non-destructive checkpoint of every stream on this shard.
    CheckpointAll { reply: Sender<Result<Vec<StreamCheckpoint>, ServeError>> },
    /// Graceful stop: the worker finalizes every attached stream (flushing
    /// trailing detector micro-batches) and exits with its report.
    Shutdown,
}

/// Per-stream pipeline state owned by a shard.
struct StreamState {
    stepper: PipelineStepper,
    /// The stream's schema / effective spec / run config, retained so the
    /// stream can be inventoried, checkpointed and migrated.
    schema: StreamSchema,
    spec: DetectorSpec,
    run: RunConfig,
    /// Whether the detector adopted a pooled workspace at attach (and must
    /// return it at close).
    pooled_workspace: bool,
    /// Per-stream step-timing histogram
    /// (`rbm_serve_stream_step_seconds{stream}`), bound at attach/restore
    /// so the hot path records through the handle without any lookup.
    /// Timing is at ingest-message granularity (one clock pair per
    /// micro-batch, see [`ShardWorker::ingest`]) and only taken while
    /// [`rbm_im_obs::enabled`] is on.
    step_latency: Arc<Histogram>,
    /// When this stream last processed ingest (LRU signal of the
    /// supervisor's tier policy; always maintained — one monotonic clock
    /// read per ingest message, never influencing results).
    last_active: Instant,
}

/// What a shard hands back when it stops.
pub(crate) struct ShardReport {
    pub summaries: Vec<StreamSummary>,
    pub dropped_unknown: u64,
    pub workspace_reuse_hits: u64,
    pub workspace_reuse_misses: u64,
}

/// The worker owning one shard's streams.
pub(crate) struct ShardWorker {
    index: usize,
    registry: Arc<DetectorRegistry>,
    bus: Arc<EventBus>,
    /// Load counters shared with the ingest senders.
    gauge: Arc<ShardGauge>,
    streams: HashMap<Arc<str>, StreamSlot>,
    /// Ingest buffers of parked stream ids (migration in flight).
    parked: HashMap<Arc<str>, Vec<Instance>>,
    /// RBM scratch workspaces pooled across this shard's streams: attach
    /// checks one out, detach returns it, so successive streams inherit
    /// grown buffer capacity instead of re-allocating (`rbm_im::pool`).
    /// Hibernation returns the evicted stream's workspace here too.
    pool: WorkspacePool,
    /// Instances ingested for ids with no attached pipeline (dropped).
    dropped_unknown: u64,
    /// The server's metrics registry (per-stream histograms register here
    /// at attach/restore).
    metrics: Arc<MetricsRegistry>,
    /// This shard's ingest latency histogram
    /// (`rbm_serve_ingest_latency_seconds{shard}`).
    ingest_latency: Arc<Histogram>,
    /// Queue-depth distribution sampled after each processed ingest
    /// message (`rbm_serve_queue_depth{shard}`).
    queue_depth: Arc<Histogram>,
    /// Fleet-wide tier populations (`rbm_serve_streams{tier=hot|cold}`) —
    /// shared instruments across all shards (same registry id), adjusted
    /// with wait-free deltas at every tier transition.
    tier_hot: Arc<Gauge>,
    tier_cold: Arc<Gauge>,
    /// Bytes held resident by in-memory cold handles
    /// (`rbm_serve_cold_resident_bytes`, fleet-wide).
    cold_bytes: Arc<Gauge>,
    /// Rehydration latency (`rbm_serve_rehydrate_seconds`, fleet-wide).
    /// Rehydrates are cold-path control transitions, so — like resize
    /// phases — they are always recorded, independent of `RBM_OBS`.
    rehydrate_latency: Arc<Histogram>,
    /// `rbm_serve_hibernations_total{kind=clean|dirty}`.
    hibernations_clean: Arc<Counter>,
    hibernations_dirty: Arc<Counter>,
    /// Cold slots whose rehydrate failed (unreadable/corrupt checkpoint).
    rehydrate_failures: Arc<Counter>,
    /// Shared unregistered histogram handed to every stream while
    /// `RBM_OBS` is off. Per-stream step histograms are ~2 KB of buckets
    /// each and registration takes the registry mutex — at 100k+ streams
    /// that is hundreds of MB and a lock per attach/rehydrate for a
    /// metric nobody records (step timing itself is obs-gated). With obs
    /// off, every stream shares this one never-exported sink instead.
    step_sink: Arc<Histogram>,
    /// The fault-injection plane, when the server runs under chaos
    /// (`ARCHITECTURE.md` §10): consulted once per ingest message for the
    /// kill-shard and forced-hibernate sites. `None` costs nothing.
    faults: Option<Arc<FaultPlane>>,
    /// Ingest messages this worker incarnation has handled — the
    /// deterministic per-worker coordinate every fault decision draws on.
    /// Starts at zero for each (re)spawned worker, so a revived shard
    /// replays a fresh, reproducible decision sequence.
    messages_seen: u64,
}

impl ShardWorker {
    pub(crate) fn new(
        index: usize,
        registry: Arc<DetectorRegistry>,
        bus: Arc<EventBus>,
        gauge: Arc<ShardGauge>,
        metrics: Arc<MetricsRegistry>,
        faults: Option<Arc<FaultPlane>>,
    ) -> Self {
        let shard = index.to_string();
        let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
        let ingest_latency = metrics.histogram("rbm_serve_ingest_latency_seconds", labels);
        let queue_depth = metrics.histogram("rbm_serve_queue_depth", labels);
        let tier_hot = metrics.gauge("rbm_serve_streams", &[("tier", "hot")]);
        let tier_cold = metrics.gauge("rbm_serve_streams", &[("tier", "cold")]);
        let cold_bytes = metrics.gauge("rbm_serve_cold_resident_bytes", &[]);
        let rehydrate_latency = metrics.histogram("rbm_serve_rehydrate_seconds", &[]);
        let hibernations_clean =
            metrics.counter("rbm_serve_hibernations_total", &[("kind", "clean")]);
        let hibernations_dirty =
            metrics.counter("rbm_serve_hibernations_total", &[("kind", "dirty")]);
        let rehydrate_failures = metrics.counter("rbm_serve_rehydrate_failures_total", &[]);
        ShardWorker {
            index,
            registry,
            bus,
            gauge,
            streams: HashMap::new(),
            parked: HashMap::new(),
            pool: WorkspacePool::new(),
            dropped_unknown: 0,
            metrics,
            ingest_latency,
            queue_depth,
            tier_hot,
            tier_cold,
            cold_bytes,
            rehydrate_latency,
            hibernations_clean,
            hibernations_dirty,
            rehydrate_failures,
            step_sink: Arc::new(Histogram::new()),
            faults,
            messages_seen: 0,
        }
    }

    /// The per-stream step-timing histogram handle for `id`. Registered
    /// (and thus exported) only while `RBM_OBS` is on; otherwise the
    /// shard's shared [`Self::step_sink`] stands in, keeping attach and
    /// rehydrate free of per-stream registry work at fleet scale.
    fn stream_step_histogram(&self, id: &str) -> Arc<Histogram> {
        if rbm_im_obs::enabled() {
            self.metrics.histogram("rbm_serve_stream_step_seconds", &[("stream", id)])
        } else {
            Arc::clone(&self.step_sink)
        }
    }

    /// The worker loop: runs until `Shutdown` (or every sender hung up),
    /// then finalizes all remaining streams.
    pub(crate) fn run(mut self, inbox: Receiver<ShardMsg>) -> ShardReport {
        while let Ok(msg) = inbox.recv() {
            match msg {
                ShardMsg::Attach { id, schema, spec, run, reply } => {
                    let result = self.attach(Arc::clone(&id), schema, spec, run);
                    let _ = reply.send(result);
                }
                ShardMsg::Ingest { id, payload } => {
                    let instances = payload.len();
                    self.ingest(&id, payload);
                    // Counted after the step so `enqueued − processed`
                    // includes the message currently being worked on.
                    self.gauge.record_processed(instances);
                    if rbm_im_obs::enabled() {
                        // The backlog left *after* this message: monotone
                        // counter difference, no cross-thread coordination.
                        let depth = self
                            .gauge
                            .enqueued_messages
                            .get()
                            .saturating_sub(self.gauge.processed_messages.get());
                        self.queue_depth.record(depth);
                    }
                }
                ShardMsg::Detach { id, reply } => {
                    // A cold stream rehydrates first: `finish` must flush
                    // its trailing micro-batch and report the exact
                    // RunResult an always-hot run would.
                    let result = if self.streams.contains_key(&id) {
                        match self.rehydrate(&id, "detach") {
                            Ok(()) => match self.streams.remove(&id) {
                                Some(StreamSlot::Hot(state)) => Ok(self.close_stream(&id, *state)),
                                _ => Err(ServeError::UnknownStream(id.to_string())),
                            },
                            Err(e) => Err(e),
                        }
                    } else {
                        Err(ServeError::UnknownStream(id.to_string()))
                    };
                    let _ = reply.send(result);
                }
                ShardMsg::Drain { reply } => {
                    let _ = reply.send(());
                }
                ShardMsg::Inventory { reply } => {
                    let mut inventory: Vec<Arc<str>> = self.streams.keys().cloned().collect();
                    inventory.sort();
                    let _ = reply.send(inventory);
                }
                ShardMsg::Tiers { reply } => {
                    let mut entries: Vec<TierScanEntry> = self
                        .streams
                        .iter()
                        .map(|(id, slot)| match slot {
                            StreamSlot::Hot(state) => TierScanEntry {
                                id: Arc::clone(id),
                                position: state.stepper.instances(),
                                idle: state.last_active.elapsed(),
                                tier: TierKind::Hot,
                                resident_bytes: 0,
                            },
                            StreamSlot::Cold(cold) => TierScanEntry {
                                id: Arc::clone(id),
                                position: cold.position,
                                idle: cold.since.elapsed(),
                                tier: match cold.handle {
                                    ColdHandle::Memory(_) => TierKind::ColdMemory,
                                    ColdHandle::Disk(_) => TierKind::ColdDisk,
                                },
                                resident_bytes: cold.handle.resident_bytes(),
                            },
                        })
                        .collect();
                    entries.sort_by(|a, b| a.id.cmp(&b.id));
                    let _ = reply.send(entries);
                }
                ShardMsg::Hibernate { id, spill, reply } => {
                    let result = self.hibernate(&id, spill.as_ref());
                    let _ = reply.send(result);
                }
                ShardMsg::Park { ids, reply } => {
                    for id in ids {
                        self.parked.entry(id).or_default();
                    }
                    let _ = reply.send(());
                }
                ShardMsg::Extract { id, reply } => {
                    let result = self.extract(&id);
                    let _ = reply.send(result);
                }
                ShardMsg::Unpark { id, reply } => {
                    let _ = reply.send(self.unpark(&id));
                }
                ShardMsg::Restore { id, bundle, kind, reply } => {
                    let result = self.restore(Arc::clone(&id), bundle, kind);
                    let _ = reply.send(result);
                }
                ShardMsg::Checkpoint { id, reply } => {
                    let result = match self.streams.get(&id) {
                        Some(StreamSlot::Hot(state)) => checkpoint_stream(&id, state),
                        Some(StreamSlot::Cold(cold)) => cold_checkpoint(&id, cold),
                        None => Err(ServeError::UnknownStream(id.to_string())),
                    };
                    let _ = reply.send(result);
                }
                ShardMsg::CheckpointAll { reply } => {
                    let mut ids: Vec<Arc<str>> = self.streams.keys().cloned().collect();
                    ids.sort();
                    let result = ids
                        .iter()
                        .map(|id| match &self.streams[id] {
                            StreamSlot::Hot(state) => checkpoint_stream(id, state),
                            StreamSlot::Cold(cold) => cold_checkpoint(id, cold),
                        })
                        .collect::<Result<Vec<_>, _>>();
                    let _ = reply.send(result);
                }
                ShardMsg::Shutdown => break,
            }
        }
        // Finalize every stream still attached, in id order so reports are
        // deterministic. Cold streams rehydrate so their trailing micro-
        // batches flush and their summaries match an always-hot shutdown.
        let mut ids: Vec<Arc<str>> = self.streams.keys().cloned().collect();
        ids.sort();
        let mut summaries = Vec::with_capacity(ids.len());
        for id in ids {
            let _ = self.rehydrate(&id, "shutdown");
            match self.streams.remove(&id).expect("stream present") {
                StreamSlot::Hot(state) => {
                    let result = self.close_stream(&id, *state);
                    summaries.push(StreamSummary {
                        stream: id.to_string(),
                        shard: self.index,
                        result,
                    });
                }
                StreamSlot::Cold(cold) => {
                    // Rehydrate failed (unreadable checkpoint): the
                    // stream's summary is unrecoverable. Surfaced via
                    // `rbm_serve_rehydrate_failures_total` — the report
                    // simply misses this stream, like a panicked worker's.
                    self.tier_cold.add(-1);
                    self.cold_bytes.add(-(cold.handle.resident_bytes() as i64));
                }
            }
        }
        ShardReport {
            summaries,
            dropped_unknown: self.dropped_unknown,
            workspace_reuse_hits: self.pool.reuse_hits(),
            workspace_reuse_misses: self.pool.reuse_misses(),
        }
    }

    /// Builds a stream's pipeline state (shared by `Attach` and `Restore`):
    /// stepper from the spec, pooled RBM workspace adopted when the
    /// detector is RBM-family.
    fn build_stream(
        &mut self,
        schema: &StreamSchema,
        spec: &DetectorSpec,
        run: RunConfig,
    ) -> Result<(PipelineStepper, bool), ServeError> {
        let mut stepper = PipelineStepper::from_spec(&self.registry, spec, schema, run)
            .map_err(ServeError::from)?;
        // RBM-family detectors adopt a pooled scratch workspace so a new
        // stream inherits the buffer capacity grown by its predecessors.
        let pooled_workspace = match stepper.detector_mut().as_any_mut() {
            Some(any) => match any.downcast_mut::<RbmIm>() {
                Some(rbm) => {
                    // The replaced workspace is the detector's pristine
                    // (capacity-free) one; nothing worth pooling.
                    let _ = rbm.adopt_workspace(self.pool.checkout());
                    true
                }
                None => false,
            },
            None => false,
        };
        Ok((stepper, pooled_workspace))
    }

    /// Returns a state's pooled workspace to the shard pool (if it
    /// adopted one) — shared by close, extract and hibernate.
    fn reclaim_workspace(&mut self, state: &mut StreamState) {
        if state.pooled_workspace {
            if let Some(rbm) =
                state.stepper.detector_mut().as_any_mut().and_then(|a| a.downcast_mut::<RbmIm>())
            {
                self.pool.restore(rbm.take_workspace());
            }
        }
    }

    fn attach(
        &mut self,
        id: Arc<str>,
        schema: StreamSchema,
        spec: DetectorSpec,
        run: RunConfig,
    ) -> Result<(), ServeError> {
        if self.streams.contains_key(&id) {
            return Err(ServeError::AlreadyAttached(id.to_string()));
        }
        let (stepper, pooled_workspace) = self.build_stream(&schema, &spec, run)?;
        self.bus.publish(ServeEvent {
            stream: Arc::clone(&id),
            shard: self.index,
            kind: ServeEventKind::Attached,
        });
        let step_latency = self.stream_step_histogram(&id);
        self.tier_hot.add(1);
        self.streams.insert(
            id,
            StreamSlot::Hot(Box::new(StreamState {
                stepper,
                schema,
                spec,
                run,
                pooled_workspace,
                step_latency,
                last_active: Instant::now(),
            })),
        );
        Ok(())
    }

    fn ingest(&mut self, id: &Arc<str>, payload: Payload) {
        self.messages_seen += 1;
        // Kill-shard fault site: a seeded panic mid-ingest, unwinding the
        // whole worker (its streams and queue die with it — that is the
        // point). Recovery is `ServerHandle::revive_shard` plus
        // restore-from-spill; the chaos suites prove no durable state is
        // lost across it.
        if self.faults.as_ref().is_some_and(|f| f.shard_panic(self.index, self.messages_seen)) {
            panic!(
                "chaos: injected shard panic (shard {}, message {})",
                self.index, self.messages_seen
            );
        }
        // Parked ids buffer instead of processing — the stream is mid-
        // migration (or expected to arrive); nothing is lost, nothing is
        // reordered.
        if let Some(buffer) = self.parked.get_mut(id) {
            buffer.extend(payload.into_instances());
            return;
        }
        // A cold slot transparently rehydrates before stepping: the
        // triggering payload waits right here on the worker thread, so
        // per-stream order is untouched.
        if matches!(self.streams.get(id), Some(StreamSlot::Cold(_)))
            && self.rehydrate(id, "ingest").is_err()
        {
            // Unreadable cold checkpoint: dropping the payload (counted)
            // beats panicking the whole shard. The slot stays cold, so a
            // later detach/shutdown surfaces the same failure.
            self.rehydrate_failures.inc();
            self.dropped_unknown += payload.len();
            return;
        }
        let Some(StreamSlot::Hot(state)) = self.streams.get_mut(id) else {
            self.dropped_unknown += payload.len();
            return;
        };
        let bus = &self.bus;
        let shard = self.index;
        let mut on_event = |event: &rbm_im_harness::pipeline::PipelineEvent<'_>| {
            bus.publish(ServeEvent {
                stream: Arc::clone(id),
                shard,
                kind: ServeEventKind::from_pipeline(event),
            });
        };
        // One clock pair per ingest message (not per instance) keeps the
        // metrics-on overhead bounded: client micro-batches amortize the
        // reads, and the recording itself is two wait-free `fetch_add`s.
        // Timing never influences stepping, so results are bitwise
        // identical with observability on or off.
        let started = if rbm_im_obs::enabled() { Some(Instant::now()) } else { None };
        match payload {
            Payload::One(instance) => state.stepper.step(instance, &mut on_event),
            Payload::Many(instances) => {
                for instance in instances {
                    state.stepper.step(instance, &mut on_event);
                }
            }
        }
        state.last_active = Instant::now();
        if let Some(started) = started {
            let elapsed_ns = started.elapsed().as_nanos() as u64;
            self.ingest_latency.record(elapsed_ns);
            state.step_latency.record(elapsed_ns);
        }
        // Forced tiering (`RBM_HIBERNATE`): evict right back to cold after
        // every message, so the determinism suites thrash the hibernate/
        // rehydrate cycle as hard as possible. The chaos plane's
        // hibernate-storm site does the same thing at a seeded rate —
        // tiering is bitwise-invisible, so neither may change a result.
        let storm =
            self.faults.as_ref().is_some_and(|f| f.chaos_hibernate(self.index, self.messages_seen));
        if forced_hibernate() || storm {
            let _ = self.hibernate(id, None);
        }
    }

    /// Evicts a stream's live pipeline state to its binary checkpoint (or
    /// demotes an in-memory cold handle to a matching disk spill). See
    /// [`ShardMsg::Hibernate`].
    fn hibernate(
        &mut self,
        id: &Arc<str>,
        spill: Option<&(u64, PathBuf)>,
    ) -> Result<HibernateOutcome, ServeError> {
        if self.parked.contains_key(id) {
            // Mid-migration: the extract owns this stream's fate.
            return Err(ServeError::Checkpoint(format!("stream `{id}` is parked for migration")));
        }
        match self.streams.get_mut(id) {
            None => Err(ServeError::UnknownStream(id.to_string())),
            Some(StreamSlot::Cold(cold)) => {
                if let Some((position, path)) = spill {
                    if *position == cold.position && matches!(cold.handle, ColdHandle::Memory(_)) {
                        // The spill captures exactly this state (positions
                        // are monotone and the pipeline is deterministic,
                        // so equal position ⇒ identical state): the disk
                        // file replaces the resident bytes.
                        self.cold_bytes.add(-(cold.handle.resident_bytes() as i64));
                        cold.handle = ColdHandle::Disk(path.clone());
                        return Ok(HibernateOutcome::DemotedToDisk { position: *position });
                    }
                }
                Ok(HibernateOutcome::AlreadyCold { position: cold.position })
            }
            Some(StreamSlot::Hot(state)) => {
                let position = state.stepper.instances();
                let clean = matches!(spill, Some((p, _)) if *p == position);
                let handle = if clean {
                    let (_, path) = spill.expect("clean implies spill");
                    ColdHandle::Disk(path.clone())
                } else {
                    // Dirty: encode the current state on demand. Kept in
                    // memory — shard workers never write spill files (the
                    // supervisor thread owns the disk), so a racing
                    // background spill can never clobber fresher state.
                    let snapshot = state
                        .stepper
                        .state_snapshot()
                        .map_err(|e| ServeError::Checkpoint(e.to_string()))?;
                    let checkpoint = StreamCheckpoint {
                        stream: id.to_string(),
                        checkpoint: PipelineCheckpoint {
                            schema: state.schema.clone(),
                            spec: state.spec.clone(),
                            run: state.run,
                            state: snapshot,
                        },
                    };
                    ColdHandle::Memory(codec::encode(CheckpointCodec::Binary, &checkpoint))
                };
                let Some(StreamSlot::Hot(mut state)) = self.streams.remove(id) else {
                    unreachable!("slot checked hot above");
                };
                self.reclaim_workspace(&mut state);
                drop(state);
                self.cold_bytes.add(handle.resident_bytes() as i64);
                self.streams.insert(
                    Arc::clone(id),
                    StreamSlot::Cold(ColdStream { handle, position, since: Instant::now() }),
                );
                self.tier_hot.add(-1);
                self.tier_cold.add(1);
                if clean {
                    self.hibernations_clean.inc();
                } else {
                    self.hibernations_dirty.inc();
                }
                self.bus.publish(ServeEvent {
                    stream: Arc::clone(id),
                    shard: self.index,
                    kind: ServeEventKind::Hibernated { position, clean },
                });
                Ok(HibernateOutcome::Hibernated { position, clean })
            }
        }
    }

    /// Rebuilds a cold stream's live state from its checkpoint handle
    /// (no-op for hot streams). On failure the cold slot stays intact.
    fn rehydrate(&mut self, id: &Arc<str>, trigger: &'static str) -> Result<(), ServeError> {
        let checkpoint = match self.streams.get(id) {
            Some(StreamSlot::Hot(_)) => return Ok(()),
            Some(StreamSlot::Cold(cold)) => cold_checkpoint(id, cold)?,
            None => return Err(ServeError::UnknownStream(id.to_string())),
        };
        let started = Instant::now();
        let StreamCheckpoint { checkpoint, .. } = checkpoint;
        let (mut stepper, pooled_workspace) =
            self.build_stream(&checkpoint.schema, &checkpoint.spec, checkpoint.run)?;
        if let Err(e) = stepper.restore_state(&checkpoint.state) {
            // Reclaim the pooled workspace before the stepper is dropped.
            if pooled_workspace {
                if let Some(rbm) =
                    stepper.detector_mut().as_any_mut().and_then(|a| a.downcast_mut::<RbmIm>())
                {
                    self.pool.restore(rbm.take_workspace());
                }
            }
            return Err(ServeError::Checkpoint(e.to_string()));
        }
        let position = stepper.instances();
        let step_latency = self.stream_step_histogram(id);
        let old = self.streams.insert(
            Arc::clone(id),
            StreamSlot::Hot(Box::new(StreamState {
                stepper,
                schema: checkpoint.schema,
                spec: checkpoint.spec,
                run: checkpoint.run,
                pooled_workspace,
                step_latency,
                last_active: Instant::now(),
            })),
        );
        if let Some(StreamSlot::Cold(cold)) = old {
            self.cold_bytes.add(-(cold.handle.resident_bytes() as i64));
        }
        self.tier_cold.add(-1);
        self.tier_hot.add(1);
        self.note_rehydrated(id, position, started, trigger);
        Ok(())
    }

    /// Rehydration telemetry + bus event (shared with the migration-replay
    /// path): latency histogram (always recorded — cold path), trigger-
    /// labelled counter, `Rehydrated` event.
    fn note_rehydrated(&self, id: &Arc<str>, position: u64, started: Instant, trigger: &str) {
        self.rehydrate_latency.record(started.elapsed().as_nanos() as u64);
        self.metrics.counter("rbm_serve_rehydrations_total", &[("trigger", trigger)]).inc();
        self.bus.publish(ServeEvent {
            stream: Arc::clone(id),
            shard: self.index,
            kind: ServeEventKind::Rehydrated { position },
        });
    }

    /// Removes a stream and packages it for migration. The park entry is
    /// kept (emptied) so ingest that arrives between the extract and the
    /// topology swap keeps buffering; `Unpark` later collects those
    /// stragglers. The stream's pooled workspace stays in *this* shard's
    /// pool — scratch carries no state and the target adopts its own.
    /// A cold stream leaves as its checkpoint handle, unrehydrated.
    fn extract(&mut self, id: &Arc<str>) -> Result<MigrationBundle, ServeError> {
        let Some(slot) = self.streams.remove(id) else {
            return Err(ServeError::UnknownStream(id.to_string()));
        };
        let parked_of = |parked: &mut HashMap<Arc<str>, Vec<Instance>>| {
            parked.get_mut(id).map(std::mem::take).unwrap_or_default()
        };
        match slot {
            StreamSlot::Cold(cold) => {
                self.tier_cold.add(-1);
                self.cold_bytes.add(-(cold.handle.resident_bytes() as i64));
                let parked = parked_of(&mut self.parked);
                Ok(MigrationBundle {
                    state: BundleState::Cold { handle: cold.handle, position: cold.position },
                    parked,
                })
            }
            StreamSlot::Hot(mut state) => {
                let snapshot = match state.stepper.state_snapshot() {
                    Ok(snapshot) => snapshot,
                    Err(e) => {
                        // Abort: the stream stays attached on this shard.
                        let result = Err(ServeError::Checkpoint(e.to_string()));
                        self.streams.insert(Arc::clone(id), StreamSlot::Hot(state));
                        return result;
                    }
                };
                let checkpoint = PipelineCheckpoint {
                    schema: state.schema.clone(),
                    spec: state.spec.clone(),
                    run: state.run,
                    state: snapshot,
                };
                let parked = parked_of(&mut self.parked);
                self.reclaim_workspace(&mut state);
                self.tier_hot.add(-1);
                Ok(MigrationBundle { state: BundleState::Hot(checkpoint), parked })
            }
        }
    }

    /// Closes a park entry. Still-attached stream (migration abort):
    /// replay the buffer through the stepper in place and return nothing.
    /// Gone stream (migration completed): return the stragglers for replay
    /// on the target.
    fn unpark(&mut self, id: &Arc<str>) -> Vec<Instance> {
        let buffered = self.parked.remove(id).unwrap_or_default();
        if self.streams.contains_key(id) {
            for instance in buffered {
                self.ingest(id, Payload::One(instance));
            }
            Vec::new()
        } else {
            buffered
        }
    }

    /// Rebuilds a stream from a migration bundle (or a disk checkpoint).
    /// A **cold** bundle with nothing to replay transfers as bytes — the
    /// stream lands cold on this shard without ever rehydrating; buffered
    /// instances (carried or locally parked) force a rehydrate + replay.
    /// A **hot** bundle builds a fresh stepper from the recorded spec,
    /// restores the state, then replays carried + locally parked
    /// instances in arrival order.
    fn restore(
        &mut self,
        id: Arc<str>,
        bundle: MigrationBundle,
        kind: RestoreKind,
    ) -> Result<(), RestoreFailure> {
        if self.streams.contains_key(&id) {
            return Err(RestoreFailure {
                error: ServeError::AlreadyAttached(id.to_string()),
                bundle: Some(Box::new(bundle)),
            });
        }
        let MigrationBundle { state, parked } = bundle;
        match state {
            BundleState::Cold { handle, position } => {
                let locally_parked = self.parked.get(&id).is_some_and(|b| !b.is_empty());
                if parked.is_empty() && !locally_parked {
                    // Pure transfer: the checkpoint bytes become this
                    // shard's cold slot; no decode, no pipeline rebuild.
                    self.parked.remove(&id);
                    self.cold_bytes.add(handle.resident_bytes() as i64);
                    self.streams.insert(
                        Arc::clone(&id),
                        StreamSlot::Cold(ColdStream { handle, position, since: Instant::now() }),
                    );
                    self.tier_cold.add(1);
                    if let Some(kind) = restore_event(kind) {
                        self.bus.publish(ServeEvent {
                            stream: Arc::clone(&id),
                            shard: self.index,
                            kind,
                        });
                    }
                    return Ok(());
                }
                // Instances are waiting: decode and restore hot, replaying
                // them — a rehydration in migration clothing.
                let started = Instant::now();
                let cold = ColdStream { handle, position, since: started };
                let checkpoint = match cold_checkpoint(&id, &cold) {
                    Ok(checkpoint) => checkpoint,
                    Err(error) => {
                        return Err(RestoreFailure {
                            error,
                            bundle: Some(Box::new(MigrationBundle {
                                state: BundleState::Cold {
                                    handle: cold.handle,
                                    position: cold.position,
                                },
                                parked,
                            })),
                        });
                    }
                };
                self.restore_hot(
                    Arc::clone(&id),
                    checkpoint.checkpoint,
                    parked,
                    kind,
                    Some(started),
                )
            }
            BundleState::Hot(checkpoint) => self.restore_hot(id, checkpoint, parked, kind, None),
        }
    }

    /// The hot-restore body shared by migration, restart-from-disk,
    /// reinstatement and cold-bundle rehydration (`rehydrated_at` is the
    /// decode start time when this restore doubles as a rehydrate).
    fn restore_hot(
        &mut self,
        id: Arc<str>,
        checkpoint: PipelineCheckpoint,
        parked: Vec<Instance>,
        kind: RestoreKind,
        rehydrated_at: Option<Instant>,
    ) -> Result<(), RestoreFailure> {
        let (mut stepper, pooled_workspace) =
            match self.build_stream(&checkpoint.schema, &checkpoint.spec, checkpoint.run) {
                Ok(built) => built,
                Err(error) => {
                    return Err(RestoreFailure {
                        error,
                        bundle: Some(Box::new(MigrationBundle {
                            state: BundleState::Hot(checkpoint),
                            parked,
                        })),
                    });
                }
            };
        if let Err(e) = stepper.restore_state(&checkpoint.state) {
            // Reclaim the pooled workspace before the stepper is dropped —
            // a rejected snapshot must not leak pool capacity.
            if pooled_workspace {
                if let Some(rbm) =
                    stepper.detector_mut().as_any_mut().and_then(|a| a.downcast_mut::<RbmIm>())
                {
                    self.pool.restore(rbm.take_workspace());
                }
            }
            return Err(RestoreFailure {
                error: ServeError::Checkpoint(e.to_string()),
                bundle: Some(Box::new(MigrationBundle {
                    state: BundleState::Hot(checkpoint),
                    parked,
                })),
            });
        }
        let position = stepper.instances();
        let step_latency = self.stream_step_histogram(&id);
        self.tier_hot.add(1);
        self.streams.insert(
            Arc::clone(&id),
            StreamSlot::Hot(Box::new(StreamState {
                stepper,
                schema: checkpoint.schema,
                spec: checkpoint.spec,
                run: checkpoint.run,
                pooled_workspace,
                step_latency,
                last_active: Instant::now(),
            })),
        );
        // A live migration announces where the stream came from; a restore
        // from disk announces the stream like any fresh attach, so bus
        // subscribers see every serving stream either way. A reinstatement
        // after an aborted migration is silent — subscribers already saw
        // this stream attach.
        if let Some(kind) = restore_event(kind) {
            self.bus.publish(ServeEvent { stream: Arc::clone(&id), shard: self.index, kind });
        }
        if let Some(started) = rehydrated_at {
            self.note_rehydrated(&id, position, started, "migrate");
        }
        // Replay in arrival order: instances parked at the source first,
        // then whatever this shard parked while waiting for the state. The
        // park entry must be closed *before* replaying — `ingest` buffers
        // anything parked, so replaying through an open entry would cycle
        // the carried instances back into the buffer behind the local ones.
        let mut replay = parked;
        replay.extend(self.parked.remove(&id).unwrap_or_default());
        for instance in replay {
            self.ingest(&id, Payload::One(instance));
        }
        Ok(())
    }

    /// Flushes the stream's trailing detector micro-batch (emitting its
    /// events), reclaims a pooled workspace, publishes the `Detached`
    /// event and returns the final summary.
    fn close_stream(&mut self, id: &Arc<str>, state: StreamState) -> RunResult {
        let bus = &self.bus;
        let shard = self.index;
        let mut on_event = |event: &rbm_im_harness::pipeline::PipelineEvent<'_>| {
            bus.publish(ServeEvent {
                stream: Arc::clone(id),
                shard,
                kind: ServeEventKind::from_pipeline(event),
            });
        };
        let (result, mut detector) = state.stepper.finish(id.to_string(), &mut on_event);
        if state.pooled_workspace {
            if let Some(rbm) = detector.as_any_mut().and_then(|any| any.downcast_mut::<RbmIm>()) {
                self.pool.restore(rbm.take_workspace());
            }
        }
        self.tier_hot.add(-1);
        self.bus.publish(ServeEvent {
            stream: Arc::clone(id),
            shard: self.index,
            kind: ServeEventKind::Detached { result: result.clone() },
        });
        result
    }
}

/// The bus event a restore publishes, by restore kind.
fn restore_event(kind: RestoreKind) -> Option<ServeEventKind> {
    match kind {
        RestoreKind::Migration { from_shard } => Some(ServeEventKind::Migrated { from_shard }),
        RestoreKind::FromDisk => Some(ServeEventKind::Attached),
        RestoreKind::Reinstate => None,
    }
}

/// Non-destructive checkpoint of one attached (hot) stream.
fn checkpoint_stream(id: &Arc<str>, state: &StreamState) -> Result<StreamCheckpoint, ServeError> {
    let snapshot =
        state.stepper.state_snapshot().map_err(|e| ServeError::Checkpoint(e.to_string()))?;
    Ok(StreamCheckpoint {
        stream: id.to_string(),
        checkpoint: PipelineCheckpoint {
            schema: state.schema.clone(),
            spec: state.spec.clone(),
            run: state.run,
            state: snapshot,
        },
    })
}

/// Non-destructive checkpoint of a cold stream: its handle is decoded
/// (memory bytes or the spill file) — the stream is **not** rehydrated.
fn cold_checkpoint(id: &Arc<str>, cold: &ColdStream) -> Result<StreamCheckpoint, ServeError> {
    let decoded: StreamCheckpoint = match &cold.handle {
        ColdHandle::Memory(bytes) => {
            codec::decode(bytes).map_err(|e| ServeError::Checkpoint(e.to_string()))?
        }
        ColdHandle::Disk(path) => {
            let bytes = std::fs::read(path)
                .map_err(|e| ServeError::Checkpoint(format!("{}: {e}", path.display())))?;
            codec::decode(&bytes)
                .map_err(|e| ServeError::Checkpoint(format!("{}: {e}", path.display())))?
        }
    };
    if decoded.stream != id.as_ref() {
        return Err(ServeError::Checkpoint(format!(
            "cold checkpoint names stream `{}`, expected `{id}`",
            decoded.stream
        )));
    }
    Ok(decoded)
}
