//! Online (incremental) statistics used by streaming components.
//!
//! * [`WelfordStats`] — numerically stable running mean / variance, the
//!   backbone of DDM-style detectors;
//! * [`Ewma`] — exponentially weighted moving average, used by HDDM-W and
//!   ECDD-style detectors;
//! * [`SlidingWindowStats`] — fixed-capacity window with O(1) mean/variance
//!   updates, used by windowed detectors (FHDDM, WSTD) and by RBM-IM's
//!   reconstruction-error trend windows.

use std::collections::VecDeque;

/// Numerically stable running mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WelfordStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl WelfordStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn update(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0.0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0.0 before any observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard deviation of the mean estimate of a Bernoulli variable with
    /// probability equal to the running mean — the `s_i = sqrt(p(1-p)/n)`
    /// quantity used by DDM.
    pub fn bernoulli_std(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = self.mean.clamp(0.0, 1.0);
        (p * (1.0 - p) / self.count as f64).sqrt()
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Exponentially weighted moving average with optional variance tracking.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    lambda: f64,
    value: f64,
    /// Sum of squared weights, needed for McDiarmid-style bounds.
    sum_sq_weights: f64,
    initialized: bool,
    count: u64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `lambda` in `(0, 1]`; larger
    /// values weight recent observations more heavily.
    ///
    /// # Panics
    /// Panics if `lambda` is outside `(0, 1]`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0,1], got {lambda}");
        Ewma { lambda, value: 0.0, sum_sq_weights: 0.0, initialized: false, count: 0 }
    }

    /// Adds one observation and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        if self.initialized {
            self.value = self.lambda * x + (1.0 - self.lambda) * self.value;
        } else {
            self.value = x;
            self.initialized = true;
        }
        // Recurrence for the sum of squared effective weights.
        self.sum_sq_weights = self.lambda * self.lambda
            + (1.0 - self.lambda) * (1.0 - self.lambda) * self.sum_sq_weights;
        self.count += 1;
        self.value
    }

    /// Current smoothed value (0.0 before any observation).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The complete mutable state `(value, sum_sq_weights, initialized,
    /// count)` — checkpoint support for detectors embedding an EWMA
    /// (HDDM-W); restored with [`Ewma::restore_raw`].
    pub fn raw_state(&self) -> (f64, f64, bool, u64) {
        (self.value, self.sum_sq_weights, self.initialized, self.count)
    }

    /// Restores state captured by [`Ewma::raw_state`] onto an EWMA with the
    /// same `lambda`.
    pub fn restore_raw(&mut self, value: f64, sum_sq_weights: f64, initialized: bool, count: u64) {
        self.value = value;
        self.sum_sq_weights = sum_sq_weights;
        self.initialized = initialized;
        self.count = count;
    }

    /// Sum of squared weights of the implicit weighted average — converges
    /// to `λ / (2 − λ)`.
    pub fn sum_squared_weights(&self) -> f64 {
        self.sum_sq_weights
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets the average to its uninitialized state.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.sum_sq_weights = 0.0;
        self.initialized = false;
        self.count = 0;
    }
}

/// Fixed-capacity sliding window with O(1) mean / variance maintenance.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindowStats {
    capacity: usize,
    window: VecDeque<f64>,
    sum: f64,
    sum_sq: f64,
}

impl SlidingWindowStats {
    /// Creates an empty window with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be > 0");
        SlidingWindowStats {
            capacity,
            window: VecDeque::with_capacity(capacity),
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Pushes a value, evicting the oldest when full. Returns the evicted
    /// value, if any.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let evicted = if self.window.len() == self.capacity {
            let old = self.window.pop_front().expect("window is full, front must exist");
            self.sum -= old;
            self.sum_sq -= old * old;
            Some(old)
        } else {
            None
        };
        self.window.push_back(x);
        self.sum += x;
        self.sum_sq += x * x;
        evicted
    }

    /// Number of values currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window currently holds no values.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.window.len() == self.capacity
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the values in the window (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.sum / self.window.len() as f64
        }
    }

    /// Population variance of the window (0.0 if empty). Clamped at zero to
    /// absorb floating-point cancellation.
    pub fn variance(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let n = self.window.len() as f64;
        let m = self.sum / n;
        (self.sum_sq / n - m * m).max(0.0)
    }

    /// Iterates over the window contents from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.window.iter()
    }

    /// Copies the window contents (oldest first) into a vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.window.iter().copied().collect()
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.window.clear();
        self.sum = 0.0;
        self.sum_sq = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    #[test]
    fn welford_matches_batch_statistics() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = WelfordStats::new();
        for &x in &data {
            w.update(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - descriptive::mean(&data)).abs() < 1e-12);
        assert!((w.variance() - descriptive::variance(&data)).abs() < 1e-12);
        assert!((w.population_variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - descriptive::std_dev(&data)).abs() < 1e-12);
    }

    #[test]
    fn welford_bernoulli_std() {
        let mut w = WelfordStats::new();
        for i in 0..100 {
            w.update(if i % 4 == 0 { 1.0 } else { 0.0 });
        }
        let p = 0.25;
        assert!((w.bernoulli_std() - (p * (1.0 - p) / 100.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn welford_reset_and_empty() {
        let mut w = WelfordStats::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.bernoulli_std(), 0.0);
        w.update(5.0);
        w.reset();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn ewma_constant_input_converges_to_it() {
        let mut e = Ewma::new(0.2);
        for _ in 0..100 {
            e.update(3.5);
        }
        assert!((e.value() - 3.5).abs() < 1e-12);
        assert_eq!(e.count(), 100);
    }

    #[test]
    fn ewma_tracks_level_shift() {
        let mut e = Ewma::new(0.3);
        for _ in 0..50 {
            e.update(0.0);
        }
        for _ in 0..50 {
            e.update(1.0);
        }
        assert!(e.value() > 0.99, "ewma should have converged to the new level, got {}", e.value());
    }

    #[test]
    fn ewma_sum_sq_weights_limit() {
        let lambda = 0.05;
        let mut e = Ewma::new(lambda);
        for _ in 0..2000 {
            e.update(1.0);
        }
        let limit = lambda / (2.0 - lambda);
        assert!((e.sum_squared_weights() - limit).abs() < 1e-6);
    }

    #[test]
    fn ewma_reset() {
        let mut e = Ewma::new(0.5);
        e.update(10.0);
        e.reset();
        assert_eq!(e.value(), 0.0);
        assert_eq!(e.count(), 0);
        // First value after reset initializes directly.
        e.update(4.0);
        assert_eq!(e.value(), 4.0);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_bad_lambda() {
        Ewma::new(0.0);
    }

    #[test]
    fn sliding_window_evicts_and_tracks_moments() {
        let mut w = SlidingWindowStats::new(3);
        assert!(w.is_empty());
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert_eq!(w.push(3.0), None);
        assert!(w.is_full());
        assert_eq!(w.push(4.0), Some(1.0));
        assert_eq!(w.len(), 3);
        assert_eq!(w.to_vec(), vec![2.0, 3.0, 4.0]);
        assert!((w.mean() - 3.0).abs() < 1e-12);
        assert!((w.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_matches_batch_after_many_pushes() {
        let mut w = SlidingWindowStats::new(50);
        let mut reference = Vec::new();
        for i in 0..500 {
            let x = ((i as f64 * 0.37).sin() * 10.0) + i as f64 * 0.01;
            w.push(x);
            reference.push(x);
        }
        let tail = &reference[reference.len() - 50..];
        assert!((w.mean() - descriptive::mean(tail)).abs() < 1e-9);
        assert!((w.variance() - descriptive::population_variance(tail)).abs() < 1e-6);
    }

    #[test]
    fn sliding_window_clear() {
        let mut w = SlidingWindowStats::new(4);
        w.push(1.0);
        w.push(2.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.capacity(), 4);
    }

    #[test]
    #[should_panic]
    fn sliding_window_rejects_zero_capacity() {
        SlidingWindowStats::new(0);
    }
}
