//! Compact binary checkpoint codec (with the JSON codec retained as the
//! interoperable fallback).
//!
//! Checkpoints serialize through the vendored serde [`Value`] data model,
//! and the JSON rendering of that tree is dominated by the prequential
//! evaluator's metric windows: thousands of full-precision `f64` scores
//! printed as ~18-character decimal strings, plus the per-entry `[...]`
//! punctuation around them. The binary codec attacks exactly that:
//!
//! * **versioned header** — `RBMC` magic + a format version, so a reader
//!   confronted with a future (or corrupt) spill fails with a clean error
//!   instead of garbage state;
//! * **interned object keys** — every distinct key string is written once
//!   in a header table and referenced by varint index;
//! * **varint / delta framing for integers** — integer-valued numbers are
//!   LEB128 varints; homogeneous integer arrays (the evaluator's
//!   `(true, predicted)` windows, drift-position lists) are zigzag-encoded
//!   *deltas* against the previous element, so sorted positions and
//!   small-range class ids cost ~1 byte each;
//! * **columnar re-blocking** — an array whose elements are all arrays of
//!   one length (the AUC window's `[[scores…], class]` entries) is
//!   transposed and each column encoded independently, which turns the
//!   window into four dense `f64` columns plus one delta-varint class
//!   column;
//! * **byte-plane packed float columns** — dense `f64` runs are split into
//!   their eight byte planes; planes that compress (the sign/exponent
//!   plane is nearly constant within a score column) are run-length
//!   encoded, random mantissa planes stay raw. Scores are full-entropy
//!   doubles, so this is within ~10% of their order-0 entropy floor while
//!   staying **bit-exact** — restores stay bitwise-identical.
//!
//! Every transform is lossless on the [`Value`] tree:
//! `decode_value(&encode_value(v)) == v` for any tree the workspace
//! produces (pinned by proptests in `tests/codec_roundtrip.rs`).
//!
//! On the 5k-instance RBM-IM stream checkpoint of the `checkpoint` bench,
//! the binary form is ~8× smaller than the pretty-printed JSON
//! [`SnapshotSink`](../../../rbm_im_serve/sink/struct.SnapshotSink.html)
//! spilled before this codec existed, and ~3× smaller than minified JSON
//! (see `BENCH_checkpoint.json` — the remaining bytes are the irreducible
//! entropy of the window's full-precision scores).

use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;

/// The four magic bytes every binary checkpoint starts with.
pub const BINARY_MAGIC: [u8; 4] = *b"RBMC";

/// The newest binary format version this build writes and reads.
pub const BINARY_VERSION: u16 = 1;

/// Smallest number-array length worth a packed (delta-varint or
/// byte-plane) encoding; shorter arrays use the generic element form.
const MIN_PACK: usize = 5;

/// Smallest array-of-uniform-arrays length worth columnar re-blocking.
const MIN_MATRIX_ROWS: usize = 4;

/// Checkpoint serialization format.
///
/// [`CheckpointCodec::Json`] is the original self-describing text format —
/// diffable, greppable, readable by anything. [`CheckpointCodec::Binary`]
/// is the compact framing documented at the [module level](self), sized
/// for frequent background spills. [`decode`] sniffs the format from the
/// first bytes, so readers never need to be told which codec wrote a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointCodec {
    /// Human-readable JSON (the pre-codec spill format).
    Json,
    /// Compact versioned binary framing (the default for background
    /// spills).
    #[default]
    Binary,
}

impl CheckpointCodec {
    /// The file extension conventionally used for this codec's spills
    /// (`"json"` / `"bin"`).
    pub fn extension(self) -> &'static str {
        match self {
            CheckpointCodec::Json => "json",
            CheckpointCodec::Binary => "bin",
        }
    }
}

impl fmt::Display for CheckpointCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointCodec::Json => write!(f, "json"),
            CheckpointCodec::Binary => write!(f, "binary"),
        }
    }
}

/// Errors of binary checkpoint decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The payload ended before the structure it promised was complete —
    /// a truncated or partially written file.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// The payload carries the binary magic but a version this build does
    /// not read.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// The payload is structurally invalid (unknown tag, bad key index,
    /// malformed UTF-8, trailing garbage, …).
    Malformed(String),
    /// The payload was sniffed as JSON but failed to parse.
    Json(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset } => {
                write!(f, "truncated checkpoint: input ended at byte {offset}")
            }
            CodecError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint codec version {found} is not supported (this build reads up to \
                 version {supported})"
            ),
            CodecError::Malformed(msg) => write!(f, "malformed binary checkpoint: {msg}"),
            CodecError::Json(msg) => write!(f, "malformed JSON checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes any [`Serialize`] type with the chosen codec.
pub fn encode<T: Serialize>(codec: CheckpointCodec, value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    encode_into(codec, value, &mut out);
    out
}

/// [`encode`] into a caller-owned buffer: the encoded bytes are appended
/// to `out` (which is *not* cleared first). Callers that encode on a
/// schedule — the serving `SnapshotSink` above all — reuse one scratch
/// buffer across spills so steady-state encoding stops paying a fresh
/// output allocation per checkpoint.
pub fn encode_into<T: Serialize>(codec: CheckpointCodec, value: &T, out: &mut Vec<u8>) {
    match codec {
        CheckpointCodec::Json => out.extend_from_slice(
            serde_json::to_string(&value.serialize_value()).unwrap_or_default().as_bytes(),
        ),
        CheckpointCodec::Binary => encode_value_into(&value.serialize_value(), out),
    }
}

/// Deserializes bytes written by [`encode`] with *either* codec: the
/// binary magic is sniffed, anything else is parsed as JSON.
pub fn decode<T: Deserialize>(bytes: &[u8]) -> Result<T, CodecError> {
    let value = decode_to_value(bytes)?;
    T::deserialize_value(&value).map_err(|e| CodecError::Malformed(e.to_string()))
}

/// [`decode`] to the raw [`Value`] tree.
pub fn decode_to_value(bytes: &[u8]) -> Result<Value, CodecError> {
    if bytes.starts_with(&BINARY_MAGIC) {
        decode_value(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| CodecError::Json("not valid UTF-8".to_string()))?;
        serde_json::parse_value(text).map_err(|e| CodecError::Json(e.to_string()))
    }
}

/// Whether `bytes` carry the binary checkpoint magic.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.starts_with(&BINARY_MAGIC)
}

// ---- framing primitives (shared with the wire protocol) --------------------

/// Appends `v` as a LEB128 varint — the integer framing every packed
/// structure in this codec uses. Public so other binary framings in the
/// workspace (the `rbm-im-net` TCP wire protocol) reuse the checkpoint
/// codec's primitives instead of inventing parallel ones.
pub fn write_varint(out: &mut Vec<u8>, v: u64) {
    put_varint(out, v);
}

/// Reads a [`write_varint`]-encoded value from `bytes` starting at `*pos`,
/// advancing `pos` past it. Truncated or overlong input fails with the
/// same clean [`CodecError`]s binary checkpoint decoding produces.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut r = Reader { bytes, pos: *pos };
    let v = r.varint()?;
    *pos = r.pos;
    Ok(v)
}

// ---- value tags ------------------------------------------------------------

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_POS_INT: u8 = 0x03;
const TAG_NEG_INT: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;
const TAG_INT_PACK: u8 = 0x09;
const TAG_FLOAT_PACK: u8 = 0x0A;
const TAG_MATRIX: u8 = 0x0B;

/// Integer framing is exact only for integers the `f64` data model itself
/// stores exactly.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// The integer framing of a number, if it round-trips bit-exactly
/// (`-0.0`, non-finite and > 2^53 magnitudes must take the raw-bits path).
fn as_exact_int(n: f64) -> Option<i64> {
    if n.is_finite()
        && n.fract() == 0.0
        && n.abs() <= MAX_EXACT_INT
        && n.to_bits() != (-0.0f64).to_bits()
    {
        Some(n as i64)
    } else {
        None
    }
}

// ---- encoding --------------------------------------------------------------

/// Encodes a [`Value`] tree into the versioned binary format.
pub fn encode_value(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    encode_value_into(value, &mut out);
    out
}

/// [`encode_value`] appending to a caller-owned buffer (not cleared
/// first), so repeat encoders can amortize the output allocation.
pub fn encode_value_into(value: &Value, out: &mut Vec<u8>) {
    // Pass 1: intern every object key in first-seen order.
    let mut keys: Vec<&str> = Vec::new();
    let mut key_ids: HashMap<&str, u64> = HashMap::new();
    collect_keys(value, &mut keys, &mut key_ids);

    out.extend_from_slice(&BINARY_MAGIC);
    out.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    put_varint(out, keys.len() as u64);
    for key in &keys {
        put_varint(out, key.len() as u64);
        out.extend_from_slice(key.as_bytes());
    }
    encode_node(value, &key_ids, out);
}

fn collect_keys<'a>(value: &'a Value, keys: &mut Vec<&'a str>, ids: &mut HashMap<&'a str, u64>) {
    match value {
        Value::Array(items) => items.iter().for_each(|v| collect_keys(v, keys, ids)),
        Value::Object(fields) => {
            for (k, v) in fields {
                if !ids.contains_key(k.as_str()) {
                    ids.insert(k.as_str(), keys.len() as u64);
                    keys.push(k.as_str());
                }
                collect_keys(v, keys, ids);
            }
        }
        _ => {}
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_node(value: &Value, keys: &HashMap<&str, u64>, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(n) => match as_exact_int(*n) {
            Some(i) if i >= 0 => {
                out.push(TAG_POS_INT);
                put_varint(out, i as u64);
            }
            Some(i) => {
                out.push(TAG_NEG_INT);
                put_varint(out, i.unsigned_abs());
            }
            None => {
                out.push(TAG_F64);
                out.extend_from_slice(&n.to_bits().to_le_bytes());
            }
        },
        Value::String(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            put_varint(out, fields.len() as u64);
            for (k, v) in fields {
                put_varint(out, keys[k.as_str()]);
                encode_node(v, keys, out);
            }
        }
        Value::Array(items) => {
            let refs: Vec<&Value> = items.iter().collect();
            encode_array(&refs, keys, out);
        }
    }
}

/// Encodes a sequence of values, picking the densest exact framing:
/// delta-varint pack (all exact integers), byte-plane float pack (all
/// numbers), columnar matrix (all same-length arrays), or the generic
/// element-by-element form. Operates on references so matrix columns can
/// be encoded without materializing them.
fn encode_array(items: &[&Value], keys: &HashMap<&str, u64>, out: &mut Vec<u8>) {
    if items.len() >= MIN_PACK {
        if let Some(ints) = all_exact_ints(items) {
            out.push(TAG_INT_PACK);
            put_varint(out, ints.len() as u64);
            let mut prev = 0i64;
            for v in ints {
                put_varint(out, zigzag(v.wrapping_sub(prev)));
                prev = v;
            }
            return;
        }
        if items.iter().all(|v| matches!(v, Value::Number(_))) {
            out.push(TAG_FLOAT_PACK);
            put_varint(out, items.len() as u64);
            let bits: Vec<u64> = items
                .iter()
                .map(|v| match v {
                    Value::Number(n) => n.to_bits(),
                    _ => unreachable!("checked all-number above"),
                })
                .collect();
            encode_planes(&bits, out);
            return;
        }
    }
    if items.len() >= MIN_MATRIX_ROWS {
        if let Some(width) = uniform_width(items) {
            out.push(TAG_MATRIX);
            put_varint(out, items.len() as u64);
            put_varint(out, width as u64);
            let mut column: Vec<&Value> = Vec::with_capacity(items.len());
            for col in 0..width {
                column.clear();
                for row in items {
                    match row {
                        Value::Array(cells) => column.push(&cells[col]),
                        _ => unreachable!("uniform_width checked rows are arrays"),
                    }
                }
                encode_array(&column, keys, out);
            }
            return;
        }
    }
    out.push(TAG_ARRAY);
    put_varint(out, items.len() as u64);
    for v in items {
        encode_node(v, keys, out);
    }
}

fn all_exact_ints(items: &[&Value]) -> Option<Vec<i64>> {
    items
        .iter()
        .map(|v| match v {
            Value::Number(n) => as_exact_int(*n),
            _ => None,
        })
        .collect()
}

/// The common length of the rows, when every item is an array of one
/// (non-zero) length.
fn uniform_width(items: &[&Value]) -> Option<usize> {
    let width = match items.first() {
        Some(Value::Array(cells)) if !cells.is_empty() => cells.len(),
        _ => return None,
    };
    items.iter().all(|v| matches!(v, Value::Array(cells) if cells.len() == width)).then_some(width)
}

/// Splits `bits` into eight byte planes and writes each plane raw or
/// run-length encoded, whichever is smaller. The sign/exponent plane of a
/// column of same-scale scores is nearly constant (RLE collapses it);
/// mantissa planes are full-entropy and stay raw.
fn encode_planes(bits: &[u64], out: &mut Vec<u8>) {
    let mut plane = Vec::with_capacity(bits.len());
    for shift in (0..8).map(|p| p * 8) {
        plane.clear();
        plane.extend(bits.iter().map(|b| (b >> shift) as u8));
        let mut rle = Vec::new();
        let mut i = 0usize;
        while i < plane.len() && rle.len() < plane.len() {
            let byte = plane[i];
            let mut run = 1usize;
            while i + run < plane.len() && plane[i + run] == byte {
                run += 1;
            }
            put_varint(&mut rle, run as u64);
            rle.push(byte);
            i += run;
        }
        if i == plane.len() && rle.len() < plane.len() {
            out.push(1); // RLE plane
            out.extend_from_slice(&rle);
        } else {
            out.push(0); // raw plane
            out.extend_from_slice(&plane);
        }
    }
}

// ---- decoding --------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError::Truncated { offset: self.bytes.len() });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(CodecError::Malformed("varint overflows u64".to_string()));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A varint length for structures whose every element consumes **at
    /// least one input byte** (string bytes, interned keys, generic array
    /// elements, object fields, packed-int deltas): a corrupt header
    /// demanding more elements than there are bytes left is rejected
    /// before any allocation. NOT valid for RLE-compressible structures
    /// (float packs, matrix rows) — a single RLE run legitimately encodes
    /// millions of values in three bytes; those paths use
    /// [`Reader::count`] instead.
    fn length(&mut self) -> Result<usize, CodecError> {
        let v = self.varint()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if v > remaining {
            return Err(CodecError::Malformed(format!(
                "implausible length {v} with {remaining} bytes left"
            )));
        }
        Ok(v as usize)
    }

    /// A varint element count for RLE-compressible structures, where the
    /// count is *not* bounded by the remaining input. Allocation safety
    /// comes from failing cleanly (instead of aborting) if the count
    /// cannot be reserved.
    fn count(&mut self) -> Result<usize, CodecError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| CodecError::Malformed(format!("count {v} overflows usize")))
    }
}

/// Decodes the versioned binary format back into the exact [`Value`] tree
/// [`encode_value`] was given.
pub fn decode_value(bytes: &[u8]) -> Result<Value, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != BINARY_MAGIC {
        return Err(CodecError::Malformed("missing RBMC magic".to_string()));
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
    if version != BINARY_VERSION {
        return Err(CodecError::VersionMismatch { found: version, supported: BINARY_VERSION });
    }
    let key_count = r.length()?;
    let mut keys = Vec::with_capacity(key_count);
    for _ in 0..key_count {
        let len = r.length()?;
        let raw = r.take(len)?;
        let key = std::str::from_utf8(raw)
            .map_err(|_| CodecError::Malformed("key is not UTF-8".to_string()))?;
        keys.push(key.to_string());
    }
    let value = decode_node(&mut r, &keys)?;
    if r.pos != bytes.len() {
        return Err(CodecError::Malformed(format!(
            "{} trailing bytes after the value",
            bytes.len() - r.pos
        )));
    }
    Ok(value)
}

fn decode_node(r: &mut Reader<'_>, keys: &[String]) -> Result<Value, CodecError> {
    match r.byte()? {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_POS_INT => Ok(Value::Number(r.varint()? as f64)),
        TAG_NEG_INT => {
            let magnitude = r.varint()?;
            Ok(Value::Number(-(magnitude as f64)))
        }
        TAG_F64 => {
            let raw = r.take(8)?;
            Ok(Value::Number(f64::from_bits(u64::from_le_bytes(raw.try_into().expect("8 bytes")))))
        }
        TAG_STR => {
            let len = r.length()?;
            let raw = r.take(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| CodecError::Malformed("string is not UTF-8".to_string()))?;
            Ok(Value::String(s.to_string()))
        }
        TAG_ARRAY => {
            let len = r.length()?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_node(r, keys)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let len = r.length()?;
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let id = r.varint()? as usize;
                let key = keys
                    .get(id)
                    .ok_or_else(|| CodecError::Malformed(format!("key index {id} out of range")))?
                    .clone();
                fields.push((key, decode_node(r, keys)?));
            }
            Ok(Value::Object(fields))
        }
        TAG_INT_PACK => {
            let len = r.length()?;
            let mut items = Vec::with_capacity(len);
            let mut prev = 0i64;
            for _ in 0..len {
                let delta = unzigzag(r.varint()?);
                prev = prev.wrapping_add(delta);
                items.push(Value::Number(prev as f64));
            }
            Ok(Value::Array(items))
        }
        TAG_FLOAT_PACK => {
            let len = r.count()?;
            let bits = decode_planes(r, len)?;
            Ok(Value::Array(bits.into_iter().map(|b| Value::Number(f64::from_bits(b))).collect()))
        }
        TAG_MATRIX => {
            // Rows can legitimately exceed the remaining bytes (columns
            // RLE-compress); each decoded column is validated against it,
            // and no rows-sized allocation happens before that validation.
            let rows = r.count()?;
            let width = r.length()?;
            if width == 0 {
                return Err(CodecError::Malformed("matrix with zero width".to_string()));
            }
            let mut columns = Vec::with_capacity(width);
            for _ in 0..width {
                let column = match decode_node(r, keys)? {
                    Value::Array(items) if items.len() == rows => items,
                    Value::Array(items) => {
                        return Err(CodecError::Malformed(format!(
                            "matrix column of {} rows, expected {rows}",
                            items.len()
                        )))
                    }
                    _ => {
                        return Err(CodecError::Malformed(
                            "matrix column is not an array".to_string(),
                        ))
                    }
                };
                columns.push(column);
            }
            let mut items = Vec::with_capacity(rows);
            for row in 0..rows {
                // Draining front-to-back via index clones nothing: each
                // cell is moved out of its column exactly once.
                let cells: Vec<Value> = columns
                    .iter_mut()
                    .map(|c| std::mem::replace(&mut c[row], Value::Null))
                    .collect();
                items.push(Value::Array(cells));
            }
            Ok(Value::Array(items))
        }
        tag => Err(CodecError::Malformed(format!("unknown value tag {tag:#04x}"))),
    }
}

fn decode_planes(r: &mut Reader<'_>, len: usize) -> Result<Vec<u64>, CodecError> {
    // `len` comes from an unbounded count (RLE planes can legitimately
    // encode far more values than the remaining input bytes), so a corrupt
    // count must fail as a clean error rather than an allocation abort.
    let mut bits = Vec::new();
    bits.try_reserve_exact(len)
        .map_err(|_| CodecError::Malformed(format!("float pack of {len} values too large")))?;
    bits.resize(len, 0u64);
    for shift in (0..8).map(|p| p * 8) {
        match r.byte()? {
            0 => {
                let plane = r.take(len)?;
                for (b, byte) in bits.iter_mut().zip(plane) {
                    *b |= u64::from(*byte) << shift;
                }
            }
            1 => {
                let mut filled = 0usize;
                while filled < len {
                    let run = r.varint()? as usize;
                    let byte = r.byte()?;
                    if run == 0 || run > len - filled {
                        return Err(CodecError::Malformed("RLE run overflows plane".to_string()));
                    }
                    for b in &mut bits[filled..filled + run] {
                        *b |= u64::from(byte) << shift;
                    }
                    filled += run;
                }
            }
            mode => {
                return Err(CodecError::Malformed(format!("unknown plane mode {mode}")));
            }
        }
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &Value) {
        let bytes = encode_value(value);
        let back = decode_value(&bytes).expect("decode");
        assert_eq!(&back, value);
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Number(0.0),
            Value::Number(-0.0),
            Value::Number(42.0),
            Value::Number(-17.0),
            Value::Number(0.1),
            Value::Number(-3.25e300),
            Value::Number(MAX_EXACT_INT),
            Value::Number(MAX_EXACT_INT * 4.0),
            Value::String(String::new()),
            Value::String("héllo → world".to_string()),
        ] {
            roundtrip(&v);
        }
        // -0.0 must come back as -0.0, not 0.0 (bit-exactness).
        let bytes = encode_value(&Value::Number(-0.0));
        match decode_value(&bytes).unwrap() {
            Value::Number(n) => assert_eq!(n.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn packed_arrays_round_trip() {
        // Sorted positions → delta pack.
        let detections: Vec<Value> = [3u64, 57, 58, 900, 901, 902, 12_000]
            .iter()
            .map(|&v| Value::Number(v as f64))
            .collect();
        roundtrip(&Value::Array(detections));
        // Mixed-sign integers.
        let ints: Vec<Value> =
            [-5i64, 90, -3, 0, 7, 123_456].iter().map(|&v| Value::Number(v as f64)).collect();
        roundtrip(&Value::Array(ints));
        // Dense floats → byte planes.
        let floats: Vec<Value> = (0..100).map(|i| Value::Number(0.1 + (i as f64) * 1e-3)).collect();
        roundtrip(&Value::Array(floats));
        // Floats including an integer-valued one stay float-packed.
        let mut mixed: Vec<Value> = (0..10).map(|i| Value::Number(0.5 + i as f64)).collect();
        mixed.push(Value::Number(0.25));
        roundtrip(&Value::Array(mixed));
    }

    #[test]
    fn rle_collapsed_packs_still_decode() {
        // A long run of identical non-integer floats: every byte plane
        // RLE-collapses, so the encoding is far smaller than the element
        // count — the decoder must accept that, not flag it implausible.
        let constant = Value::Array(vec![Value::Number(0.5); 10_000]);
        let bytes = encode_value(&constant);
        assert!(bytes.len() < 200, "constant column must collapse: {} bytes", bytes.len());
        assert_eq!(decode_value(&bytes).unwrap(), constant);

        // Same shape inside a matrix: constant score columns, tiny rows.
        let rows: Vec<Value> = (0..5_000)
            .map(|i| {
                Value::Array(vec![
                    Value::Array(vec![Value::Number(0.25); 4]),
                    Value::Number((i % 4) as f64),
                ])
            })
            .collect();
        let matrix = Value::Array(rows);
        let bytes = encode_value(&matrix);
        assert_eq!(decode_value(&bytes).unwrap(), matrix);
    }

    #[test]
    fn matrix_reblocking_round_trips() {
        // The AUC-window shape: [[scores…], class] rows.
        let rows: Vec<Value> = (0..50)
            .map(|i| {
                Value::Array(vec![
                    Value::Array(
                        (0..4).map(|c| Value::Number(0.01 * (i * 4 + c) as f64)).collect(),
                    ),
                    Value::Number((i % 4) as f64),
                ])
            })
            .collect();
        roundtrip(&Value::Array(rows));
        // Ragged rows fall back to the generic array form.
        let ragged = Value::Array(vec![
            Value::Array(vec![Value::Number(1.0)]),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]),
            Value::Array(vec![Value::Number(1.0)]),
            Value::Array(vec![Value::Number(1.0)]),
        ]);
        roundtrip(&ragged);
    }

    #[test]
    fn objects_intern_keys() {
        let rows: Vec<Value> = (0..64)
            .map(|i| {
                Value::object(vec![
                    ("position", Value::Number(i as f64)),
                    ("pm_auc", Value::Number(0.5 + 0.001 * i as f64)),
                ])
            })
            .collect();
        let value = Value::Array(rows);
        roundtrip(&value);
        let bytes = encode_value(&value);
        let json = serde_json::to_string(&value).unwrap();
        assert!(
            bytes.len() * 2 < json.len(),
            "interning + packing must beat JSON: {} vs {}",
            bytes.len(),
            json.len()
        );
    }

    #[test]
    fn truncation_and_corruption_fail_cleanly() {
        let value = Value::object(vec![
            ("a", Value::Array((0..40).map(|i| Value::Number(i as f64 * 0.3)).collect())),
            ("b", Value::String("payload".to_string())),
        ]);
        let bytes = encode_value(&value);
        for cut in [0, 3, 5, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_value(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        // Trailing garbage is rejected, not ignored.
        let mut padded = bytes.clone();
        padded.push(0x00);
        assert!(matches!(decode_value(&padded), Err(CodecError::Malformed(_))));
        // Unknown version is a clean VersionMismatch.
        let mut future = bytes;
        future[4] = 0xFF;
        future[5] = 0x7F;
        assert_eq!(
            decode_value(&future),
            Err(CodecError::VersionMismatch { found: 0x7FFF, supported: BINARY_VERSION })
        );
    }

    #[test]
    fn varint_helpers_round_trip() {
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX];
        let mut out = Vec::new();
        for v in values {
            write_varint(&mut out, v);
        }
        let mut pos = 0usize;
        for v in values {
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, out.len());
        let mut pos = 0usize;
        assert!(matches!(read_varint(&[0x80], &mut pos), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn sniffing_decode_reads_both_codecs() {
        let value = Value::object(vec![("n", Value::Number(7.0))]);
        let binary = encode(CheckpointCodec::Binary, &value);
        let json = encode(CheckpointCodec::Json, &value);
        assert!(is_binary(&binary));
        assert!(!is_binary(&json));
        assert_eq!(decode_to_value(&binary).unwrap(), value);
        assert_eq!(decode_to_value(&json).unwrap(), value);
        assert!(matches!(decode_to_value(b"{broken"), Err(CodecError::Json(_))));
    }
}
