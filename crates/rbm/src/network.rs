//! The three-layer Restricted Boltzmann Machine underlying RBM-IM.
//!
//! Architecture (paper Eq. 6–12): a visible layer `v` of `V` units holding
//! the normalized feature vector, a hidden layer `h` of `H` binary units and
//! a class layer `z` of `Z` softmax units. Connections exist between `v`–`h`
//! (weights `w`) and `h`–`z` (weights `u`); there are no intra-layer
//! connections. Training minimizes the class-balanced negative
//! log-likelihood (Eq. 13) with Contrastive Divergence (CD-k, Eq. 16–21) on
//! mini-batches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbm_im_streams::{Instance, MiniBatch};

/// Hyper-parameters of the RBM network (the RBM-IM rows of Tab. II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbmNetworkConfig {
    /// Number of hidden units, expressed as a fraction of the visible units
    /// (the paper's grid: 0.25·V … 1.0·V). The absolute count is
    /// `max(4, fraction * num_features)`.
    pub hidden_fraction: f64,
    /// Learning rate η of the gradient updates (Eq. 17).
    pub learning_rate: f64,
    /// Number of Gibbs sampling steps k in CD-k.
    pub gibbs_steps: usize,
    /// β parameter of the effective-number-of-samples class-balanced loss;
    /// weights are `(1 − β) / (1 − β^{n_c})`.
    pub class_balance_beta: f64,
    /// Weight-decay (L2) coefficient applied to the connection weights.
    pub weight_decay: f64,
    /// Momentum applied to gradient updates (0 disables it).
    pub momentum: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RbmNetworkConfig {
    fn default() -> Self {
        RbmNetworkConfig {
            hidden_fraction: 0.5,
            learning_rate: 0.05,
            gibbs_steps: 1,
            class_balance_beta: 0.99,
            weight_decay: 1e-4,
            momentum: 0.5,
            seed: 42,
        }
    }
}

/// The three-layer RBM.
#[derive(Debug, Clone)]
pub struct RbmNetwork {
    num_visible: usize,
    num_hidden: usize,
    num_classes: usize,
    config: RbmNetworkConfig,
    /// Visible–hidden weights, `w[i][j]` connecting `v_i` to `h_j`.
    w: Vec<Vec<f64>>,
    /// Hidden–class weights, `u[j][k]` connecting `h_j` to `z_k`.
    u: Vec<Vec<f64>>,
    /// Visible biases `a_i`.
    a: Vec<f64>,
    /// Hidden biases `b_j`.
    b: Vec<f64>,
    /// Class biases `c_k`.
    c: Vec<f64>,
    /// Momentum buffers.
    w_vel: Vec<Vec<f64>>,
    u_vel: Vec<Vec<f64>>,
    /// Per-class instance counts (for the class-balanced loss weights).
    class_counts: Vec<u64>,
    /// Online per-feature min/max used to normalize inputs into [0, 1].
    feature_min: Vec<f64>,
    feature_max: Vec<f64>,
    rng: StdRng,
    batches_trained: u64,
}

impl RbmNetwork {
    /// Creates an untrained network for the given schema.
    pub fn new(num_features: usize, num_classes: usize, config: RbmNetworkConfig) -> Self {
        assert!(num_features > 0);
        assert!(num_classes >= 2);
        assert!(config.hidden_fraction > 0.0);
        assert!(config.learning_rate > 0.0);
        assert!(config.gibbs_steps >= 1);
        assert!(config.class_balance_beta > 0.0 && config.class_balance_beta < 1.0);
        let num_hidden = ((num_features as f64 * config.hidden_fraction).round() as usize).max(4);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = 0.1;
        let w = (0..num_features)
            .map(|_| (0..num_hidden).map(|_| (rng.gen::<f64>() - 0.5) * scale).collect())
            .collect();
        let u = (0..num_hidden)
            .map(|_| (0..num_classes).map(|_| (rng.gen::<f64>() - 0.5) * scale).collect())
            .collect();
        RbmNetwork {
            num_visible: num_features,
            num_hidden,
            num_classes,
            config,
            w,
            u,
            a: vec![0.0; num_features],
            b: vec![0.0; num_hidden],
            c: vec![0.0; num_classes],
            w_vel: vec![vec![0.0; num_hidden]; num_features],
            u_vel: vec![vec![0.0; num_classes]; num_hidden],
            class_counts: vec![0; num_classes],
            feature_min: vec![f64::INFINITY; num_features],
            feature_max: vec![f64::NEG_INFINITY; num_features],
            rng,
            batches_trained: 0,
        }
    }

    /// Number of hidden units.
    pub fn num_hidden(&self) -> usize {
        self.num_hidden
    }

    /// Number of mini-batches trained on so far.
    pub fn batches_trained(&self) -> u64 {
        self.batches_trained
    }

    /// Per-class instance counts accumulated during training.
    pub fn class_counts(&self) -> &[u64] {
        &self.class_counts
    }

    fn sigmoid(x: f64) -> f64 {
        1.0 / (1.0 + (-x).exp())
    }

    /// Min–max normalizes a feature vector into `[0, 1]` using the running
    /// per-feature ranges (features never observed to vary map to 0.5).
    fn normalize(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let (lo, hi) = (self.feature_min[i], self.feature_max[i]);
                if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-12 {
                    0.5
                } else {
                    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    fn observe_ranges(&mut self, instance: &Instance) {
        for (i, &x) in instance.features.iter().enumerate() {
            if x < self.feature_min[i] {
                self.feature_min[i] = x;
            }
            if x > self.feature_max[i] {
                self.feature_max[i] = x;
            }
        }
    }

    /// Hidden activation probabilities given visible values and a class
    /// one-hot/soft encoding (Eq. 10).
    fn hidden_probabilities(&self, v: &[f64], z: &[f64]) -> Vec<f64> {
        (0..self.num_hidden)
            .map(|j| {
                let mut act = self.b[j];
                for (i, &vi) in v.iter().enumerate() {
                    act += vi * self.w[i][j];
                }
                for (k, &zk) in z.iter().enumerate() {
                    act += zk * self.u[j][k];
                }
                Self::sigmoid(act)
            })
            .collect()
    }

    /// Visible reconstruction probabilities given hidden values (Eq. 11).
    fn visible_probabilities(&self, h: &[f64]) -> Vec<f64> {
        (0..self.num_visible)
            .map(|i| {
                let mut act = self.a[i];
                for (j, &hj) in h.iter().enumerate() {
                    act += hj * self.w[i][j];
                }
                Self::sigmoid(act)
            })
            .collect()
    }

    /// Class reconstruction probabilities (softmax, Eq. 12).
    fn class_probabilities(&self, h: &[f64]) -> Vec<f64> {
        let activations: Vec<f64> = (0..self.num_classes)
            .map(|k| {
                let mut act = self.c[k];
                for (j, &hj) in h.iter().enumerate() {
                    act += hj * self.u[j][k];
                }
                act
            })
            .collect();
        let max = activations.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = activations.iter().map(|&x| (x - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.iter().map(|e| e / total).collect()
    }

    fn sample_binary(&mut self, probabilities: &[f64]) -> Vec<f64> {
        probabilities.iter().map(|&p| if self.rng.gen::<f64>() < p { 1.0 } else { 0.0 }).collect()
    }

    /// Class-balanced loss weight of a class (Eq. 13): the inverse effective
    /// number of samples, normalized so the average weight over observed
    /// classes is 1.
    pub fn class_weight(&self, class: usize) -> f64 {
        let beta = self.config.class_balance_beta;
        let raw: Vec<f64> = self
            .class_counts
            .iter()
            .map(|&n| {
                if n == 0 {
                    // Unseen classes get the weight of a single-instance class.
                    (1.0 - beta) / (1.0 - beta.powi(1))
                } else {
                    (1.0 - beta) / (1.0 - beta.powi(n.min(i32::MAX as u64) as i32))
                }
            })
            .collect();
        let mean: f64 = raw.iter().sum::<f64>() / raw.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            raw[class] / mean
        }
    }

    /// Predicts the class of an instance by comparing free energies: for
    /// each candidate class `k` the free energy of the configuration
    /// `(v, z = 1_k)` is computed and the lowest-energy class wins (the
    /// standard discriminative read-out of a classification RBM). Used by
    /// examples and tests; RBM-IM itself is a detector, not the stream
    /// classifier.
    pub fn predict(&self, features: &[f64]) -> usize {
        let v = self.normalize(features);
        let visible_term: f64 = v.iter().zip(self.a.iter()).map(|(vi, ai)| vi * ai).sum();
        let mut best = (0usize, f64::NEG_INFINITY);
        for k in 0..self.num_classes {
            // -F(v, k) = Σ_i a_i v_i + c_k + Σ_j softplus(b_j + Σ_i v_i w_ij + u_jk)
            let mut neg_free_energy = visible_term + self.c[k];
            for j in 0..self.num_hidden {
                let mut act = self.b[j] + self.u[j][k];
                for (i, &vi) in v.iter().enumerate() {
                    act += vi * self.w[i][j];
                }
                // softplus(act) = ln(1 + e^act), computed stably.
                neg_free_energy += if act > 30.0 { act } else { (1.0 + act.exp()).ln() };
            }
            if neg_free_energy > best.1 {
                best = (k, neg_free_energy);
            }
        }
        best.0
    }

    /// Reconstruction error of a single labeled instance (Eq. 22–26): the
    /// root of the summed squared differences between the instance (features
    /// plus one-hot label) and its reconstruction.
    pub fn reconstruction_error(&self, instance: &Instance) -> f64 {
        let v = self.normalize(&instance.features);
        let mut z = vec![0.0; self.num_classes];
        if instance.class < self.num_classes {
            z[instance.class] = 1.0;
        }
        let h = self.hidden_probabilities(&v, &z);
        let v_rec = self.visible_probabilities(&h);
        let z_rec = self.class_probabilities(&h);
        let mut sum = 0.0;
        for (x, xr) in v.iter().zip(v_rec.iter()) {
            sum += (x - xr) * (x - xr);
        }
        for (y, yr) in z.iter().zip(z_rec.iter()) {
            sum += (y - yr) * (y - yr);
        }
        sum.sqrt()
    }

    /// Average reconstruction error of each class over a mini-batch
    /// (Eq. 27). Classes absent from the batch yield `None`.
    pub fn batch_reconstruction_errors(&self, batch: &MiniBatch) -> Vec<Option<f64>> {
        let mut sums = vec![0.0; self.num_classes];
        let mut counts = vec![0usize; self.num_classes];
        for instance in &batch.instances {
            if instance.class >= self.num_classes {
                continue;
            }
            sums[instance.class] += self.reconstruction_error(instance);
            counts[instance.class] += 1;
        }
        sums.iter()
            .zip(counts.iter())
            .map(|(&s, &c)| if c == 0 { None } else { Some(s / c as f64) })
            .collect()
    }

    /// Trains the network on one mini-batch with CD-k and the class-balanced
    /// loss (Eq. 16–21). Returns the mean (weighted) reconstruction error of
    /// the batch before the update, which doubles as a cheap training
    /// diagnostic.
    pub fn train_batch(&mut self, batch: &MiniBatch) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        // Update normalization ranges and class counts first so the weights
        // reflect the batch about to be learned.
        for instance in &batch.instances {
            self.observe_ranges(instance);
            if instance.class < self.num_classes {
                self.class_counts[instance.class] += 1;
            }
        }

        let lr = self.config.learning_rate / batch.len() as f64;
        let momentum = self.config.momentum;
        let decay = self.config.weight_decay;

        // Gradient accumulators.
        let mut dw = vec![vec![0.0; self.num_hidden]; self.num_visible];
        let mut du = vec![vec![0.0; self.num_classes]; self.num_hidden];
        let mut da = vec![0.0; self.num_visible];
        let mut db = vec![0.0; self.num_hidden];
        let mut dc = vec![0.0; self.num_classes];
        let mut total_error = 0.0;

        for instance in &batch.instances {
            if instance.class >= self.num_classes {
                continue;
            }
            let weight = self.class_weight(instance.class);
            let v0 = self.normalize(&instance.features);
            let mut z0 = vec![0.0; self.num_classes];
            z0[instance.class] = 1.0;

            // Positive phase.
            let h0_prob = self.hidden_probabilities(&v0, &z0);
            let mut h_sample = self.sample_binary(&h0_prob);

            // Gibbs chain (negative phase).
            let mut vk = v0.clone();
            let mut zk = z0.clone();
            let mut hk_prob = h0_prob.clone();
            for step in 0..self.config.gibbs_steps {
                vk = self.visible_probabilities(&h_sample);
                zk = self.class_probabilities(&h_sample);
                hk_prob = self.hidden_probabilities(&vk, &zk);
                if step + 1 < self.config.gibbs_steps {
                    h_sample = self.sample_binary(&hk_prob);
                } else {
                    // Final step uses probabilities (standard CD-k practice).
                    h_sample = hk_prob.clone();
                }
            }

            // Accumulate weighted gradients: ⟨data⟩ − ⟨reconstruction⟩.
            for i in 0..self.num_visible {
                for j in 0..self.num_hidden {
                    dw[i][j] += weight * (v0[i] * h0_prob[j] - vk[i] * hk_prob[j]);
                }
                da[i] += weight * (v0[i] - vk[i]);
            }
            for j in 0..self.num_hidden {
                for k in 0..self.num_classes {
                    du[j][k] += weight * (h0_prob[j] * z0[k] - hk_prob[j] * zk[k]);
                }
                db[j] += weight * (h0_prob[j] - hk_prob[j]);
            }
            for k in 0..self.num_classes {
                dc[k] += weight * (z0[k] - zk[k]);
            }

            let mut err = 0.0;
            for (x, xr) in v0.iter().zip(vk.iter()) {
                err += (x - xr) * (x - xr);
            }
            for (y, yr) in z0.iter().zip(zk.iter()) {
                err += (y - yr) * (y - yr);
            }
            total_error += weight * err.sqrt();
        }

        // Apply updates with momentum and weight decay.
        for i in 0..self.num_visible {
            for (j, dw_ij) in dw[i].iter().enumerate() {
                self.w_vel[i][j] =
                    momentum * self.w_vel[i][j] + lr * (dw_ij - decay * self.w[i][j]);
                self.w[i][j] += self.w_vel[i][j];
            }
            self.a[i] += lr * da[i];
        }
        for j in 0..self.num_hidden {
            for (k, du_jk) in du[j].iter().enumerate() {
                self.u_vel[j][k] =
                    momentum * self.u_vel[j][k] + lr * (du_jk - decay * self.u[j][k]);
                self.u[j][k] += self.u_vel[j][k];
            }
            self.b[j] += lr * db[j];
        }
        for (c, dc_k) in self.c.iter_mut().zip(dc.iter()) {
            *c += lr * dc_k;
        }
        self.batches_trained += 1;
        total_error / batch.len() as f64
    }

    /// Forgets everything (used when the harness fully reinitializes the
    /// detector).
    pub fn reset(&mut self) {
        *self = RbmNetwork::new(self.num_visible, self.num_classes, self.config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_streams::generators::GaussianMixtureGenerator;
    use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
    use rbm_im_streams::StreamExt;

    fn batch_from(instances: Vec<Instance>) -> MiniBatch {
        MiniBatch { start_index: instances.first().map(|i| i.index).unwrap_or(0), instances }
    }

    #[test]
    fn construction_respects_hidden_fraction() {
        let net = RbmNetwork::new(
            20,
            5,
            RbmNetworkConfig { hidden_fraction: 0.25, ..Default::default() },
        );
        assert_eq!(net.num_hidden(), 5);
        // Floor of 4 hidden units for tiny inputs.
        let tiny =
            RbmNetwork::new(3, 2, RbmNetworkConfig { hidden_fraction: 0.25, ..Default::default() });
        assert_eq!(tiny.num_hidden(), 4);
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut stream = GaussianMixtureGenerator::balanced(8, 3, 1, 7);
        let mut net = RbmNetwork::new(8, 3, RbmNetworkConfig::default());
        // Measure error on a held-out probe batch before and after training.
        let probe = batch_from(stream.take_instances(100));
        // Warm the normalization ranges so the before/after comparison is fair.
        let warm = batch_from(stream.take_instances(50));
        net.train_batch(&warm);
        let before: f64 =
            probe.instances.iter().map(|i| net.reconstruction_error(i)).sum::<f64>() / 100.0;
        for _ in 0..60 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        let after: f64 =
            probe.instances.iter().map(|i| net.reconstruction_error(i)).sum::<f64>() / 100.0;
        assert!(
            after < before * 0.9,
            "training should reduce reconstruction error: before {before}, after {after}"
        );
        assert_eq!(net.batches_trained(), 61);
    }

    #[test]
    fn reconstruction_error_rises_after_concept_change() {
        // Train on one mixture; the reconstruction error of data from a
        // different mixture must be higher than on the training concept.
        let mut concept_a = GaussianMixtureGenerator::balanced(6, 3, 1, 11);
        let mut concept_b = GaussianMixtureGenerator::balanced(6, 3, 1, 999);
        let mut net = RbmNetwork::new(6, 3, RbmNetworkConfig::default());
        for _ in 0..80 {
            let batch = batch_from(concept_a.take_instances(50));
            net.train_batch(&batch);
        }
        let err_a: f64 =
            concept_a.take_instances(200).iter().map(|i| net.reconstruction_error(i)).sum::<f64>()
                / 200.0;
        let err_b: f64 =
            concept_b.take_instances(200).iter().map(|i| net.reconstruction_error(i)).sum::<f64>()
                / 200.0;
        assert!(
            err_b > err_a * 1.05,
            "unseen concept should reconstruct worse: trained {err_a}, new {err_b}"
        );
    }

    #[test]
    fn per_class_errors_reported_only_for_present_classes() {
        let mut stream = GaussianMixtureGenerator::balanced(5, 4, 1, 3);
        let mut net = RbmNetwork::new(5, 4, RbmNetworkConfig::default());
        let batch = batch_from(stream.take_instances(60));
        net.train_batch(&batch);
        let only_class_zero: Vec<Instance> =
            (0..20).map(|_| stream.generate_for_class(0)).collect();
        let errors = net.batch_reconstruction_errors(&batch_from(only_class_zero));
        assert!(errors[0].is_some());
        assert!(errors[1].is_none());
        assert!(errors[2].is_none());
        assert!(errors[3].is_none());
    }

    #[test]
    fn class_weights_favor_minorities() {
        let base = GaussianMixtureGenerator::balanced(5, 3, 1, 17);
        let profile = ImbalanceProfile::Static(vec![50.0, 10.0, 1.0]);
        let mut stream = ImbalancedStream::new(base, profile, 5);
        let mut net = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        for _ in 0..40 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        let w_majority = net.class_weight(0);
        let w_minority = net.class_weight(2);
        assert!(
            w_minority > w_majority,
            "minority weight {w_minority} must exceed majority weight {w_majority}"
        );
        assert!(net.class_counts()[0] > net.class_counts()[2]);
    }

    #[test]
    fn prediction_is_better_than_chance_after_training() {
        // The default (detector-sized) network is deliberately small; give
        // the classification probe a wider hidden layer and a faster
        // learning rate, as one would when using the RBM as a classifier.
        let mut stream = GaussianMixtureGenerator::balanced(6, 3, 1, 23);
        let cfg =
            RbmNetworkConfig { hidden_fraction: 2.0, learning_rate: 0.2, ..Default::default() };
        let mut net = RbmNetwork::new(6, 3, cfg);
        for _ in 0..200 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        let test = stream.take_instances(300);
        let correct = test.iter().filter(|i| net.predict(&i.features) == i.class).count();
        let accuracy = correct as f64 / test.len() as f64;
        assert!(accuracy > 0.6, "RBM class layer should beat chance (1/3), got {accuracy}");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut net = RbmNetwork::new(4, 2, RbmNetworkConfig::default());
        let err = net.train_batch(&MiniBatch { instances: vec![], start_index: 0 });
        assert_eq!(err, 0.0);
        assert_eq!(net.batches_trained(), 0);
    }

    #[test]
    fn reset_forgets_training() {
        let mut stream = GaussianMixtureGenerator::balanced(5, 3, 1, 31);
        let mut net = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        for _ in 0..20 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        net.reset();
        assert_eq!(net.batches_trained(), 0);
        assert!(net.class_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut s1 = GaussianMixtureGenerator::balanced(5, 3, 1, 3);
        let mut s2 = GaussianMixtureGenerator::balanced(5, 3, 1, 3);
        let mut n1 = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        let mut n2 = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        for _ in 0..10 {
            let b1 = batch_from(s1.take_instances(40));
            let b2 = batch_from(s2.take_instances(40));
            let e1 = n1.train_batch(&b1);
            let e2 = n2.train_batch(&b2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        RbmNetwork::new(5, 3, RbmNetworkConfig { gibbs_steps: 0, ..Default::default() });
    }
}
