//! Special functions: log-gamma, regularized incomplete gamma and beta
//! functions, and the error function.
//!
//! These are the numerical primitives from which every distribution CDF in
//! [`crate::distributions`] is built. Implementations follow the classic
//! Lanczos / continued-fraction formulations (Numerical Recipes style) and
//! are accurate to roughly 1e-12 over the parameter ranges exercised by the
//! drift detectors (degrees of freedom up to a few thousand).

/// Lanczos coefficients (g = 7, n = 9) for the log-gamma approximation.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
/// Panics if `x` is not finite.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma requires a finite argument, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = LANCZOS_COEF[0];
        let t = x + LANCZOS_G + 0.5;
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// The error function `erf(x)`, computed from the regularized incomplete
/// gamma function: `erf(x) = sign(x) * P(1/2, x^2)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        regularized_gamma_p(0.5, x * x)
    } else {
        -regularized_gamma_p(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// For large positive `x` this is computed through the upper incomplete
/// gamma function to avoid catastrophic cancellation.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        regularized_gamma_q(0.5, x * x)
    } else {
        1.0 + regularized_gamma_p(0.5, x * x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 3.0e-15;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `a > 0`, `x >= 0`. Uses the series expansion for `x < a + 1` and the
/// continued fraction for the complement otherwise.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "regularized_gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "regularized_gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "regularized_gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "regularized_gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Series representation of P(a, x), valid (rapidly convergent) for x < a+1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x), valid for x >= a+1.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `a > 0`, `b > 0`, `0 <= x <= 1`. Computed using the continued fraction of
/// Lentz with the standard symmetry transformation for numerical stability.
pub fn regularized_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "regularized_beta requires a,b > 0 (a={a}, b={b})");
    assert!((0.0..=1.0).contains(&x), "regularized_beta requires 0 <= x <= 1, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(x, a, b) / a
    } else {
        1.0 - front * beta_continued_fraction(1.0 - x, b, a) / b
    }
}

/// Modified Lentz continued fraction for the incomplete beta function.
fn beta_continued_fraction(x: f64, a: f64, b: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural logarithm of the (complete) beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0_f64).ln(), 1e-10);
        close(ln_gamma(11.0), (3_628_800.0_f64).ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_branch() {
        // Γ(0.25) ≈ 3.625609908
        close(ln_gamma(0.25), 3.625_609_908_221_908_f64.ln(), 1e-9);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_715, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-10);
        close(erf(2.0), 0.995_322_265_018_953, 1e-10);
        close(erfc(1.0), 0.157_299_207_050_285, 1e-10);
        close(erfc(-1.0), 1.842_700_792_949_715, 1e-10);
    }

    #[test]
    fn erfc_large_argument_no_cancellation() {
        // erfc(5) ≈ 1.5375e-12; naive 1-erf would lose all precision.
        let v = erfc(5.0);
        assert!(v > 1.0e-12 && v < 2.0e-12, "erfc(5) = {v}");
    }

    #[test]
    fn gamma_p_q_complementarity() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 8.0), (10.0, 3.0), (100.0, 110.0)] {
            let p = regularized_gamma_p(a, x);
            let q = regularized_gamma_q(a, x);
            close(p + q, 1.0, 1e-12);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            close(regularized_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn regularized_beta_known_values() {
        // I_x(1, 1) = x (uniform CDF)
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            close(regularized_beta(x, 1.0, 1.0), x, 1e-12);
        }
        // I_x(1, b) = 1 - (1-x)^b
        close(regularized_beta(0.3, 1.0, 3.0), 1.0 - 0.7_f64.powi(3), 1e-12);
        // symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = regularized_beta(0.37, 2.5, 4.5);
        let w = 1.0 - regularized_beta(0.63, 4.5, 2.5);
        close(v, w, 1e-12);
    }

    #[test]
    fn regularized_beta_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let v = regularized_beta(x, 3.0, 5.0);
            assert!(v >= prev, "I_x(3,5) must be nondecreasing");
            prev = v;
        }
    }

    #[test]
    fn ln_beta_matches_definition() {
        // B(2,3) = Γ(2)Γ(3)/Γ(5) = 1*2/24 = 1/12
        close(ln_beta(2.0, 3.0), (1.0_f64 / 12.0).ln(), 1e-12);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nan() {
        ln_gamma(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn regularized_beta_rejects_out_of_range_x() {
        regularized_beta(1.5, 1.0, 1.0);
    }
}
