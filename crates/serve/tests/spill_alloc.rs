//! Pins the [`SnapshotSink`] encode-scratch contract: the sink keeps one
//! persistent output buffer across checkpoint spills, so once it has
//! grown to the fleet's largest checkpoint, steady-state background
//! spilling allocates no fresh output vector per spill. Same
//! counting-allocator harness as `crates/obs/tests/no_alloc.rs`; one test
//! per file so no concurrent test pollutes the counter.
//!
//! A spill is not allocation-*free* — the codec builds its intermediate
//! value tree and the filesystem path conversions allocate — but those
//! costs are identical per spill of the same checkpoint. What the scratch
//! buffer removes is the per-spill output growth: the first spill pays
//! for the buffer, every later spill of the same (or smaller) checkpoint
//! must allocate strictly less, and steady state must be flat.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use rbm_im_harness::registry::DetectorSpec;
use rbm_im_serve::{ServeConfig, SnapshotSink};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, StreamExt};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the test thread's allocations are counted while this is set —
    /// libtest's harness threads allocate concurrently and must not
    /// pollute the measurement.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    if COUNTING.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_here();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn repeated_spills_reuse_the_encode_scratch() {
    // Build a real RBM checkpoint (the ~47 KB binary state the supervisor
    // spills in production) — all cold-path, uncounted.
    let checkpoint = served_rbm_checkpoint();
    let dir = std::env::temp_dir().join(format!("rbm-spill-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sink = SnapshotSink::new(&dir).unwrap();

    let mut spill_allocs = [0u64; 3];
    for slot in &mut spill_allocs {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        COUNTING.with(|flag| flag.set(true));
        sink.spill_checkpoint(&checkpoint).unwrap();
        COUNTING.with(|flag| flag.set(false));
        *slot = ALLOCATIONS.load(Ordering::SeqCst) - before;
    }

    assert!(
        spill_allocs[1] < spill_allocs[0],
        "the first spill grows the scratch; later spills must not \
         ({spill_allocs:?} allocations per spill)"
    );
    assert_eq!(
        spill_allocs[1], spill_allocs[2],
        "steady-state spills of the same checkpoint must allocate identically \
         ({spill_allocs:?} allocations per spill)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A served RBM stream's checkpoint, the supervisor's spill payload.
fn served_rbm_checkpoint() -> rbm_im_serve::StreamCheckpoint {
    let mut gen = RandomRbfGenerator::new(8, 4, 2, 0.0, 11);
    let server = rbm_im_serve::ServerHandle::start(ServeConfig::default());
    let spec = DetectorSpec::parse("rbm(mini_batch=25, warmup=4, persistence=1)").unwrap();
    let client = server.attach("spill-alloc", gen.schema().clone(), &spec).unwrap();
    let mut batch = gen.take_instances(400);
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => break,
            Err(e) => {
                batch = e.into_rejected();
                std::thread::yield_now();
            }
        }
    }
    server.drain();
    let checkpoint = server.checkpoint_stream("spill-alloc").unwrap();
    drop(server.shutdown());
    checkpoint
}
