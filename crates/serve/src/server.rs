//! The serving front-end: [`ServerHandle`] (attach / ingest / subscribe /
//! resize / checkpoint / drain / shutdown) and [`StreamClient`] (the
//! per-stream ingest handle feeder threads clone and keep).
//!
//! Topology is **dynamic**: the consistent-hash
//! [`StreamRouter`] and the shard channel set
//! live behind an `RwLock` that every ingest resolves through (a read lock
//! held just for the send), so [`ServerHandle::resize_shards`] can grow or
//! shrink the shard fleet live: only the streams whose ring ownership
//! changed are migrated — checkpointed on the old shard, transferred, and
//! restored on the new one, with their in-flight ingest parked and
//! replayed so no instance is lost or reordered.

use crate::chaos::{self, FaultPlane};
use crate::config::ServeConfig;
use crate::event::{EventBus, ServeEvent};
use crate::router::StreamRouter;
use crate::shard::{
    BundleState, MigrationBundle, Payload, RestoreKind, ShardGauge, ShardMsg, ShardReport,
    ShardWorker, TierScanEntry,
};
use rbm_im_harness::checkpoint::PipelineCheckpoint;
use rbm_im_harness::pipeline::{PipelineError, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec, RegistryError};
use rbm_im_obs::{MetricsRegistry, Tracer};
use rbm_im_streams::source::derive_stream_seed;
use rbm_im_streams::{Instance, StreamSchema};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors of serving control operations (attach / detach / resize /
/// checkpoint / blocking ingest).
#[derive(Debug)]
pub enum ServeError {
    /// The stream id is already attached on its shard.
    AlreadyAttached(String),
    /// No stream with this id is attached.
    UnknownStream(String),
    /// Detector spec resolution failed.
    Registry(RegistryError),
    /// The shard worker is gone (server shut down or worker panicked).
    ShardUnavailable,
    /// Capturing or restoring a stream checkpoint failed.
    Checkpoint(String),
    /// An elastic resize could not be performed.
    Resize(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::AlreadyAttached(id) => write!(f, "stream `{id}` is already attached"),
            ServeError::UnknownStream(id) => write!(f, "no stream `{id}` is attached"),
            ServeError::Registry(e) => write!(f, "detector resolution failed: {e}"),
            ServeError::ShardUnavailable => write!(f, "shard worker unavailable"),
            ServeError::Checkpoint(e) => write!(f, "stream checkpoint failed: {e}"),
            ServeError::Resize(e) => write!(f, "shard resize failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Registry(e) => ServeError::Registry(e),
            // The stepper path never reports a missing stream, but map it
            // defensively rather than panicking.
            PipelineError::MissingStream => ServeError::ShardUnavailable,
        }
    }
}

/// Errors of the non-blocking ingest path. Rejected instances ride back in
/// the error so callers can retry or shed load without losing data.
#[derive(Debug)]
pub enum IngestError {
    /// The shard's bounded ingest queue is full — explicit backpressure.
    Full(Vec<Instance>),
    /// The shard is gone (server shut down).
    Closed(Vec<Instance>),
}

impl IngestError {
    /// The instances that were not ingested, in their original order.
    pub fn into_rejected(self) -> Vec<Instance> {
        match self {
            IngestError::Full(instances) | IngestError::Closed(instances) => instances,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Full(instances) => {
                write!(f, "shard ingest queue full ({} instances rejected)", instances.len())
            }
            IngestError::Closed(instances) => {
                write!(f, "shard closed ({} instances rejected)", instances.len())
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Final summary of one served stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Stream id.
    pub stream: String,
    /// Shard that owned the stream.
    pub shard: usize,
    /// The stream's prequential run result (identical to what a sequential
    /// pipeline run over the same instances produces).
    pub result: RunResult,
}

/// A served stream's self-contained checkpoint: the stream id plus the
/// harness [`PipelineCheckpoint`] (schema, effective detector spec, run
/// config, complete pipeline state). Serializes to plain JSON — the unit
/// [`SnapshotSink`](crate::sink::SnapshotSink) spills to disk and
/// [`ServerHandle::restore_stream`] resumes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Stream id.
    pub stream: String,
    /// The pipeline checkpoint.
    pub checkpoint: PipelineCheckpoint,
}

/// What [`ServerHandle::hibernate_stream`] (or the supervisor's
/// [`TierPolicy`](crate::config::TierPolicy) pass) did to the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HibernateOutcome {
    /// The stream's live state was evicted to its binary checkpoint.
    Hibernated {
        /// Instances the cold checkpoint covers.
        position: u64,
        /// `true` when a fresh background spill at the same position let
        /// the eviction reuse the disk file without encoding; `false` when
        /// dirty state was encoded on demand (held in memory until the
        /// supervisor demotes it to disk).
        clean: bool,
    },
    /// The stream was already cold with in-memory bytes, and a matching
    /// spill let them be replaced by the disk file.
    DemotedToDisk {
        /// Instances the cold checkpoint covers.
        position: u64,
    },
    /// The stream was already cold; nothing changed.
    AlreadyCold {
        /// Instances the cold checkpoint covers.
        position: u64,
    },
}

/// One stream moved by an elastic resize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigratedStream {
    /// Stream id.
    pub stream: String,
    /// Shard the stream lived on before the resize.
    pub from: usize,
    /// Shard that owns the stream after the resize.
    pub to: usize,
}

/// What [`ServerHandle::resize_shards`] reports: the shard counts and
/// exactly which streams moved (only those whose consistent-hash ring
/// ownership changed).
#[derive(Debug, Clone, Default)]
pub struct ResizeReport {
    /// Shard count before the resize.
    pub old_shards: usize,
    /// Shard count after the resize.
    pub new_shards: usize,
    /// The migrated streams, sorted by id.
    pub moved: Vec<MigratedStream>,
}

/// What [`ServerHandle::shutdown`] returns: every stream's final summary
/// plus serving diagnostics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-stream summaries, sorted by stream id (deterministic whatever
    /// the shard layout). Streams detached before shutdown are *not*
    /// included — `detach` already returned their result.
    pub streams: Vec<StreamSummary>,
    /// Instances ingested for ids with no attached pipeline (dropped).
    pub dropped_unknown: u64,
    /// Wire frames a network front-end discarded before they reached a
    /// shard (malformed framing, bad magic, unsupported version). Always 0
    /// for in-process serving; `rbm-im-net` folds its connection counters
    /// in here at shutdown so wire-level drops are visible in the final
    /// report alongside [`ServeReport::dropped_unknown`].
    pub frames_dropped: u64,
    /// Per-category breakdown of [`ServeReport::frames_dropped`], so
    /// protocol-defect triage does not stop at a single opaque total. The
    /// categories sum to `frames_dropped`.
    pub frames_dropped_by: FrameDropBreakdown,
    /// Workspace-pool checkouts served by reuse across all shards
    /// (including shards retired by resizes).
    pub workspace_reuse_hits: u64,
    /// Workspace-pool checkouts that had to allocate a fresh workspace.
    pub workspace_reuse_misses: u64,
    /// Shard workers that panicked before shutdown. A non-zero value means
    /// the panicked shards' stream summaries (and diagnostics counters) are
    /// **missing** from this report — callers aggregating fleet results
    /// must treat it as partial.
    pub panicked_shards: usize,
}

impl ServeReport {
    /// Total instances processed across all streams still attached at
    /// shutdown.
    pub fn total_instances(&self) -> u64 {
        self.streams.iter().map(|s| s.result.instances).sum()
    }

    /// Total drift signals across all streams still attached at shutdown.
    pub fn total_drifts(&self) -> usize {
        self.streams.iter().map(|s| s.result.detections.len()).sum()
    }
}

/// Per-category tallies of wire frames a network front-end dropped before
/// they reached a shard. Mirrors `rbm-im-net`'s connection counters and
/// the `rbm_net_frames_dropped_total{kind}` metric family; the categories
/// sum to [`ServeReport::frames_dropped`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameDropBreakdown {
    /// Frames with unparseable framing or bad magic.
    pub malformed: u64,
    /// Frames carrying an unsupported protocol version.
    pub unsupported_version: u64,
    /// Frames with an unknown frame-type byte.
    pub unknown_frame_type: u64,
    /// Frames whose declared length exceeded the per-frame cap.
    pub oversized: u64,
    /// Frames lost to connection I/O errors mid-read.
    pub io: u64,
    /// Reply-typed frames received where a request was expected.
    pub unexpected_reply: u64,
}

impl FrameDropBreakdown {
    /// Sum across all categories — equals the flat `frames_dropped` total.
    pub fn total(&self) -> u64 {
        self.malformed
            + self.unsupported_version
            + self.unknown_frame_type
            + self.oversized
            + self.io
            + self.unexpected_reply
    }
}

/// One shard's row in a [`HealthSnapshot`]: stream population plus the
/// same gauge readings as [`ShardLoad`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard slot index.
    pub shard: usize,
    /// Streams currently attached to this shard (hot + cold).
    pub streams: usize,
    /// Attached streams with live in-memory pipeline state.
    pub hot_streams: usize,
    /// Attached streams hibernated to their binary checkpoint.
    pub cold_streams: usize,
    /// Ingest messages enqueued but not yet processed.
    pub queue_depth: u64,
    /// Instances inside those unprocessed messages.
    pub queued_instances: u64,
    /// Lifetime instances fully processed by this shard slot.
    pub processed_instances: u64,
}

/// Liveness-oriented summary of a running server, built by
/// [`ServerHandle::health`] and exposed over the wire as the `Health`
/// frame: per-shard load and stream counts, fleet-wide ingest latency
/// quantiles, and the age of the most recent checkpoint spill.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Per-shard rows, by slot index.
    pub shards: Vec<ShardHealth>,
    /// Total attached streams across all shards (hot + cold).
    pub streams: usize,
    /// Attached streams with live in-memory pipeline state.
    pub hot_streams: usize,
    /// Attached streams hibernated to their binary checkpoint (the cold
    /// tier — see `ARCHITECTURE.md` §9).
    pub cold_streams: usize,
    /// Median per-message ingest latency in seconds, merged across shards
    /// (0 when timing instrumentation is off or nothing was recorded).
    pub ingest_p50_seconds: f64,
    /// 99th-percentile per-message ingest latency in seconds.
    pub ingest_p99_seconds: f64,
    /// 99th-percentile rehydration latency in seconds (cold → hot state
    /// rebuilds; 0 until a stream has rehydrated). Always recorded —
    /// rehydrates are cold-path transitions, not gated on `RBM_OBS`.
    pub rehydrate_p99_seconds: f64,
    /// Seconds since the last checkpoint spill acknowledged via the
    /// supervisor, or `-1` when no spill has happened yet.
    pub last_spill_age_seconds: f64,
}

/// Applies deterministic per-stream seeding to an attach spec: when the
/// registry's factory for `spec.name` accepts a `seed` parameter and the
/// spec does not pin one, `seed = derive_stream_seed(base_seed, stream_id)`
/// (masked to 48 bits so the `f64` parameter encoding is exact) is
/// injected. Exposed so sequential baseline runs can reproduce exactly what
/// the server built — the determinism tests pin serving against
/// `PipelineBuilder` through this function.
pub fn deterministic_spec(
    registry: &DetectorRegistry,
    base_seed: u64,
    stream_id: &str,
    spec: &DetectorSpec,
) -> DetectorSpec {
    if registry.accepts_param(&spec.name, "seed") && !spec.params.contains_key("seed") {
        let seed = derive_stream_seed(base_seed, stream_id) & ((1u64 << 48) - 1);
        spec.clone().with_param("seed", seed as f64)
    } else {
        spec.clone()
    }
}

/// A point-in-time load reading of one shard, taken from its lock-free
/// gauges. `queue_depth`/`queued_instances` are the ingest messages /
/// instances enqueued but not yet fully processed (the backlog a
/// [`ResizePolicy`](crate::supervisor::ResizePolicy) watches);
/// `processed_instances` is the shard's lifetime throughput counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ShardLoad {
    /// Shard slot index.
    pub shard: usize,
    /// Ingest messages enqueued but not yet processed.
    pub queue_depth: u64,
    /// Instances inside those unprocessed messages.
    pub queued_instances: u64,
    /// Lifetime instances fully processed by this shard slot.
    pub processed_instances: u64,
}

/// One shard slot of the live topology: its ingest channel plus the load
/// gauge shared with its worker.
#[derive(Clone)]
struct ShardLink {
    tx: SyncSender<ShardMsg>,
    gauge: Arc<ShardGauge>,
}

/// The shard fleet at one point in time: the consistent-hash router plus
/// one ingest channel (and load gauge) per shard slot. Swapped atomically
/// by resizes.
struct Topology {
    router: StreamRouter,
    shards: Vec<ShardLink>,
}

/// Server state shared between the handle and every [`StreamClient`].
struct ServerInner {
    config: ServeConfig,
    registry: Arc<DetectorRegistry>,
    bus: Arc<EventBus>,
    /// The live topology. Ingest takes a read lock for the duration of one
    /// channel send; resizes take the write lock only for the atomic swap.
    topology: RwLock<Topology>,
    /// This server's metric instruments (shard gauges, latency histograms,
    /// resize/spill timings). Per-server rather than process-global so
    /// concurrent servers in one process never share counters.
    metrics: Arc<MetricsRegistry>,
    /// Ring buffer of slow-path spans (resize phases, spills), drained to
    /// JSONL by the supervisor's sink.
    tracer: Arc<Tracer>,
    /// Monotonic reference point for `last_spill_ns`.
    epoch: Instant,
    /// Nanoseconds since `epoch` of the most recent checkpoint spill;
    /// `u64::MAX` until the first spill.
    last_spill_ns: AtomicU64,
    /// The fault-injection plane every (re)spawned worker inherits —
    /// `None` outside chaos runs (see `crate::chaos`).
    faults: Option<Arc<FaultPlane>>,
}

impl ServerInner {
    /// Blocking routed send: routes `msg` to the shard owning `id` under
    /// the current topology and waits for queue space. Each *enqueue
    /// attempt* happens with the topology read lock held (so a resize
    /// cannot retire the channel between resolve and send), but a full
    /// queue is waited out with the lock **released** — a saturated shard
    /// must not starve `resize_shards`' write lock, since growing the
    /// fleet is exactly how sustained overload gets relieved. Re-resolving
    /// per attempt also means the wait naturally follows the stream to its
    /// new shard across a resize.
    ///
    /// The `Err` carries the whole message back on purpose: a bounced
    /// ingest must return its instances to the caller
    /// ([`IngestError`] reclaims them), so boxing it away would just move
    /// the allocation onto the hot path.
    #[allow(clippy::result_large_err)]
    fn send_routed(&self, id: &str, msg: ShardMsg) -> Result<(), ShardMsg> {
        let mut msg = msg;
        let mut attempts = 0u32;
        loop {
            match self.try_send_routed(id, msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(bounced)) => {
                    msg = bounced;
                    // Brief yields first (queue space usually opens within
                    // a scheduling quantum), then bounded sleeps so blocked
                    // feeders do not busy-burn a core against a saturated
                    // shard.
                    attempts = attempts.saturating_add(1);
                    if attempts <= 16 {
                        std::thread::yield_now();
                    } else {
                        let micros = 50u64 << (attempts - 17).min(5);
                        std::thread::sleep(std::time::Duration::from_micros(micros));
                    }
                }
                Err(TrySendError::Disconnected(bounced)) => return Err(bounced),
            }
        }
    }

    /// See [`ServerInner::send_routed`] on the deliberately large `Err`.
    #[allow(clippy::result_large_err)]
    fn try_send_routed(&self, id: &str, msg: ShardMsg) -> Result<(), TrySendError<ShardMsg>> {
        let topology = self.topology.read().expect("topology lock poisoned");
        let shard = topology.router.shard_of(id);
        let instances = match &msg {
            ShardMsg::Ingest { payload, .. } => Some(payload.len()),
            _ => None,
        };
        let link = &topology.shards[shard];
        link.tx.try_send(msg)?;
        // Gauge the enqueue only after the send succeeded (bounced ingest
        // never reaches the queue). The worker counts the matching
        // completion, so `enqueued − processed` is the live queue depth.
        if let Some(instances) = instances {
            link.gauge.record_enqueue(instances);
        }
        Ok(())
    }
}

/// Diagnostics of shards retired by shrinking resizes, folded into the
/// final [`ServeReport`]. `summaries` is normally empty — a retired shard
/// owns no streams — but holds the final summaries of streams reinstated
/// on a retiring source after a failed migration (their state is finalized
/// at retirement rather than silently lost).
#[derive(Default)]
struct RetiredStats {
    summaries: Vec<StreamSummary>,
    dropped_unknown: u64,
    workspace_reuse_hits: u64,
    workspace_reuse_misses: u64,
    panicked_shards: usize,
}

/// A cloneable per-stream ingest handle. The stream id is interned once;
/// each send resolves the owning shard against the live topology, so
/// clients keep working across elastic resizes (instances simply start
/// flowing to the stream's new shard).
#[derive(Clone)]
pub struct StreamClient {
    id: Arc<str>,
    inner: Arc<ServerInner>,
}

impl StreamClient {
    /// The stream id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The shard currently owning the stream (may change across resizes).
    pub fn shard(&self) -> usize {
        self.inner.topology.read().expect("topology lock poisoned").router.shard_of(&self.id)
    }

    /// Non-blocking ingest of one instance. On a full queue the instance
    /// comes back in [`IngestError::Full`]; the caller decides between
    /// retrying, blocking ([`StreamClient::ingest`]) and shedding load.
    pub fn try_ingest(&self, instance: Instance) -> Result<(), IngestError> {
        match self.inner.try_send_routed(
            &self.id,
            ShardMsg::Ingest { id: Arc::clone(&self.id), payload: Payload::One(instance) },
        ) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(msg)) => Err(IngestError::Full(reclaim(msg))),
            Err(TrySendError::Disconnected(msg)) => Err(IngestError::Closed(reclaim(msg))),
        }
    }

    /// Non-blocking ingest of a client-side micro-batch (one channel
    /// message however many instances), in per-stream arrival order.
    pub fn try_ingest_batch(&self, instances: Vec<Instance>) -> Result<(), IngestError> {
        if instances.is_empty() {
            return Ok(());
        }
        match self.inner.try_send_routed(
            &self.id,
            ShardMsg::Ingest { id: Arc::clone(&self.id), payload: Payload::Many(instances) },
        ) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(msg)) => Err(IngestError::Full(reclaim(msg))),
            Err(TrySendError::Disconnected(msg)) => Err(IngestError::Closed(reclaim(msg))),
        }
    }

    /// Blocking ingest: waits for queue space instead of failing fast (the
    /// natural mode for replay pumps that should simply run at the shard's
    /// pace).
    pub fn ingest(&self, instance: Instance) -> Result<(), IngestError> {
        self.inner
            .send_routed(
                &self.id,
                ShardMsg::Ingest { id: Arc::clone(&self.id), payload: Payload::One(instance) },
            )
            .map_err(|msg| IngestError::Closed(reclaim(msg)))
    }

    /// Blocking micro-batch ingest.
    pub fn ingest_batch(&self, instances: Vec<Instance>) -> Result<(), IngestError> {
        if instances.is_empty() {
            return Ok(());
        }
        self.inner
            .send_routed(
                &self.id,
                ShardMsg::Ingest { id: Arc::clone(&self.id), payload: Payload::Many(instances) },
            )
            .map_err(|msg| IngestError::Closed(reclaim(msg)))
    }
}

impl fmt::Debug for StreamClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamClient").field("id", &self.id).finish()
    }
}

/// Recovers the instances of a bounced ingest message.
fn reclaim(msg: ShardMsg) -> Vec<Instance> {
    match msg {
        ShardMsg::Ingest { payload, .. } => payload.into_instances(),
        _ => Vec::new(),
    }
}

/// A running sharded serving instance.
///
/// Lifecycle: [`ServerHandle::start`] spawns the shard workers;
/// [`ServerHandle::attach`] creates per-stream pipeline state (classifier +
/// detector resolved from an arbitrary registry [`DetectorSpec`]);
/// [`StreamClient::try_ingest`] feeds instances with explicit backpressure;
/// [`ServerHandle::subscribe`] taps the drift-event bus;
/// [`ServerHandle::resize_shards`] grows or shrinks the fleet live,
/// migrating only ring-reassigned streams; [`ServerHandle::checkpoint_all`]
/// captures restartable per-stream checkpoints;
/// [`ServerHandle::drain`] barriers until all queued ingest is processed;
/// [`ServerHandle::shutdown`] stops the workers gracefully — every attached
/// stream's trailing micro-batch is flushed and its final summary returned.
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    /// Worker join handles by shard slot (grown/shrunk by resizes).
    joins: Mutex<HashMap<usize, JoinHandle<ShardReport>>>,
    /// Serializes control-plane operations (attach / detach / resize /
    /// restore) so a resize observes a stable stream population.
    control: Mutex<()>,
    /// Counters of shards retired by shrinking resizes.
    retired: Mutex<RetiredStats>,
}

impl ServerHandle {
    /// Starts a server with the default detector registry.
    pub fn start(config: ServeConfig) -> Self {
        Self::start_with_registry(config, Arc::new(DetectorRegistry::with_defaults()))
    }

    /// Starts a server resolving attach specs against a custom registry
    /// (e.g. one with application-specific detectors registered). Adopts
    /// the process-wide `RBM_CHAOS` environment fault plane when one is
    /// configured ([`chaos::env_plane`]).
    pub fn start_with_registry(config: ServeConfig, registry: Arc<DetectorRegistry>) -> Self {
        Self::start_with_faults(config, registry, chaos::env_plane().cloned())
    }

    /// Starts a server with an explicit fault-injection plane (or none,
    /// overriding the `RBM_CHAOS` environment gate): every shard worker —
    /// including workers spawned later by resizes and
    /// [`ServerHandle::revive_shard`] — consults `faults` for its seeded
    /// kill-shard and hibernate-storm decisions. The chaos suites build
    /// their servers through this (`ARCHITECTURE.md` §10).
    pub fn start_with_faults(
        config: ServeConfig,
        registry: Arc<DetectorRegistry>,
        faults: Option<Arc<FaultPlane>>,
    ) -> Self {
        assert!(config.num_shards >= 1, "a server needs at least one shard");
        assert!(config.queue_capacity >= 1, "ingest queues need capacity");
        let bus = Arc::new(EventBus::new());
        let metrics = Arc::new(MetricsRegistry::new());
        if let Some(plane) = &faults {
            plane.bind_metrics(&metrics);
        }
        let mut shards = Vec::with_capacity(config.num_shards);
        let mut joins = HashMap::with_capacity(config.num_shards);
        for index in 0..config.num_shards {
            let (link, join) =
                spawn_worker(index, &registry, &bus, &metrics, config.queue_capacity, &faults);
            shards.push(link);
            joins.insert(index, join);
        }
        let inner = Arc::new(ServerInner {
            config,
            registry,
            bus,
            topology: RwLock::new(Topology {
                router: StreamRouter::new(config.num_shards),
                shards,
            }),
            metrics,
            tracer: Arc::new(Tracer::new(4096)),
            epoch: Instant::now(),
            last_spill_ns: AtomicU64::new(u64::MAX),
            faults,
        });
        ServerHandle {
            inner,
            joins: Mutex::new(joins),
            control: Mutex::new(()),
            retired: Mutex::new(RetiredStats::default()),
        }
    }

    /// Current number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.topology.read().expect("topology lock poisoned").router.num_shards()
    }

    /// The shard a stream id currently routes to.
    pub fn shard_of(&self, stream_id: &str) -> usize {
        self.inner.topology.read().expect("topology lock poisoned").router.shard_of(stream_id)
    }

    /// Point-in-time load readings of every shard slot, from the lock-free
    /// gauges the ingest path maintains — cheap enough to poll at high
    /// frequency ([`Supervisor`](crate::supervisor::Supervisor) feeds these
    /// to its [`ResizePolicy`](crate::supervisor::ResizePolicy) every
    /// tick). Readings are monotone-counter differences, not a consistent
    /// cross-shard snapshot.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        let topology = self.inner.topology.read().expect("topology lock poisoned");
        topology
            .shards
            .iter()
            .enumerate()
            .map(|(shard, link)| {
                let enq_m = link.gauge.enqueued_messages.get();
                let pro_m = link.gauge.processed_messages.get();
                let enq_i = link.gauge.enqueued_instances.get();
                let pro_i = link.gauge.processed_instances.get();
                ShardLoad {
                    shard,
                    queue_depth: enq_m.saturating_sub(pro_m),
                    queued_instances: enq_i.saturating_sub(pro_i),
                    processed_instances: pro_i,
                }
            })
            .collect()
    }

    /// The server's metrics registry: every shard gauge, latency
    /// histogram, and resize/spill timing registers here. Hand it to an
    /// [`ObsServer`](rbm_im_obs::ObsServer) for Prometheus scraping, or
    /// snapshot it directly.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.metrics)
    }

    /// The server's span tracer (resize phases, checkpoint spills). The
    /// supervisor drains it to a JSONL trace sink each tick.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.inner.tracer)
    }

    /// Marks a checkpoint spill as having just completed (feeds the
    /// last-spill age in [`ServerHandle::health`]).
    pub(crate) fn note_spill(&self) {
        let now = self.inner.epoch.elapsed().as_nanos() as u64;
        self.inner.last_spill_ns.store(now, Ordering::Relaxed);
    }

    /// A liveness summary of the running server: per-shard stream counts
    /// and load gauges, fleet-wide ingest latency quantiles, and the age
    /// of the most recent checkpoint spill. Takes the control lock (the
    /// per-shard stream counts are an inventory barrier), so it cannot
    /// race a resize — poll it from a health endpoint, not a hot loop.
    pub fn health(&self) -> HealthSnapshot {
        let _guard = self.control.lock().expect("control lock poisoned");
        let links: Vec<ShardLink> =
            self.inner.topology.read().expect("topology lock poisoned").shards.clone();
        let mut shards = Vec::with_capacity(links.len());
        let mut total_streams = 0usize;
        let mut total_hot = 0usize;
        let mut total_cold = 0usize;
        for (index, link) in links.iter().enumerate() {
            // A tier scan rather than a bare inventory: same barrier, but
            // the rows also say which residency tier each stream occupies.
            let (reply_tx, reply_rx) = channel();
            let entries = if link.tx.send(ShardMsg::Tiers { reply: reply_tx }).is_ok() {
                reply_rx.recv().unwrap_or_default()
            } else {
                Vec::new()
            };
            let streams = entries.len();
            let hot =
                entries.iter().filter(|e| matches!(e.tier, crate::shard::TierKind::Hot)).count();
            let cold = streams - hot;
            total_streams += streams;
            total_hot += hot;
            total_cold += cold;
            let enq_m = link.gauge.enqueued_messages.get();
            let pro_m = link.gauge.processed_messages.get();
            let enq_i = link.gauge.enqueued_instances.get();
            let pro_i = link.gauge.processed_instances.get();
            shards.push(ShardHealth {
                shard: index,
                streams,
                hot_streams: hot,
                cold_streams: cold,
                queue_depth: enq_m.saturating_sub(pro_m),
                queued_instances: enq_i.saturating_sub(pro_i),
                processed_instances: pro_i,
            });
        }
        let snapshot = self.inner.metrics.snapshot();
        let ingest = snapshot.merged_histogram("rbm_serve_ingest_latency_seconds");
        let rehydrate = snapshot.merged_histogram("rbm_serve_rehydrate_seconds");
        let last_spill_ns = self.inner.last_spill_ns.load(Ordering::Relaxed);
        let last_spill_age_seconds = if last_spill_ns == u64::MAX {
            -1.0
        } else {
            let now = self.inner.epoch.elapsed().as_nanos() as u64;
            now.saturating_sub(last_spill_ns) as f64 / 1e9
        };
        HealthSnapshot {
            shards,
            streams: total_streams,
            hot_streams: total_hot,
            cold_streams: total_cold,
            ingest_p50_seconds: ingest.quantile(0.5) as f64 / 1e9,
            ingest_p99_seconds: ingest.quantile(0.99) as f64 / 1e9,
            rehydrate_p99_seconds: rehydrate.quantile(0.99) as f64 / 1e9,
            last_spill_age_seconds,
        }
    }

    /// The ids of every currently attached stream, sorted (an inventory
    /// barrier across all shards — takes the control lock, so it cannot
    /// race a resize). The supervisor uses this to keep its per-stream
    /// checkpoint schedule in sync with attaches and detaches.
    pub fn attached_streams(&self) -> Vec<String> {
        let _guard = self.control.lock().expect("control lock poisoned");
        let links: Vec<ShardLink> =
            self.inner.topology.read().expect("topology lock poisoned").shards.clone();
        let mut replies = Vec::with_capacity(links.len());
        for link in &links {
            let (reply_tx, reply_rx) = channel();
            if link.tx.send(ShardMsg::Inventory { reply: reply_tx }).is_ok() {
                replies.push(reply_rx);
            }
        }
        let mut ids: Vec<String> = replies
            .into_iter()
            .filter_map(|rx| rx.recv().ok())
            .flatten()
            .map(|id| id.to_string())
            .collect();
        ids.sort();
        ids
    }

    /// The spec a stream would actually be built with: the attach spec
    /// after deterministic per-stream seed injection (identity when
    /// [`ServeConfig::deterministic_seeding`] is off). Sequential baseline
    /// runs use this to reproduce served results exactly.
    pub fn effective_spec(&self, stream_id: &str, spec: &DetectorSpec) -> DetectorSpec {
        if self.inner.config.deterministic_seeding {
            deterministic_spec(&self.inner.registry, self.inner.config.base_seed, stream_id, spec)
        } else {
            spec.clone()
        }
    }

    /// Attaches a stream under the server's default per-stream
    /// [`RunConfig`] (see [`ServeConfig::run`]) and returns its ingest
    /// client. Fails if the id is already attached or the spec does not
    /// resolve.
    pub fn attach(
        &self,
        stream_id: &str,
        schema: StreamSchema,
        spec: &DetectorSpec,
    ) -> Result<StreamClient, ServeError> {
        self.attach_with(stream_id, schema, spec, self.inner.config.run)
    }

    /// [`ServerHandle::attach`] with a per-stream [`RunConfig`] override
    /// (metric window, micro-batch size, snapshot cadence).
    pub fn attach_with(
        &self,
        stream_id: &str,
        schema: StreamSchema,
        spec: &DetectorSpec,
        run: RunConfig,
    ) -> Result<StreamClient, ServeError> {
        let _guard = self.control.lock().expect("control lock poisoned");
        let spec = self.effective_spec(stream_id, spec);
        let id: Arc<str> = Arc::from(stream_id);
        let (reply_tx, reply_rx) = channel();
        self.inner
            .send_routed(
                stream_id,
                ShardMsg::Attach { id: Arc::clone(&id), schema, spec, run, reply: reply_tx },
            )
            .map_err(|_| ServeError::ShardUnavailable)?;
        reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)??;
        Ok(StreamClient { id, inner: Arc::clone(&self.inner) })
    }

    /// An ingest client for an already-attached stream id (routing is
    /// resolved per send; ingesting through a client for an unattached id
    /// counts into [`ServeReport::dropped_unknown`]).
    pub fn client(&self, stream_id: &str) -> StreamClient {
        StreamClient { id: Arc::from(stream_id), inner: Arc::clone(&self.inner) }
    }

    /// Convenience single-instance ingest by id (interns the id per call;
    /// hot loops should hold a [`StreamClient`]).
    pub fn try_ingest(&self, stream_id: &str, instance: Instance) -> Result<(), IngestError> {
        self.client(stream_id).try_ingest(instance)
    }

    /// Detaches a stream: its trailing micro-batch is flushed (events
    /// included), its pooled workspace reclaimed, and its final summary
    /// returned. Instances of that id still queued behind the detach marker
    /// are dropped (counted in [`ServeReport::dropped_unknown`]).
    pub fn detach(&self, stream_id: &str) -> Result<RunResult, ServeError> {
        let _guard = self.control.lock().expect("control lock poisoned");
        let (reply_tx, reply_rx) = channel();
        self.inner
            .send_routed(stream_id, ShardMsg::Detach { id: Arc::from(stream_id), reply: reply_tx })
            .map_err(|_| ServeError::ShardUnavailable)?;
        reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)?
    }

    /// Captures a non-destructive checkpoint of one attached stream: the
    /// stream keeps serving, and the returned [`StreamCheckpoint`] (JSON-
    /// serializable) resumes it — after a restart, or on another server —
    /// bitwise-identically via [`ServerHandle::restore_stream`]. The
    /// checkpoint reflects every instance ingested before this call that
    /// has been processed; call [`ServerHandle::drain`] first for an
    /// exact up-to-here snapshot.
    pub fn checkpoint_stream(&self, stream_id: &str) -> Result<StreamCheckpoint, ServeError> {
        // Control lock: a concurrent resize could otherwise extract the
        // stream between routing and delivery, turning a checkpoint of a
        // healthy stream into a spurious `UnknownStream`.
        let _guard = self.control.lock().expect("control lock poisoned");
        let (reply_tx, reply_rx) = channel();
        self.inner
            .send_routed(
                stream_id,
                ShardMsg::Checkpoint { id: Arc::from(stream_id), reply: reply_tx },
            )
            .map_err(|_| ServeError::ShardUnavailable)?;
        reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)?
    }

    /// Hibernates one attached stream: its live pipeline state is encoded
    /// to its binary checkpoint (held in memory until the supervisor's
    /// next spill demotes it to disk), its workspace scratch returns to
    /// the shard pool, and the stream stays attached — the next ingest,
    /// checkpoint or detach transparently rehydrates it,
    /// bitwise-identically. Normally the supervisor's
    /// [`TierPolicy`](crate::config::TierPolicy) drives this; the manual
    /// entry point exists for explicit cold-start flows (attach a large
    /// fleet, hibernate the idle tail up front).
    pub fn hibernate_stream(&self, stream_id: &str) -> Result<HibernateOutcome, ServeError> {
        self.hibernate_with(stream_id, None)
    }

    /// [`ServerHandle::hibernate_stream`] with the freshest background
    /// spill of the stream, as `(position, path)`: when the spill position
    /// matches the stream's, the eviction is **clean** — the disk file
    /// becomes the cold handle and no encode happens — and an already-cold
    /// in-memory handle is demoted to the disk file. The supervisor's
    /// tier pass drives this; it is public so external harnesses (the
    /// chaos suites, model-based tests) can drive the full
    /// `Memory → Disk → rehydrate` lifecycle explicitly. Safe against
    /// stale spills: the shard adopts the disk file only when its
    /// position matches the stream's exactly.
    pub fn hibernate_with(
        &self,
        stream_id: &str,
        spill: Option<(u64, PathBuf)>,
    ) -> Result<HibernateOutcome, ServeError> {
        // Control lock: hibernation must not race a resize extracting the
        // same stream (the shard also refuses parked ids, belt-and-braces).
        let _guard = self.control.lock().expect("control lock poisoned");
        let (reply_tx, reply_rx) = channel();
        self.inner
            .send_routed(
                stream_id,
                ShardMsg::Hibernate { id: Arc::from(stream_id), spill, reply: reply_tx },
            )
            .map_err(|_| ServeError::ShardUnavailable)?;
        reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)?
    }

    /// Per-stream tier rows across the whole fleet (id, position, idle
    /// age, tier, resident bytes), sorted by stream id — the supervisor's
    /// tier policy plans its evictions from this, and budget-conscious
    /// callers audit their hot-tier population through it. Control-locked
    /// barrier, like [`ServerHandle::attached_streams`].
    pub fn tier_scan(&self) -> Vec<TierScanEntry> {
        let _guard = self.control.lock().expect("control lock poisoned");
        let links: Vec<ShardLink> =
            self.inner.topology.read().expect("topology lock poisoned").shards.clone();
        let mut replies = Vec::with_capacity(links.len());
        for link in &links {
            let (reply_tx, reply_rx) = channel();
            if link.tx.send(ShardMsg::Tiers { reply: reply_tx }).is_ok() {
                replies.push(reply_rx);
            }
        }
        let mut entries: Vec<TierScanEntry> =
            replies.into_iter().filter_map(|rx| rx.recv().ok()).flatten().collect();
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        entries
    }

    /// Captures non-destructive checkpoints of **every** attached stream,
    /// sorted by stream id. The restart-from-disk flow is
    /// `drain(); checkpoint_all()` → spill via
    /// [`SnapshotSink`](crate::sink::SnapshotSink) → (new process) load →
    /// [`ServerHandle::restore_stream`] each.
    pub fn checkpoint_all(&self) -> Result<Vec<StreamCheckpoint>, ServeError> {
        let _guard = self.control.lock().expect("control lock poisoned");
        let links: Vec<ShardLink> =
            self.inner.topology.read().expect("topology lock poisoned").shards.clone();
        let mut replies = Vec::with_capacity(links.len());
        for link in &links {
            let (reply_tx, reply_rx) = channel();
            link.tx
                .send(ShardMsg::CheckpointAll { reply: reply_tx })
                .map_err(|_| ServeError::ShardUnavailable)?;
            replies.push(reply_rx);
        }
        let mut checkpoints = Vec::new();
        for reply in replies {
            checkpoints.extend(reply.recv().map_err(|_| ServeError::ShardUnavailable)??);
        }
        checkpoints.sort_by(|a, b| a.stream.cmp(&b.stream));
        Ok(checkpoints)
    }

    /// Attaches a stream from a previously captured [`StreamCheckpoint`]:
    /// the pipeline resumes exactly where the checkpoint was taken
    /// (classifier, detector — RBM weights and RNG included — metrics and
    /// the partially filled detector micro-batch all restored bitwise).
    /// Returns the stream's ingest client.
    pub fn restore_stream(
        &self,
        checkpoint: &StreamCheckpoint,
    ) -> Result<StreamClient, ServeError> {
        let _guard = self.control.lock().expect("control lock poisoned");
        let id: Arc<str> = Arc::from(checkpoint.stream.as_str());
        let (reply_tx, reply_rx) = channel();
        self.inner
            .send_routed(
                &checkpoint.stream,
                ShardMsg::Restore {
                    id: Arc::clone(&id),
                    bundle: MigrationBundle {
                        state: BundleState::Hot(checkpoint.checkpoint.clone()),
                        parked: Vec::new(),
                    },
                    kind: RestoreKind::FromDisk,
                    reply: reply_tx,
                },
            )
            .map_err(|_| ServeError::ShardUnavailable)?;
        reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)?.map_err(|f| f.error)?;
        Ok(StreamClient { id, inner: Arc::clone(&self.inner) })
    }

    /// Subscribes to the drift-event bus: the receiver sees every event
    /// published after this call (attach/detach/migration notices,
    /// warnings, drifts with per-class attribution, periodic metric
    /// snapshots, supervisor resize decisions and checkpoint spills).
    pub fn subscribe(&self) -> Receiver<ServeEvent> {
        self.inner.bus.subscribe()
    }

    /// The server's event bus — the supervisor publishes fleet-level
    /// events (resize decisions, checkpoint spills) through it.
    pub(crate) fn bus(&self) -> &Arc<EventBus> {
        &self.inner.bus
    }

    /// Barrier: returns once every ingest message queued before this call
    /// has been fully processed on every shard (channel FIFO order is the
    /// proof). Events for everything ingested so far are on the bus when
    /// this returns.
    pub fn drain(&self) {
        // Control lock: during a resize, a mover's queued ingest sits in
        // park buffers rather than having been stepped, so a concurrent
        // drain would acknowledge a barrier it does not actually provide.
        let _guard = self.control.lock().expect("control lock poisoned");
        let links: Vec<ShardLink> =
            self.inner.topology.read().expect("topology lock poisoned").shards.clone();
        let mut replies = Vec::with_capacity(links.len());
        for link in &links {
            let (reply_tx, reply_rx) = channel();
            if link.tx.send(ShardMsg::Drain { reply: reply_tx }).is_ok() {
                replies.push(reply_rx);
            }
        }
        for reply in replies {
            let _ = reply.recv();
        }
    }

    /// Elastically resizes the shard fleet to `new_count` workers,
    /// **live**: streams keep serving throughout, and only the streams
    /// whose consistent-hash ring ownership changed are migrated. Each
    /// moving stream is parked (its ingest buffered, not dropped),
    /// checkpointed on its old shard, restored on its new shard, and its
    /// buffered ingest replayed in arrival order — so results remain
    /// bitwise-identical to a run that was never resized. Growing spawns
    /// new workers; shrinking drains and retires the removed ones (their
    /// diagnostics counters fold into the final [`ServeReport`]).
    pub fn resize_shards(&self, new_count: usize) -> Result<ResizeReport, ServeError> {
        if new_count == 0 {
            return Err(ServeError::Resize("a server needs at least one shard".into()));
        }
        let _guard = self.control.lock().expect("control lock poisoned");
        let (old_router, old_shards) = {
            let topology = self.inner.topology.read().expect("topology lock poisoned");
            (topology.router.clone(), topology.shards.clone())
        };
        let old_count = old_router.num_shards();
        let mut report =
            ResizeReport { old_shards: old_count, new_shards: new_count, moved: Vec::new() };
        if new_count == old_count {
            return Ok(report);
        }

        // New topology: surviving channels keep their slots; added slots
        // get fresh workers (spawned now, receiving traffic only after the
        // swap).
        let new_router = StreamRouter::new(new_count);
        let mut new_shards: Vec<ShardLink> = old_shards.iter().take(new_count).cloned().collect();
        for index in old_count..new_count {
            let (link, join) = spawn_worker(
                index,
                &self.inner.registry,
                &self.inner.bus,
                &self.inner.metrics,
                self.inner.config.queue_capacity,
                &self.inner.faults,
            );
            new_shards.push(link);
            self.joins.lock().expect("joins lock poisoned").insert(index, join);
        }

        // Plan: inventory every old shard and keep the streams whose ring
        // owner changes.
        let mut moving: Vec<(Arc<str>, usize, usize)> = Vec::new();
        for (shard, link) in old_shards.iter().enumerate() {
            let (reply_tx, reply_rx) = channel();
            link.tx
                .send(ShardMsg::Inventory { reply: reply_tx })
                .map_err(|_| ServeError::ShardUnavailable)?;
            for id in reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)? {
                let to = new_router.shard_of(&id);
                if to != shard {
                    moving.push((id, shard, to));
                }
            }
        }
        moving.sort_by(|a, b| a.0.cmp(&b.0));

        // Resize phases are cold-path control operations, so their timings
        // are always recorded (no RBM_OBS gate): one histogram sample per
        // phase plus a trace span covering the same interval.
        let record_phase = |phase: &str, started: Instant| {
            let dur_ns = started.elapsed().as_nanos() as u64;
            self.inner
                .metrics
                .histogram("rbm_serve_resize_seconds", &[("phase", phase)])
                .record(dur_ns);
            let end_ns = self.inner.tracer.now_ns();
            self.inner.tracer.record(
                &format!("resize.{phase}"),
                &format!("{old_count}->{new_count}"),
                end_ns.saturating_sub(dur_ns),
                dur_ns,
            );
        };

        // Park the movers at their sources (freezes their state while
        // buffering — not dropping — their ingest) and at their targets
        // (catches instances routed there after the swap but before the
        // state arrives). Both parks are enqueued before the swap, so FIFO
        // ordering makes them effective before any rerouted ingest.
        let park_started = Instant::now();
        let mut by_source: HashMap<usize, Vec<Arc<str>>> = HashMap::new();
        let mut by_target: HashMap<usize, Vec<Arc<str>>> = HashMap::new();
        for (id, from, to) in &moving {
            by_source.entry(*from).or_default().push(Arc::clone(id));
            by_target.entry(*to).or_default().push(Arc::clone(id));
        }
        for (shard, ids) in &by_source {
            park(&old_shards[*shard].tx, ids.clone())?;
        }
        for (shard, ids) in &by_target {
            park(&new_shards[*shard].tx, ids.clone())?;
        }
        record_phase("park", park_started);

        // Extract every mover's state (checkpoint + ingest parked so far).
        // FIFO guarantees everything ingested before the park is in the
        // checkpoint; everything after is in the park buffer.
        let extract_started = Instant::now();
        let mut bundles: Vec<(Arc<str>, usize, usize, MigrationBundle)> =
            Vec::with_capacity(moving.len());
        let mut failure: Option<ServeError> = None;
        for (id, from, to) in &moving {
            let (reply_tx, reply_rx) = channel();
            if old_shards[*from]
                .tx
                .send(ShardMsg::Extract { id: Arc::clone(id), reply: reply_tx })
                .is_err()
            {
                failure = Some(ServeError::ShardUnavailable);
                break;
            }
            match reply_rx.recv() {
                Ok(Ok(bundle)) => bundles.push((Arc::clone(id), *from, *to, bundle)),
                Ok(Err(e)) => {
                    failure = Some(e);
                    break;
                }
                Err(_) => {
                    failure = Some(ServeError::ShardUnavailable);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            // Abort: put every extracted stream back on its source, then
            // unpark everything (sources replay their buffers in place;
            // targets received no traffic yet). The added workers are
            // retired. Topology was never swapped, so service continues on
            // the old fleet.
            for (id, from, _to, bundle) in bundles {
                let (reply_tx, reply_rx) = channel();
                let _ = old_shards[from].tx.send(ShardMsg::Restore {
                    id,
                    bundle,
                    kind: RestoreKind::Reinstate,
                    reply: reply_tx,
                });
                let _ = reply_rx.recv();
            }
            for (shard, ids) in &by_source {
                for id in ids {
                    let (reply_tx, reply_rx) = channel();
                    let _ = old_shards[*shard]
                        .tx
                        .send(ShardMsg::Unpark { id: Arc::clone(id), reply: reply_tx });
                    let _ = reply_rx.recv();
                }
            }
            // The targets' pre-emptive park entries never saw traffic (the
            // topology was not swapped), but they must still be closed or
            // they would linger as dead state on surviving shards.
            for (shard, ids) in &by_target {
                for id in ids {
                    let (reply_tx, reply_rx) = channel();
                    let _ = new_shards[*shard]
                        .tx
                        .send(ShardMsg::Unpark { id: Arc::clone(id), reply: reply_tx });
                    let _ = reply_rx.recv();
                }
            }
            for (index, link) in new_shards.iter().enumerate().skip(old_count) {
                let _ = link.tx.send(ShardMsg::Shutdown);
                if let Some(join) = self.joins.lock().expect("joins lock poisoned").remove(&index) {
                    let _ = join.join();
                }
            }
            return Err(e);
        }
        record_phase("extract", extract_started);

        // Swap the topology. Ingest holds the read lock across each send,
        // so after this write section every new send resolves against the
        // new ring; everything sent before is already in a source queue
        // behind that source's park marker.
        {
            let mut topology = self.inner.topology.write().expect("topology lock poisoned");
            topology.router = new_router;
            topology.shards = new_shards.clone();
        }

        // Complete each migration: collect the stragglers that reached the
        // source after the extract, then restore on the target — state
        // first, then the source-parked instances, then the target's own
        // park buffer, preserving arrival order end to end. A failure for
        // one stream (a panicked worker, a corrupt restore) must not strand
        // the remaining movers mid-flight: every bundle is still driven to
        // completion, the failed stream's target park entry is closed (so
        // subsequent ingest is dropped-and-counted rather than buffered
        // forever), and the first error is reported after the sweep.
        let restore_started = Instant::now();
        let mut first_error: Option<ServeError> = None;
        for (id, from, to, mut bundle) in bundles {
            // Stragglers that reached the source after the extract.
            let (reply_tx, reply_rx) = channel();
            let stragglers = if old_shards[from]
                .tx
                .send(ShardMsg::Unpark { id: Arc::clone(&id), reply: reply_tx })
                .is_ok()
            {
                reply_rx.recv().ok()
            } else {
                None
            };
            let Some(stragglers) = stragglers else {
                // Source worker gone (panicked): the state is unrecoverable;
                // at least close the target's park entry so future ingest is
                // dropped-and-counted rather than buffered invisibly.
                close_park(&new_shards[to].tx, &id);
                first_error.get_or_insert(ServeError::ShardUnavailable);
                continue;
            };
            bundle.parked.extend(stragglers);

            let (reply_tx, reply_rx) = channel();
            let outcome = match new_shards[to].tx.send(ShardMsg::Restore {
                id: Arc::clone(&id),
                bundle,
                kind: RestoreKind::Migration { from_shard: from },
                reply: reply_tx,
            }) {
                Err(send_error) => {
                    // The bundle rides back inside the bounced message.
                    let bundle = match send_error.0 {
                        ShardMsg::Restore { bundle, .. } => Some(Box::new(bundle)),
                        _ => None,
                    };
                    Err(crate::shard::RestoreFailure {
                        error: ServeError::ShardUnavailable,
                        bundle,
                    })
                }
                Ok(()) => reply_rx.recv().unwrap_or(Err(crate::shard::RestoreFailure {
                    error: ServeError::ShardUnavailable,
                    bundle: None,
                })),
            };
            match outcome {
                Ok(()) => report.moved.push(MigratedStream { stream: id.to_string(), from, to }),
                Err(failure) => {
                    // Close the target's park entry so its future ingest
                    // surfaces as `dropped_unknown` instead of accumulating
                    // invisibly, then salvage the learned state by
                    // reinstating the stream on its source: a retiring
                    // source (shrink) finalizes it into the shutdown
                    // report; a surviving source keeps it queryable even
                    // though new ingest now routes to the target.
                    close_park(&new_shards[to].tx, &id);
                    if let Some(bundle) = failure.bundle {
                        let (reply_tx, reply_rx) = channel();
                        if old_shards[from]
                            .tx
                            .send(ShardMsg::Restore {
                                id: Arc::clone(&id),
                                bundle: *bundle,
                                kind: RestoreKind::Reinstate,
                                reply: reply_tx,
                            })
                            .is_ok()
                        {
                            let _ = reply_rx.recv();
                        }
                    }
                    first_error.get_or_insert(failure.error);
                }
            }
        }
        record_phase("restore", restore_started);
        if let Some(e) = first_error {
            return Err(e);
        }

        // Shrink: the removed shards now own no streams (ring ownership of
        // every stream they held moved by construction); retire them and
        // keep their counters for the final report.
        let retire_started = Instant::now();
        for (index, link) in old_shards.iter().enumerate().skip(new_count) {
            let _ = link.tx.send(ShardMsg::Shutdown);
            if let Some(join) = self.joins.lock().expect("joins lock poisoned").remove(&index) {
                let mut retired = self.retired.lock().expect("retired lock poisoned");
                match join.join() {
                    Ok(shard_report) => {
                        // Normally empty; holds salvaged streams reinstated
                        // after a failed migration.
                        retired.summaries.extend(shard_report.summaries);
                        retired.dropped_unknown += shard_report.dropped_unknown;
                        retired.workspace_reuse_hits += shard_report.workspace_reuse_hits;
                        retired.workspace_reuse_misses += shard_report.workspace_reuse_misses;
                    }
                    Err(_) => retired.panicked_shards += 1,
                }
            }
        }
        if new_count < old_count {
            record_phase("retire", retire_started);
        }
        Ok(report)
    }

    /// Replaces a **dead** (panicked) shard worker with a fresh one on
    /// the same slot: the dead handle is joined (folding its panic into
    /// [`ServeReport::panicked_shards`]), a new worker with an empty
    /// stream map takes over the slot's channel, and the slot's queue
    /// gauges are re-zeroed (messages enqueued to the dead worker were
    /// lost with its queue and will never be processed).
    ///
    /// The streams the dead worker owned are **not** restored here — the
    /// caller recovers them explicitly, e.g. via
    /// [`ServerHandle::restore_stream`] from their latest spills (plus a
    /// replay of the post-checkpoint tail), or a fresh
    /// [`ServerHandle::attach`] and a replay from zero. Refuses to touch
    /// a slot whose worker is still alive.
    pub fn revive_shard(&self, index: usize) -> Result<(), ServeError> {
        let _guard = self.control.lock().expect("control lock poisoned");
        let mut joins = self.joins.lock().expect("joins lock poisoned");
        let Some(join) = joins.get(&index) else {
            return Err(ServeError::Resize(format!("no shard slot {index}")));
        };
        if !join.is_finished() {
            return Err(ServeError::Resize(format!("shard {index} is still alive")));
        }
        let join = joins.remove(&index).expect("handle checked present above");
        {
            let mut retired = self.retired.lock().expect("retired lock poisoned");
            match join.join() {
                // A worker that exited cleanly (every sender gone) still
                // reported; keep its diagnostics like a retired shard's.
                Ok(report) => {
                    retired.summaries.extend(report.summaries);
                    retired.dropped_unknown += report.dropped_unknown;
                    retired.workspace_reuse_hits += report.workspace_reuse_hits;
                    retired.workspace_reuse_misses += report.workspace_reuse_misses;
                }
                Err(_) => retired.panicked_shards += 1,
            }
        }
        let (link, new_join) = spawn_worker(
            index,
            &self.inner.registry,
            &self.inner.bus,
            &self.inner.metrics,
            self.inner.config.queue_capacity,
            &self.inner.faults,
        );
        joins.insert(index, new_join);
        let mut topology = self.inner.topology.write().expect("topology lock poisoned");
        if index >= topology.shards.len() {
            return Err(ServeError::Resize(format!("shard slot {index} left the topology")));
        }
        // Re-zero the slot's queue depth under the write lock (no send can
        // be in flight — `try_send_routed` holds the read lock across
        // send + gauge): whatever the dead queue still held is marked
        // processed so `enqueued − processed` reads 0 for the new worker.
        let gauge = &topology.shards[index].gauge;
        let lost_messages =
            gauge.enqueued_messages.get().saturating_sub(gauge.processed_messages.get());
        let lost_instances =
            gauge.enqueued_instances.get().saturating_sub(gauge.processed_instances.get());
        gauge.processed_messages.add(lost_messages);
        gauge.processed_instances.add(lost_instances);
        topology.shards[index] = link;
        Ok(())
    }

    /// Graceful shutdown: each shard processes everything already queued,
    /// finalizes its remaining streams (flushing trailing micro-batches,
    /// publishing their `Detached` events) and exits. Returns the merged
    /// per-stream report, sorted by stream id.
    pub fn shutdown(self) -> ServeReport {
        {
            let _guard = self.control.lock().expect("control lock poisoned");
            let topology = self.inner.topology.read().expect("topology lock poisoned");
            for link in &topology.shards {
                let _ = link.tx.send(ShardMsg::Shutdown);
            }
        }
        let retired = self.retired.into_inner().expect("retired lock poisoned");
        let mut report = ServeReport {
            streams: retired.summaries,
            dropped_unknown: retired.dropped_unknown,
            frames_dropped: 0,
            frames_dropped_by: FrameDropBreakdown::default(),
            workspace_reuse_hits: retired.workspace_reuse_hits,
            workspace_reuse_misses: retired.workspace_reuse_misses,
            panicked_shards: retired.panicked_shards,
        };
        let joins = self.joins.into_inner().expect("joins lock poisoned");
        let mut joins: Vec<(usize, JoinHandle<ShardReport>)> = joins.into_iter().collect();
        joins.sort_by_key(|(index, _)| *index);
        for (_, join) in joins {
            match join.join() {
                Ok(shard_report) => {
                    report.streams.extend(shard_report.summaries);
                    report.dropped_unknown += shard_report.dropped_unknown;
                    report.workspace_reuse_hits += shard_report.workspace_reuse_hits;
                    report.workspace_reuse_misses += shard_report.workspace_reuse_misses;
                }
                Err(_) => {
                    // A panicked shard loses its streams' summaries; the
                    // remaining shards still report, and the loss is
                    // surfaced via `panicked_shards`.
                    report.panicked_shards += 1;
                }
            }
        }
        report.streams.sort_by(|a, b| a.stream.cmp(&b.stream));
        // Disconnect bus subscribers: lingering `StreamClient`s keep the
        // server internals (bus included) alive, so subscriber loops would
        // otherwise never see end-of-stream.
        self.inner.bus.close();
        report
    }
}

impl fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerHandle")
            .field("num_shards", &self.num_shards())
            .field("queue_capacity", &self.inner.config.queue_capacity)
            .finish()
    }
}

/// Spawns one shard worker thread with its bounded ingest channel and a
/// fresh load gauge.
fn spawn_worker(
    index: usize,
    registry: &Arc<DetectorRegistry>,
    bus: &Arc<EventBus>,
    metrics: &Arc<MetricsRegistry>,
    queue_capacity: usize,
    faults: &Option<Arc<FaultPlane>>,
) -> (ShardLink, JoinHandle<ShardReport>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(queue_capacity);
    // Re-grown slots rebind the *same* registry counters (get-or-register
    // by id), so per-slot totals stay monotone across resizes.
    let gauge = Arc::new(ShardGauge::for_shard(metrics, index));
    let worker = ShardWorker::new(
        index,
        Arc::clone(registry),
        Arc::clone(bus),
        Arc::clone(&gauge),
        Arc::clone(metrics),
        faults.clone(),
    );
    let join = std::thread::Builder::new()
        .name(format!("rbm-serve-shard-{index}"))
        .spawn(move || worker.run(rx))
        .expect("failed to spawn shard worker");
    (ShardLink { tx, gauge }, join)
}

/// Parks `ids` on a shard and waits for the acknowledgement.
fn park(tx: &SyncSender<ShardMsg>, ids: Vec<Arc<str>>) -> Result<(), ServeError> {
    let (reply_tx, reply_rx) = channel();
    tx.send(ShardMsg::Park { ids, reply: reply_tx }).map_err(|_| ServeError::ShardUnavailable)?;
    reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)
}

/// Closes a park entry on a shard (best effort), discarding whatever it
/// buffered — used when a migration's state is unrecoverable, so future
/// ingest for the id surfaces as `dropped_unknown` instead of buffering
/// forever.
fn close_park(tx: &SyncSender<ShardMsg>, id: &Arc<str>) {
    let (reply_tx, reply_rx) = channel();
    if tx.send(ShardMsg::Unpark { id: Arc::clone(id), reply: reply_tx }).is_ok() {
        let _ = reply_rx.recv();
    }
}
