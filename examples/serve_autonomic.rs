//! An autonomic serving fleet: background checkpointing + load-based
//! auto-resize + crash recovery, end to end.
//!
//! Thirty-two drifting feeds are served on a deliberately undersized
//! 2-shard fleet while a [`Supervisor`] (a) spills every stream's
//! checkpoint in the compact binary codec on a jittered per-stream
//! schedule — urgently whenever a stream drifts — and (b) watches the
//! shards' queue gauges, growing the fleet live when backlog builds and
//! shrinking it when the burst passes. Midway the process "crashes": the
//! server is torn down without a final checkpoint, a fresh server cold-
//! starts from whatever the latest background spills were, replays each
//! stream's tail from its recorded position, and finishes with results
//! bitwise-identical to a run that was never interrupted.
//!
//! Run with:
//! `cargo run -p rbm-im-serve --release --example serve_autonomic`

use rbm_im_harness::registry::DetectorSpec;
use rbm_im_obs::{MetricsRegistry, ObsServer};
use rbm_im_serve::{
    CheckpointPolicy, HysteresisResizePolicy, ResizeConfig, ServeConfig, ServeEventKind,
    ServerHandle, SnapshotSink, StreamClient, Supervisor, SupervisorConfig,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, StreamExt, StreamSchema};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FEEDS: usize = 32;
const INSTANCES_PER_FEED: usize = 3_000;
const CRASH_AT: usize = 1_800;

/// A recorded drifting feed (concept A, then a regenerated concept B).
fn record_feed(i: usize) -> (String, StreamSchema, Vec<Instance>) {
    let mut gen = RandomRbfGenerator::new(10, 4, 2, 0.0, 7_000 + i as u64);
    let schema = gen.schema().clone();
    let mut instances = gen.take_instances(INSTANCES_PER_FEED / 2);
    gen.regenerate();
    instances.extend(gen.take_instances(INSTANCES_PER_FEED / 2));
    (format!("feed-{i:02}"), schema, instances)
}

fn ingest_all(client: &StreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(e) => {
                batch = e.into_rejected();
                std::thread::yield_now();
            }
        }
    }
}

fn supervisor_config() -> SupervisorConfig {
    SupervisorConfig {
        tick: Duration::from_millis(10),
        checkpoint: Some(CheckpointPolicy {
            every: Duration::from_millis(50),
            jitter: 0.5,
            on_drift: true,
        }),
        resize: Some(ResizeConfig {
            min_shards: 1,
            max_shards: 8,
            cooldown: Duration::from_millis(60),
            policy: Box::new(HysteresisResizePolicy::new(64.0, 4.0, 0.5)),
        }),
        tier: None,
    }
}

/// Formats a `_seconds` histogram quantile (recorded in integer ns) for
/// display; "-" when the histogram is empty.
fn quantile_ms(metrics: &MetricsRegistry, family: &str, q: f64) -> String {
    let hist = metrics.snapshot().merged_histogram(family);
    if hist.count() == 0 {
        "-".to_string()
    } else {
        format!("{:.3}ms", hist.quantile(q) as f64 / 1e6)
    }
}

fn main() {
    let start = Instant::now();
    // Turn the telemetry plane on for the demo (equivalent to RBM_OBS=on):
    // results are untouched, but latency histograms fill in.
    rbm_im_obs::force_enabled(true);
    let spill_dir = std::env::temp_dir().join(format!("rbm-autonomic-{}", std::process::id()));
    let feeds: Vec<_> = (0..FEEDS).map(record_feed).collect();
    let spec = DetectorSpec::parse("rbm(minibatch=25, warmup=4, persistence=1)").unwrap();

    // ---- Phase 1: supervised serving, then a "crash" ---------------------
    println!("phase 1: serving {FEEDS} feeds on 2 shards with an autonomic supervisor");
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 2,
        queue_capacity: 64,
        ..Default::default()
    }));
    let events = server.subscribe();
    // Prometheus-text scrape endpoint over the fleet's metrics registry:
    // `curl` it any time while phase 1 runs.
    let obs = ObsServer::serve("127.0.0.1:0", vec![server.metrics()]).expect("scrape listener");
    println!("  scrape endpoint live at http://{}/metrics", obs.local_addr());
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&spill_dir).expect("spill dir"),
        supervisor_config(),
    );

    // Feed the head concurrently so real backlog builds on the small fleet.
    std::thread::scope(|scope| {
        for (id, schema, instances) in &feeds {
            let client = server.attach(id, schema.clone(), &spec).unwrap();
            scope.spawn(move || {
                for chunk in instances[..CRASH_AT].chunks(50) {
                    ingest_all(&client, chunk.to_vec());
                }
            });
        }
    });
    server.drain();
    // Linger long enough for every stream's jittered spill to land.
    std::thread::sleep(Duration::from_millis(200));

    let report = supervisor.stop();
    if !report.errors.is_empty() {
        eprintln!("  supervisor errors: {:?}", report.errors);
    }
    let mut grew = 0usize;
    let mut shrank = 0usize;
    for r in &report.resizes {
        if r.new_shards > r.old_shards {
            grew += 1;
        } else {
            shrank += 1;
        }
    }
    println!(
        "  supervisor: {} periodic + {} urgent spills, {} resizes ({grew} up, {shrank} down), \
         fleet now {} shards",
        report.periodic_spills,
        report.urgent_spills,
        report.resizes.len(),
        server.num_shards()
    );
    let drifts =
        events.try_iter().filter(|e| matches!(e.kind, ServeEventKind::Drift { .. })).count();
    println!("  bus: {drifts} drift events so far");
    let metrics = server.metrics();
    println!(
        "  telemetry: ingest p50 {} / p99 {}, spill p50 {}",
        quantile_ms(&metrics, "rbm_serve_ingest_latency_seconds", 0.5),
        quantile_ms(&metrics, "rbm_serve_ingest_latency_seconds", 0.99),
        quantile_ms(&metrics, "rbm_supervisor_spill_seconds", 0.5),
    );
    obs.shutdown();
    // CRASH: no drain, no graceful checkpoint — drop everything.
    drop(Arc::try_unwrap(server).expect("supervisor stopped").shutdown());

    // ---- Phase 2: cold restart from the background spills ----------------
    let sink = SnapshotSink::new(&spill_dir).expect("spill dir");
    let checkpoints = sink.load_checkpoints().expect("load spills");
    println!("phase 2: cold restart — {} binary spills found, replaying tails", checkpoints.len());
    let server = ServerHandle::start(ServeConfig {
        num_shards: 4, // a different fleet shape; results cannot care
        queue_capacity: 64,
        ..Default::default()
    });
    for checkpoint in &checkpoints {
        let (_, _, instances) =
            feeds.iter().find(|(id, _, _)| *id == checkpoint.stream).expect("known feed");
        let position = checkpoint.checkpoint.processed().expect("resume position") as usize;
        let client = server.restore_stream(checkpoint).expect("restore");
        ingest_all(&client, instances[position..].to_vec());
    }
    server.drain();
    let metrics = server.metrics();
    println!(
        "  telemetry: replay ingest p50 {} / p99 {}",
        quantile_ms(&metrics, "rbm_serve_ingest_latency_seconds", 0.5),
        quantile_ms(&metrics, "rbm_serve_ingest_latency_seconds", 0.99),
    );
    let report = server.shutdown();

    let total: u64 = report.streams.iter().map(|s| s.result.instances).sum();
    let detected = report.streams.iter().filter(|s| !s.result.detections.is_empty()).count();
    let mean_auc: f64 =
        report.streams.iter().map(|s| s.result.pm_auc).sum::<f64>() / report.streams.len() as f64;
    println!(
        "done: {} streams finished ({total} instances end-to-end), {detected}/{} detected their \
         drift, mean pmAUC {mean_auc:.2}%, wall {:?}",
        report.streams.len(),
        FEEDS,
        start.elapsed()
    );
    let _ = std::fs::remove_dir_all(&spill_dir);
}
