//! Regenerates Fig. 9: pmAUC as a function of the multi-class imbalance
//! ratio (50 … 500), for every detector.
//!
//! Usage:
//! ```text
//! cargo run -p rbm-im-harness --release --bin experiment3 -- \
//!     [--classes M] [--features D] [--length N] [--seed S] [--ratios 50,100,200] [--json out.json]
//! ```

use rbm_im_harness::experiment3::{run_experiment3, Experiment3Config};
use rbm_im_harness::report::{format_fig9, to_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = Experiment3Config::default();
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--classes" => {
                config.num_classes = args[i + 1].parse().expect("--classes needs an integer");
                i += 2;
            }
            "--features" => {
                config.num_features = args[i + 1].parse().expect("--features needs an integer");
                i += 2;
            }
            "--length" => {
                config.length = args[i + 1].parse().expect("--length needs an integer");
                i += 2;
            }
            "--seed" => {
                config.seed = args[i + 1].parse().expect("--seed needs an integer");
                i += 2;
            }
            "--ratios" => {
                config.imbalance_ratios = args[i + 1]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--ratios needs numbers"))
                    .collect();
                i += 2;
            }
            "--json" => {
                json_path = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "Experiment 3 (imbalance robustness): {} classes, ratios {:?}, {} instances",
        config.num_classes, config.imbalance_ratios, config.length
    );
    let result = run_experiment3(&config, |ir, r| {
        eprintln!(
            "  IR={ir:<6} {:<10} pmAUC {:6.2}  drifts {:4}",
            r.detector,
            r.pm_auc,
            r.drift_count()
        );
    });
    println!("{}", format_fig9(&result));
    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&result.points)).expect("failed to write JSON results");
        eprintln!("wrote raw results to {path}");
    }
}
