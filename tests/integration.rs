//! Cross-crate integration tests: streams → classifiers → detectors →
//! metrics → harness, exercised together the way the experiment binaries use
//! them. Kept deliberately small (a few thousand instances per test) so the
//! whole suite stays fast.

use rbm_im::RbmIm;
use rbm_im_detectors::DriftDetector;
use rbm_im_harness::detectors::DetectorKind;
use rbm_im_harness::experiment1::{run_experiment1, BuildConfigSerde, Experiment1Config};
use rbm_im_harness::experiment2::{run_experiment2, Experiment2Config};
use rbm_im_harness::experiment3::{run_experiment3, Experiment3Config};
use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig};
use rbm_im_harness::report::{format_fig8, format_fig9, format_table3};
use rbm_im_metrics::evaluate_detections;
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::registry::{all_benchmarks, benchmark_by_name, BuildConfig};
use rbm_im_streams::scenarios::{scenario3, ScenarioConfig};
use rbm_im_streams::{DataStream, StreamExt};

#[test]
fn registry_streams_feed_the_full_pipeline() {
    // A real-world substitute and an artificial benchmark, run end-to-end
    // through the pipeline with two detectors each.
    let build = BuildConfig { scale_divisor: 500, seed: 11, n_drifts: 1, dynamic_imbalance: true };
    let run = RunConfig { metric_window: 500, max_instances: Some(2_000), ..Default::default() };
    for name in ["Electricity", "RBF5"] {
        let spec = benchmark_by_name(name).unwrap();
        for detector in [DetectorKind::RbmIm, DetectorKind::PerfSim] {
            let result = PipelineBuilder::new()
                .boxed_stream(spec.build(&build))
                .detector_spec(detector.spec())
                .config(run)
                .run()
                .unwrap();
            assert!(result.instances > 0, "{name}/{detector:?} processed nothing");
            assert!(result.pm_auc.is_finite());
            assert!(result.pm_gmean.is_finite());
        }
    }
}

#[test]
fn every_benchmark_in_the_registry_builds_and_emits() {
    let build =
        BuildConfig { scale_divisor: 2_000, seed: 3, n_drifts: 1, dynamic_imbalance: false };
    for spec in all_benchmarks() {
        let mut stream = spec.build(&build);
        let sample = stream.take_instances(300);
        assert!(!sample.is_empty(), "{} emitted nothing", spec.name);
        assert_eq!(sample[0].num_features(), spec.features, "{}", spec.name);
    }
}

#[test]
fn experiment1_pipeline_produces_table_and_ranks() {
    let config = Experiment1Config {
        detectors: vec![DetectorKind::Fhddm, DetectorKind::DdmOci, DetectorKind::RbmIm],
        build: BuildConfigSerde {
            seed: 5,
            scale_divisor: 500,
            n_drifts: 1,
            dynamic_imbalance: true,
        },
        run: RunConfig { metric_window: 400, max_instances: Some(2_000), ..Default::default() },
        benchmarks: vec!["RBF5".into(), "Hyperplane5".into(), "Poker".into()],
    };
    let result = run_experiment1(&config, |_| {});
    assert_eq!(result.runs.len(), 9);
    let table = format_table3(&result, "pmAUC");
    assert!(table.contains("RBM-IM") && table.contains("Poker"));
    let friedman = result.friedman_pm_auc().unwrap();
    assert_eq!(friedman.average_ranks.len(), 3);
    let bayes = result.bayesian_vs(DetectorKind::DdmOci, 1.0, 2_000, 1).unwrap();
    assert!((bayes.p_left + bayes.p_rope + bayes.p_right - 1.0).abs() < 1e-9);
}

#[test]
fn experiment2_and_3_pipelines_produce_series() {
    let e2 = Experiment2Config {
        detectors: vec![DetectorKind::RbmIm, DetectorKind::Rddm],
        num_features: 8,
        num_classes: 4,
        length: 3_000,
        imbalance_ratio: 20.0,
        n_drifts: 1,
        seed: 9,
        classes_with_drift: vec![1, 4],
        run: RunConfig { metric_window: 400, ..Default::default() },
    };
    let r2 = run_experiment2(&e2, |_, _| {});
    assert_eq!(r2.points.len(), 2);
    assert!(format_fig8(&r2).contains("classes drift"));

    let e3 = Experiment3Config {
        detectors: vec![DetectorKind::RbmIm, DetectorKind::Rddm],
        num_features: 8,
        num_classes: 4,
        length: 3_000,
        imbalance_ratios: vec![20.0, 100.0],
        n_drifts: 1,
        seed: 9,
        run: RunConfig { metric_window: 400, ..Default::default() },
    };
    let r3 = run_experiment3(&e3, |_, _| {});
    assert_eq!(r3.points.len(), 2);
    assert!(format_fig9(&r3).contains("IR = 20"));
}

#[test]
fn rbm_im_detects_scenario3_local_drift_end_to_end() {
    // Scenario 3 with a single drifting minority class; RBM-IM standalone
    // (no classifier in the loop) must catch at least one of the injected
    // local drifts within a generous horizon.
    let config = ScenarioConfig {
        num_features: 10,
        num_classes: 5,
        length: 20_000,
        imbalance_ratio: 25.0,
        n_drifts: 2,
        drift_kind: DriftKind::Sudden,
        seed: 31,
    };
    let mut scenario = scenario3(&config, 1);
    let mut detector = RbmIm::with_defaults(10, 5);
    let mut alarms = Vec::new();
    while let Some(instance) = scenario.stream.next_instance() {
        if detector.observe_instance(&instance).is_drift() {
            alarms.push(instance.index);
        }
    }
    let quality = evaluate_detections(&scenario.drift_positions, &alarms, 6_000);
    assert!(
        quality.detected >= 1,
        "RBM-IM should catch at least one local drift (positions {:?}, alarms {:?})",
        scenario.drift_positions,
        alarms
    );
}

#[test]
fn skew_insensitive_detectors_outrank_standard_ones_on_imbalanced_drift() {
    // A compact version of the paper's headline claim (RQ1/RQ2): on a
    // drifting, highly imbalanced multi-class stream the classifier driven
    // by RBM-IM should not be worse than the one driven by a standard
    // error-rate detector.
    let config = ScenarioConfig {
        num_features: 10,
        num_classes: 5,
        length: 12_000,
        imbalance_ratio: 50.0,
        n_drifts: 2,
        drift_kind: DriftKind::Sudden,
        seed: 17,
    };
    let run = RunConfig { metric_window: 800, ..Default::default() };
    let rbm = PipelineBuilder::new()
        .boxed_stream(scenario3(&config, 2).stream)
        .detector_spec(DetectorKind::RbmIm.spec())
        .config(run)
        .run()
        .unwrap();
    let standard = PipelineBuilder::new()
        .boxed_stream(scenario3(&config, 2).stream)
        .detector_spec(DetectorKind::Fhddm.spec())
        .config(run)
        .run()
        .unwrap();
    // On short scaled-down streams the classifier reset triggered by a
    // (correct) detection temporarily costs a few pmGM points, so the margin
    // here is deliberately generous; the full-length comparison is the job
    // of the experiment1 binary.
    assert!(
        rbm.pm_gmean >= standard.pm_gmean - 12.0,
        "RBM-IM-driven pmGM ({:.2}) should not trail the standard detector ({:.2}) materially",
        rbm.pm_gmean,
        standard.pm_gmean
    );
    assert!(rbm.pm_auc.is_finite() && standard.pm_auc.is_finite());
}

#[test]
fn boxed_detectors_share_one_interface() {
    // The harness stores detectors as trait objects; make sure every paper
    // detector works through that interface on a real stream slice.
    let spec = benchmark_by_name("RBF5").unwrap();
    let build =
        BuildConfig { scale_divisor: 1_000, seed: 2, n_drifts: 1, dynamic_imbalance: false };
    let mut stream = spec.build(&build);
    let instances = stream.take_instances(600);
    for kind in DetectorKind::paper_detectors() {
        let mut detector = kind.build(spec.features, spec.classes);
        for inst in &instances {
            let obs = rbm_im_detectors::Observation::new(&inst.features, inst.class, inst.class);
            detector.update(&obs);
        }
        assert_eq!(detector.name(), kind.name());
    }
}
