//! `net_throughput`: the TCP wire front-end's serving throughput versus
//! the in-process `StreamClient` path it wraps.
//!
//! 16 concurrent drifting streams are pumped to completion over loopback
//! TCP (4 client connections, micro-batches of 50, blocking backpressure
//! mapped from `Busy` replies) and, as the baseline, through in-process
//! `StreamClient`s against an identical fleet. One iteration measures
//! bind/start → attach → ingest → drain → shutdown, so the delta between
//! the two groups is the wire cost: framing, serialization and loopback
//! syscalls. `BENCH_net.json` records the measured baseline (single-core
//! runner — see the caveat there).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_net::{NetClient, NetServer};
use rbm_im_serve::{ServeConfig, ServerHandle};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, StreamExt, StreamSchema};

const STREAMS: usize = 16;
const INSTANCES_PER_STREAM: usize = 400;
const CONNECTIONS: usize = 4;
const CHUNK: usize = 50;

/// Pre-recorded drifting feeds so iterations measure serving, not
/// generation.
fn record_feeds() -> Vec<(String, StreamSchema, Vec<Instance>)> {
    (0..STREAMS)
        .map(|i| {
            let mut gen = RandomRbfGenerator::new(10, 4, 2, 0.0, 1700 + i as u64);
            let schema = gen.schema().clone();
            let mut instances = gen.take_instances(INSTANCES_PER_STREAM / 2);
            gen.regenerate();
            instances.extend(gen.take_instances(INSTANCES_PER_STREAM / 2));
            (format!("feed-{i:02}"), schema, instances)
        })
        .collect()
}

fn config(shards: usize) -> ServeConfig {
    ServeConfig { num_shards: shards, queue_capacity: 256, ..Default::default() }
}

fn bench_net_throughput(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let feeds = record_feeds();
    let spec = DetectorSpec::parse("rbm(minibatch=25, warmup=4)").unwrap();
    let total = (STREAMS * INSTANCES_PER_STREAM) as u64;

    let mut group = c.benchmark_group("net_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("tcp_loopback", format!("{shards}shards")),
            &(),
            |b, _| {
                b.iter(|| {
                    let server = NetServer::bind("127.0.0.1:0", config(shards)).unwrap();
                    let control = NetClient::connect(server.local_addr()).unwrap();
                    for (id, schema, _) in &feeds {
                        control.attach(id, schema.clone(), &spec).unwrap();
                    }
                    // Each connection serves an interleaved slice of feeds.
                    std::thread::scope(|scope| {
                        for worker in 0..CONNECTIONS {
                            let feeds = &feeds;
                            let addr = server.local_addr();
                            scope.spawn(move || {
                                let conn = NetClient::connect(addr).unwrap();
                                for (id, _, instances) in
                                    feeds.iter().skip(worker).step_by(CONNECTIONS)
                                {
                                    let client = conn.client(id);
                                    for chunk in instances.chunks(CHUNK) {
                                        client.ingest_batch(chunk.to_vec()).unwrap();
                                    }
                                }
                            });
                        }
                    });
                    control.drain().unwrap();
                    let report = control.shutdown().unwrap();
                    server.shutdown();
                    report
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("in_process", format!("{shards}shards")),
            &(),
            |b, _| {
                b.iter(|| {
                    let server = ServerHandle::start(config(shards));
                    let clients: Vec<_> = feeds
                        .iter()
                        .map(|(id, schema, _)| server.attach(id, schema.clone(), &spec).unwrap())
                        .collect();
                    for ((_, _, instances), client) in feeds.iter().zip(&clients) {
                        for chunk in instances.chunks(CHUNK) {
                            client.ingest_batch(chunk.to_vec()).unwrap();
                        }
                    }
                    server.drain();
                    server.shutdown()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_net_throughput);
criterion_main!(benches);
