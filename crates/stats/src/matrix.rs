//! Minimal dense matrix type with the linear-algebra operations needed by
//! the regression / Granger-causality code: matrix products, transpose, and
//! the solution of small linear systems by Gaussian elimination with partial
//! pivoting.
//!
//! This is intentionally small — the largest systems solved in the whole
//! reproduction are the (2·lags + 1)-dimensional normal equations of the
//! Granger regressions, so asymptotic sophistication would be wasted.

use crate::StatsError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Creates a column vector from a slice.
    pub fn column(data: &[f64]) -> Self {
        Matrix { rows: data.len(), cols: 1, data: data.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Solves the linear system `A x = b` by Gaussian elimination with
    /// partial pivoting, where `A` is this (square) matrix.
    ///
    /// Returns [`StatsError::SingularMatrix`] if the matrix is (numerically)
    /// singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length must equal matrix size");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivoting: find the largest remaining entry in this column.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-12 {
                return Err(StatsError::SingularMatrix);
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back-substitution.
        let mut out = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = x[row];
            for j in (row + 1)..n {
                acc -= a[row * n + j] * out[j];
            }
            out[row] = acc / a[row * n + row];
        }
        Ok(out)
    }

    /// Returns a borrowed view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x - y = 1  → x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn solve_larger_system_against_product() {
        // Verify A * x == b for a 4x4 system.
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.0],
            vec![2.0, 0.0, 5.0, 2.0],
            vec![0.5, 1.0, 2.0, 4.0],
        ]);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = a.solve(&b).unwrap();
        let bx = a.matmul(&Matrix::column(&x));
        for i in 0..4 {
            assert!((bx[(i, 0)] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn column_vector_shape() {
        let v = Matrix::column(&[1.0, 2.0, 3.0]);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 1);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
