//! Gaussian mixture generator with per-class clusters.
//!
//! This is the workhorse behind the synthetic substitutes for the paper's
//! real-world benchmarks (Table I, top half): each class owns one or more
//! Gaussian clusters whose means/covariance scales are drawn at
//! construction. The generator supports:
//!
//! * class-conditional sampling (needed for exact imbalance control),
//! * per-class concept changes (shifting or redrawing a class's clusters —
//!   i.e. local real drift),
//! * global concept changes (redrawing all clusters).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// Cluster parameters of one class.
#[derive(Debug, Clone)]
pub struct GaussianClass {
    /// Cluster means, one vector per cluster.
    pub means: Vec<Vec<f64>>,
    /// Per-cluster spherical standard deviation.
    pub spreads: Vec<f64>,
}

/// Gaussian mixture stream.
pub struct GaussianMixtureGenerator {
    schema: StreamSchema,
    seed: u64,
    rng: StdRng,
    classes: Vec<GaussianClass>,
    clusters_per_class: usize,
    counter: u64,
}

impl GaussianMixtureGenerator {
    /// Creates a mixture with `num_classes` classes, each owning
    /// `clusters_per_class` random clusters in a `num_features`-dimensional
    /// unit cube; classes are sampled uniformly (balanced).
    pub fn balanced(
        num_features: usize,
        num_classes: usize,
        clusters_per_class: usize,
        seed: u64,
    ) -> Self {
        assert!(num_features >= 1);
        assert!(num_classes >= 2);
        assert!(clusters_per_class >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = (0..num_classes)
            .map(|_| Self::random_class(num_features, clusters_per_class, &mut rng))
            .collect();
        let schema = StreamSchema::new(
            format!("gmm-d{num_features}-c{num_classes}"),
            num_features,
            num_classes,
        );
        GaussianMixtureGenerator { schema, seed, rng, classes, clusters_per_class, counter: 0 }
    }

    fn random_class(num_features: usize, clusters: usize, rng: &mut StdRng) -> GaussianClass {
        let means = (0..clusters)
            .map(|_| (0..num_features).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let spreads = (0..clusters).map(|_| rng.gen_range(0.03..0.15)).collect();
        GaussianClass { means, spreads }
    }

    /// Generates one instance of the requested class.
    pub fn generate_for_class(&mut self, class: usize) -> Instance {
        assert!(class < self.schema.num_classes, "class {class} out of range");
        let cluster = self.rng.gen_range(0..self.clusters_per_class);
        let (mean, spread) = {
            let c = &self.classes[class];
            (c.means[cluster].clone(), c.spreads[cluster])
        };
        let features: Vec<f64> = mean
            .iter()
            .map(|&m| {
                let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                m + z * spread
            })
            .collect();
        let inst = Instance::with_index(features, class, self.counter);
        self.counter += 1;
        inst
    }

    /// Shifts every cluster mean of the listed classes by a random offset of
    /// the given magnitude — a local real drift of controllable severity.
    pub fn shift_classes(&mut self, classes: &[usize], magnitude: f64) {
        for &c in classes {
            assert!(c < self.schema.num_classes);
            for mean in self.classes[c].means.iter_mut() {
                for m in mean.iter_mut() {
                    *m += self.rng.gen_range(-magnitude..magnitude);
                    *m = m.clamp(0.0, 1.0);
                }
            }
        }
    }

    /// Redraws the clusters of the listed classes — a sudden local drift.
    pub fn regenerate_classes(&mut self, classes: &[usize]) {
        for &c in classes {
            assert!(c < self.schema.num_classes);
            self.classes[c] = Self::random_class(
                self.schema.num_features,
                self.clusters_per_class,
                &mut self.rng,
            );
        }
    }

    /// Redraws every class — a sudden global drift.
    pub fn regenerate_all(&mut self) {
        let all: Vec<usize> = (0..self.schema.num_classes).collect();
        self.regenerate_classes(&all);
    }

    /// Read access to a class's current cluster definition.
    pub fn class_parameters(&self, class: usize) -> &GaussianClass {
        &self.classes[class]
    }
}

impl DataStream for GaussianMixtureGenerator {
    fn next_instance(&mut self) -> Option<Instance> {
        let class = self.rng.gen_range(0..self.schema.num_classes);
        Some(self.generate_for_class(class))
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.classes = (0..self.schema.num_classes)
            .map(|_| {
                Self::random_class(self.schema.num_features, self.clusters_per_class, &mut rng)
            })
            .collect();
        self.rng = rng;
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn class_conditional_generation() {
        let mut g = GaussianMixtureGenerator::balanced(5, 4, 2, 7);
        for c in 0..4 {
            assert_eq!(g.generate_for_class(c).class, c);
        }
    }

    #[test]
    fn shift_moves_only_selected_classes() {
        let mut g = GaussianMixtureGenerator::balanced(6, 3, 2, 9);
        let before0 = g.class_parameters(0).means.clone();
        let before2 = g.class_parameters(2).means.clone();
        g.shift_classes(&[2], 0.4);
        assert_eq!(g.class_parameters(0).means, before0);
        assert_ne!(g.class_parameters(2).means, before2);
    }

    #[test]
    fn regenerate_all_changes_everything() {
        let mut g = GaussianMixtureGenerator::balanced(6, 3, 2, 10);
        let before: Vec<_> = (0..3).map(|c| g.class_parameters(c).means.clone()).collect();
        g.regenerate_all();
        for (c, b) in before.iter().enumerate() {
            assert_ne!(&g.class_parameters(c).means, b);
        }
    }

    #[test]
    fn features_cluster_around_means() {
        let mut g = GaussianMixtureGenerator::balanced(4, 2, 1, 13);
        let mean = g.class_parameters(0).means[0].clone();
        let sample: Vec<Instance> = (0..500).map(|_| g.generate_for_class(0)).collect();
        let mut avg = [0.0; 4];
        for inst in &sample {
            for (a, f) in avg.iter_mut().zip(inst.features.iter()) {
                *a += f / sample.len() as f64;
            }
        }
        for (a, m) in avg.iter().zip(mean.iter()) {
            assert!((a - m).abs() < 0.05, "empirical mean {a} should be near cluster mean {m}");
        }
    }

    #[test]
    fn restart_is_deterministic() {
        let mut g = GaussianMixtureGenerator::balanced(5, 3, 2, 21);
        let a = g.take_instances(150);
        g.shift_classes(&[0, 1], 0.5);
        g.restart();
        assert_eq!(a, g.take_instances(150));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_class() {
        GaussianMixtureGenerator::balanced(3, 2, 1, 0).generate_for_class(9);
    }
}
