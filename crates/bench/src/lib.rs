//! Criterion benchmark crate: all targets live under `benches/`, one per paper table/figure (see DESIGN.md §4).
