//! Builders for the three taxonomy scenarios of Section IV.
//!
//! * **Scenario 1** — global concept drift + dynamic imbalance ratio, class
//!   roles fixed;
//! * **Scenario 2** — Scenario 1 plus class-role switching;
//! * **Scenario 3** — *local* concept drift (a configurable subset of
//!   classes) + dynamic imbalance ratio + class-role switching.
//!
//! Experiments 2 and 3 of the paper are parameter sweeps over Scenario 3
//! (number of drifting classes) and over the imbalance ratio respectively;
//! the harness builds them through these functions.

use crate::drift::local::{LocalDriftEvent, LocalDriftStream};
use crate::drift::{ConceptSequenceStream, DriftEvent, DriftKind, DriftSchedule};
use crate::generators::RandomRbfGenerator;
use crate::imbalance::{ImbalanceProfile, ImbalancedStream};
use crate::stream::{BoundedStream, DataStream};

/// Common parameters of a scenario stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Number of features.
    pub num_features: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Total number of instances emitted.
    pub length: u64,
    /// Maximum imbalance ratio.
    pub imbalance_ratio: f64,
    /// Number of drift events.
    pub n_drifts: usize,
    /// Drift speed profile.
    pub drift_kind: DriftKind,
    /// Reproducibility seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            num_features: 20,
            num_classes: 5,
            length: 50_000,
            imbalance_ratio: 100.0,
            n_drifts: 2,
            drift_kind: DriftKind::Sudden,
            seed: 42,
        }
    }
}

/// A built scenario: the stream plus the ground-truth drift positions
/// (needed to score detection delay and false alarms).
pub struct ScenarioStream {
    /// The stream itself.
    pub stream: Box<dyn DataStream + Send>,
    /// Ground-truth positions of the injected drifts. For Scenario 3 these
    /// are exact indices of the emitted stream; for Scenarios 1 and 2 (whose
    /// concept switches live inside the imbalance operator) they are
    /// schedule positions of the underlying concept sequence and should be
    /// treated as approximate when scoring detection delay.
    pub drift_positions: Vec<u64>,
    /// Classes affected by each drift (all classes for global scenarios).
    pub affected_classes: Vec<Vec<usize>>,
}

fn drift_positions(config: &ScenarioConfig) -> Vec<u64> {
    (1..=config.n_drifts as u64).map(|k| config.length * k / (config.n_drifts as u64 + 1)).collect()
}

fn dynamic_profile(config: &ScenarioConfig, switch_roles: bool) -> ImbalanceProfile {
    let base = match ImbalanceProfile::geometric(config.num_classes, config.imbalance_ratio) {
        ImbalanceProfile::Static(w) => w,
        _ => unreachable!(),
    };
    if switch_roles {
        // Role switching rotates the majority role across classes several
        // times during the stream.
        ImbalanceProfile::RoleSwitching {
            weights: base,
            interval: (config.length / (config.n_drifts as u64 + 2)).max(1),
        }
    } else {
        // Dynamic IR without role change: interpolate between the full-IR
        // profile and a mild (sqrt IR) profile, keeping the class order.
        let mild =
            match ImbalanceProfile::geometric(config.num_classes, config.imbalance_ratio.sqrt()) {
                ImbalanceProfile::Static(w) => w,
                _ => unreachable!(),
            };
        ImbalanceProfile::LinearShift { start: base, end: mild, period: config.length }
    }
}

/// Scenario 1: global concept drift + dynamic imbalance ratio, static roles.
pub fn scenario1(config: &ScenarioConfig) -> ScenarioStream {
    let positions = drift_positions(config);
    let concepts: Vec<Box<dyn DataStream + Send>> = (0..=config.n_drifts)
        .map(|i| {
            Box::new(RandomRbfGenerator::new(
                config.num_features,
                config.num_classes,
                3,
                0.0,
                config.seed.wrapping_add(i as u64 * 31_337),
            )) as Box<dyn DataStream + Send>
        })
        .collect();
    let schedule = DriftSchedule {
        events: positions
            .iter()
            .map(|&position| DriftEvent {
                position,
                width: (config.length / 20).max(1),
                kind: config.drift_kind,
            })
            .collect(),
    };
    let drifting = ConceptSequenceStream::new(concepts, schedule, config.seed ^ 0x51);
    let imbalanced =
        ImbalancedStream::new(drifting, dynamic_profile(config, false), config.seed ^ 0x52);
    let all_classes: Vec<usize> = (0..config.num_classes).collect();
    ScenarioStream {
        stream: Box::new(BoundedStream::new(imbalanced, config.length)),
        affected_classes: positions.iter().map(|_| all_classes.clone()).collect(),
        drift_positions: positions,
    }
}

/// Scenario 2: global concept drift + dynamic imbalance ratio + class-role
/// switching.
pub fn scenario2(config: &ScenarioConfig) -> ScenarioStream {
    let positions = drift_positions(config);
    let concepts: Vec<Box<dyn DataStream + Send>> = (0..=config.n_drifts)
        .map(|i| {
            Box::new(RandomRbfGenerator::new(
                config.num_features,
                config.num_classes,
                3,
                0.0,
                config.seed.wrapping_add(i as u64 * 7_901),
            )) as Box<dyn DataStream + Send>
        })
        .collect();
    let schedule = DriftSchedule {
        events: positions
            .iter()
            .map(|&position| DriftEvent {
                position,
                width: (config.length / 20).max(1),
                kind: config.drift_kind,
            })
            .collect(),
    };
    let drifting = ConceptSequenceStream::new(concepts, schedule, config.seed ^ 0x61);
    let imbalanced =
        ImbalancedStream::new(drifting, dynamic_profile(config, true), config.seed ^ 0x62);
    let all_classes: Vec<usize> = (0..config.num_classes).collect();
    ScenarioStream {
        stream: Box::new(BoundedStream::new(imbalanced, config.length)),
        affected_classes: positions.iter().map(|_| all_classes.clone()).collect(),
        drift_positions: positions,
    }
}

/// Scenario 3: **local** concept drift affecting `classes_with_drift`
/// classes (chosen smallest-first, matching the paper's Experiment 2
/// protocol) + dynamic imbalance ratio + class-role switching.
pub fn scenario3(config: &ScenarioConfig, classes_with_drift: usize) -> ScenarioStream {
    assert!(classes_with_drift >= 1 && classes_with_drift <= config.num_classes);
    // With a geometric profile class (num_classes - 1) is the smallest, so
    // drift is injected starting from the highest class index downwards.
    let affected: Vec<usize> =
        (config.num_classes - classes_with_drift..config.num_classes).collect();
    let positions = drift_positions(config);
    let base =
        RandomRbfGenerator::new(config.num_features, config.num_classes, 3, 0.0, config.seed);
    let events: Vec<LocalDriftEvent> = positions
        .iter()
        .map(|&position| LocalDriftEvent {
            affected_classes: affected.clone(),
            position,
            width: (config.length / 20).max(1),
            kind: config.drift_kind,
            magnitude: 0.6,
        })
        .collect();
    // The imbalance operator sits *inside* the local-drift operator: its
    // rejection sampling consumes several base instances per emitted one, so
    // applying the drift outermost keeps the drift positions aligned with
    // the indices of the emitted stream (which is what detection-delay
    // scoring compares against).
    let imbalanced = ImbalancedStream::new(base, dynamic_profile(config, true), config.seed ^ 0x72);
    let local = LocalDriftStream::new(imbalanced, events, config.seed ^ 0x71);
    ScenarioStream {
        stream: Box::new(BoundedStream::new(local, config.length)),
        affected_classes: positions.iter().map(|_| affected.clone()).collect(),
        drift_positions: positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            length: 6_000,
            num_features: 8,
            num_classes: 5,
            imbalance_ratio: 20.0,
            ..Default::default()
        }
    }

    #[test]
    fn scenario1_emits_declared_length_and_positions() {
        let cfg = small_config();
        let mut s = scenario1(&cfg);
        let sample = s.stream.take_instances(100_000);
        assert_eq!(sample.len() as u64, cfg.length);
        assert_eq!(s.drift_positions, vec![2000, 4000]);
        assert!(s.affected_classes.iter().all(|c| c.len() == 5));
    }

    #[test]
    fn scenario2_changes_majority_role() {
        let cfg = small_config();
        let mut s = scenario2(&cfg);
        let sample = s.stream.take_instances(100_000);
        let majority_of = |slice: &[crate::instance::Instance]| -> usize {
            let mut counts = [0usize; 5];
            for i in slice {
                counts[i.class] += 1;
            }
            counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).unwrap()
        };
        let early = majority_of(&sample[..1500]);
        let late = majority_of(&sample[4500..]);
        assert_ne!(early, late, "scenario 2 must switch class roles");
    }

    #[test]
    fn scenario3_affects_smallest_classes_only() {
        let cfg = small_config();
        let s = scenario3(&cfg, 2);
        assert_eq!(s.affected_classes[0], vec![3, 4]);
        assert_eq!(s.drift_positions.len(), 2);
    }

    #[test]
    fn scenario3_single_class_drift() {
        let cfg = small_config();
        let mut s = scenario3(&cfg, 1);
        assert_eq!(s.affected_classes[0], vec![4]);
        let sample = s.stream.take_instances(100_000);
        assert_eq!(sample.len() as u64, cfg.length);
    }

    #[test]
    fn scenario3_all_classes_equals_global() {
        let cfg = small_config();
        let s = scenario3(&cfg, 5);
        assert_eq!(s.affected_classes[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = small_config();
        let mut a = scenario3(&cfg, 2);
        let mut b = scenario3(&cfg, 2);
        assert_eq!(a.stream.take_instances(500), b.stream.take_instances(500));
    }

    #[test]
    #[should_panic]
    fn scenario3_rejects_zero_drifting_classes() {
        scenario3(&small_config(), 0);
    }
}
