//! ADWIN — ADaptive WINdowing (Bifet & Gavaldà, SDM 2007).
//!
//! Maintains a variable-length window of recent real-valued observations
//! stored as an exponential histogram of buckets. Whenever the means of two
//! adjacent sub-windows differ by more than a Hoeffding-style cut threshold
//! `ε_cut`, the older sub-window is dropped and a change is reported. The
//! bucket structure keeps memory and update time logarithmic in the window
//! length.
//!
//! ADWIN is used twice in the reproduction: as a reference drift detector
//! over the classifier's error stream, and as the *self-adaptive window
//! size* mechanism inside RBM-IM's trend tracking (paper Sec. V-B, "we
//! propose to use a self-adaptive window size \[19\]").

use crate::{DetectorState, DriftDetector, Observation};

/// Maximum number of buckets kept per exponential level.
const MAX_BUCKETS_PER_LEVEL: usize = 5;

/// A bucket row: up to [`MAX_BUCKETS_PER_LEVEL`] buckets all holding
/// `2^level` elements each.
#[derive(Debug, Clone, Default)]
struct BucketRow {
    sums: Vec<f64>,
    variances: Vec<f64>,
}

/// The ADWIN change detector / adaptive window.
#[derive(Debug, Clone)]
pub struct Adwin {
    delta: f64,
    rows: Vec<BucketRow>,
    /// Total number of elements in the window.
    width: u64,
    /// Sum of all elements in the window.
    total: f64,
    /// Variance accumulator (sum over buckets of within-bucket variance plus
    /// combination terms), maintained incrementally.
    variance: f64,
    /// Updates between change checks (checking every step is wasteful; the
    /// original implementation checks every 32 updates by default).
    clock: u64,
    ticks: u64,
    last_detection_width: u64,
    state: DetectorState,
}

impl Adwin {
    /// Creates an ADWIN detector with confidence parameter `delta`
    /// (typical values 0.002 – 0.05; smaller = fewer false alarms).
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1), got {delta}");
        Adwin {
            delta,
            rows: vec![BucketRow::default()],
            width: 0,
            total: 0.0,
            variance: 0.0,
            clock: 32,
            ticks: 0,
            last_detection_width: 0,
            state: DetectorState::Stable,
        }
    }

    /// Sets how many insertions pass between change checks. The default of
    /// 32 suits per-instance error streams; callers feeding one value per
    /// mini-batch (e.g. RBM-IM's per-class reconstruction-error series)
    /// should lower it to 1.
    pub fn with_check_interval(mut self, interval: u64) -> Self {
        assert!(interval >= 1, "check interval must be >= 1");
        self.clock = interval;
        self
    }

    /// Number of elements currently in the adaptive window.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Mean of the elements currently in the window.
    pub fn mean(&self) -> f64 {
        if self.width == 0 {
            0.0
        } else {
            self.total / self.width as f64
        }
    }

    /// Adds a real-valued element and returns `true` if the window shrank
    /// (i.e. a change was detected). This is the generic interface used by
    /// RBM-IM for its reconstruction-error series; the [`DriftDetector`]
    /// implementation feeds prediction errors through it.
    pub fn add(&mut self, value: f64) -> bool {
        self.insert_element(value);
        self.compress_buckets();
        self.ticks += 1;
        if self.ticks.is_multiple_of(self.clock) && self.width > 10 {
            self.detect_change()
        } else {
            false
        }
    }

    fn insert_element(&mut self, value: f64) {
        // New elements enter level 0 as single-element buckets.
        if self.width > 0 {
            let mean = self.mean();
            let incremental =
                (value - mean) * (value - mean) * self.width as f64 / (self.width + 1) as f64;
            self.variance += incremental;
        }
        self.rows[0].sums.insert(0, value);
        self.rows[0].variances.insert(0, 0.0);
        self.width += 1;
        self.total += value;
    }

    fn compress_buckets(&mut self) {
        let mut level = 0;
        loop {
            if self.rows[level].sums.len() <= MAX_BUCKETS_PER_LEVEL {
                break;
            }
            if level + 1 == self.rows.len() {
                self.rows.push(BucketRow::default());
            }
            // Merge the two oldest buckets of this level into one bucket of
            // the next level.
            let n1 = (1u64 << level) as f64;
            let n2 = n1;
            let s2 = self.rows[level].sums.pop().expect("bucket exists");
            let v2 = self.rows[level].variances.pop().expect("bucket exists");
            let s1 = self.rows[level].sums.pop().expect("bucket exists");
            let v1 = self.rows[level].variances.pop().expect("bucket exists");
            let merged_sum = s1 + s2;
            let mean1 = s1 / n1;
            let mean2 = s2 / n2;
            let merged_var = v1 + v2 + n1 * n2 / (n1 + n2) * (mean1 - mean2) * (mean1 - mean2);
            self.rows[level + 1].sums.insert(0, merged_sum);
            self.rows[level + 1].variances.insert(0, merged_var);
            level += 1;
        }
    }

    /// Scans all cut points (oldest to newest) and drops the tail while any
    /// adjacent pair of sub-windows has significantly different means.
    fn detect_change(&mut self) -> bool {
        let mut change = false;
        let mut reduced = true;
        while reduced {
            reduced = false;
            let mut w0: f64 = 0.0; // elements in the older part
            let mut s0: f64 = 0.0;
            let total_w = self.width as f64;
            let total_s = self.total;
            // Iterate buckets from oldest (highest level, last position) to newest.
            'outer: for level in (0..self.rows.len()).rev() {
                let n_per_bucket = (1u64 << level) as f64;
                for idx in (0..self.rows[level].sums.len()).rev() {
                    w0 += n_per_bucket;
                    s0 += self.rows[level].sums[idx];
                    let w1 = total_w - w0;
                    let s1 = total_s - s0;
                    if w1 < 1.0 {
                        break 'outer;
                    }
                    if w0 >= 5.0 && w1 >= 5.0 && self.cut_detected(w0, s0, w1, s1) {
                        change = true;
                        reduced = true;
                        self.drop_oldest_bucket();
                        break 'outer;
                    }
                }
            }
        }
        if change {
            self.last_detection_width = self.width;
        }
        change
    }

    fn cut_detected(&self, w0: f64, s0: f64, w1: f64, s1: f64) -> bool {
        let mean0 = s0 / w0;
        let mean1 = s1 / w1;
        let n = self.width as f64;
        let variance = (self.variance / n).max(1e-12);
        let m = 1.0 / (1.0 / w0 + 1.0 / w1);
        let delta_prime = self.delta / n.ln().max(1.0);
        let ln_term = (2.0 / delta_prime).ln();
        let eps = (2.0 * variance * ln_term / m).sqrt() + 2.0 / (3.0 * m) * ln_term;
        (mean0 - mean1).abs() > eps
    }

    /// Captures the full window state (bucket rows plus running
    /// aggregates) as a serde value — the inherent form of
    /// [`DriftDetector::snapshot_state`], callable without the trait in
    /// scope (RBM-IM's trend tracker embeds ADWIN instances and checkpoints
    /// them through this).
    pub fn checkpoint_value(&self) -> serde::Value {
        use serde::{Serialize, Value};
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|row| {
                Value::object(vec![
                    ("sums", row.sums.serialize_value()),
                    ("variances", row.variances.serialize_value()),
                ])
            })
            .collect();
        Value::object(vec![
            ("rows", Value::Array(rows)),
            ("width", self.width.serialize_value()),
            ("total", self.total.serialize_value()),
            ("variance", self.variance.serialize_value()),
            ("clock", self.clock.serialize_value()),
            ("ticks", self.ticks.serialize_value()),
            ("last_detection_width", self.last_detection_width.serialize_value()),
            ("state", self.state.serialize_value()),
        ])
    }

    /// Restores state captured by [`Adwin::checkpoint_value`].
    pub fn restore_from_value(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let serde::Value::Array(rows) = state.req("rows")? else {
            return Err(serde::Error::msg("adwin `rows` must be an array"));
        };
        self.rows = rows
            .iter()
            .map(|row| {
                Ok(BucketRow { sums: row.field("sums")?, variances: row.field("variances")? })
            })
            .collect::<Result<Vec<_>, serde::Error>>()?;
        if self.rows.is_empty() {
            self.rows.push(BucketRow::default());
        }
        self.width = state.field("width")?;
        self.total = state.field("total")?;
        self.variance = state.field("variance")?;
        self.clock = state.field("clock")?;
        self.ticks = state.field("ticks")?;
        self.last_detection_width = state.field("last_detection_width")?;
        self.state = state.field("state")?;
        Ok(())
    }

    fn drop_oldest_bucket(&mut self) {
        // The oldest bucket lives at the highest non-empty level, last index.
        for level in (0..self.rows.len()).rev() {
            if let Some(sum) = self.rows[level].sums.pop() {
                let _var = self.rows[level].variances.pop();
                let n = 1u64 << level;
                self.width -= n;
                self.total -= sum;
                // Recompute the variance approximately: scale it by the kept
                // fraction (exact recomputation would require the raw data).
                if self.width > 0 {
                    self.variance = self.variance * self.width as f64 / (self.width + n) as f64;
                } else {
                    self.variance = 0.0;
                }
                return;
            }
        }
    }
}

impl DriftDetector for Adwin {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let value = if observation.correct { 0.0 } else { 1.0 };
        self.state = if self.add(value) { DetectorState::Drift } else { DetectorState::Stable };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = Adwin::new(self.delta);
    }

    fn name(&self) -> &'static str {
        "ADWIN"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        Some(self.checkpoint_value())
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.restore_from_value(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_detects_abrupt_change, assert_quiet_on_stationary};

    #[test]
    fn detects_abrupt_error_increase() {
        assert_detects_abrupt_change(&mut Adwin::new(0.002), 800, 2);
    }

    #[test]
    fn quiet_on_stationary_stream() {
        assert_quiet_on_stationary(&mut Adwin::new(0.002), 2);
    }

    #[test]
    fn window_grows_on_stable_data_and_shrinks_on_change() {
        let mut adwin = Adwin::new(0.01);
        for i in 0..3000 {
            adwin.add(((i * 31) % 7) as f64 / 7.0 * 0.1); // stable around 0.04
        }
        let width_before = adwin.width();
        assert!(width_before > 2000, "window should grow on stable data, got {width_before}");
        let mut shrank = false;
        for i in 0..2000 {
            if adwin.add(0.8 + ((i * 17) % 5) as f64 * 0.01) {
                shrank = true;
            }
        }
        assert!(shrank, "window must shrink when the mean shifts");
        assert!(adwin.width() < width_before + 2000, "old data must have been dropped");
        assert!(
            adwin.mean() > 0.5,
            "window mean should reflect the new regime, got {}",
            adwin.mean()
        );
    }

    #[test]
    fn mean_tracks_input_mean_on_stable_data() {
        let mut adwin = Adwin::new(0.002);
        for i in 0..5000 {
            adwin.add(if i % 4 == 0 { 1.0 } else { 0.0 });
        }
        assert!((adwin.mean() - 0.25).abs() < 0.02, "mean = {}", adwin.mean());
        assert_eq!(adwin.width(), 5000);
    }

    #[test]
    fn small_change_needs_longer_but_is_found() {
        let mut adwin = Adwin::new(0.05);
        let mut detected = false;
        for i in 0..20_000 {
            let p = if i < 10_000 { 0.2 } else { 0.3 };
            let v = if ((i as f64 * 0.7548).fract()) < p { 1.0 } else { 0.0 };
            if adwin.add(v) && i > 10_000 {
                detected = true;
                break;
            }
        }
        assert!(detected, "a 10-point error increase should eventually be caught");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut adwin = Adwin::new(0.002);
        for _ in 0..100 {
            adwin.add(1.0);
        }
        adwin.reset();
        assert_eq!(adwin.width(), 0);
        assert_eq!(adwin.mean(), 0.0);
        assert_eq!(adwin.state(), DetectorState::Stable);
        assert_eq!(adwin.name(), "ADWIN");
    }

    #[test]
    fn shorter_check_interval_reacts_faster_on_sparse_series() {
        // One value per "batch": the default interval of 32 would need 32
        // new-regime points before even looking; interval 1 reacts sooner.
        let run = |mut adwin: Adwin| -> Option<usize> {
            for i in 0..60 {
                let v = if i < 30 { 0.2 } else { 0.9 };
                if adwin.add(v) && i >= 30 {
                    return Some(i);
                }
            }
            None
        };
        let fast = run(Adwin::new(0.01).with_check_interval(1));
        assert!(fast.is_some(), "interval-1 ADWIN should catch the jump within 30 points");
    }

    #[test]
    #[should_panic]
    fn invalid_delta_rejected() {
        Adwin::new(0.0);
    }
}
