//! LED display generator.
//!
//! The classic LED generator (Breiman et al., 1984; MOA `LEDGenerator`)
//! encodes the digit shown on a seven-segment display: 7 relevant binary
//! attributes (the segments) plus 17 irrelevant binary attributes, 10
//! classes (the digits 0–9), and a per-segment noise probability that flips
//! segment values. Drift variants swap which attribute positions carry the
//! relevant segments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// Segment patterns of the digits 0–9 on a seven-segment display.
const DIGIT_SEGMENTS: [[u8; 7]; 10] = [
    [1, 1, 1, 0, 1, 1, 1], // 0
    [0, 0, 1, 0, 0, 1, 0], // 1
    [1, 0, 1, 1, 1, 0, 1], // 2
    [1, 0, 1, 1, 0, 1, 1], // 3
    [0, 1, 1, 1, 0, 1, 0], // 4
    [1, 1, 0, 1, 0, 1, 1], // 5
    [1, 1, 0, 1, 1, 1, 1], // 6
    [1, 0, 1, 0, 0, 1, 0], // 7
    [1, 1, 1, 1, 1, 1, 1], // 8
    [1, 1, 1, 1, 0, 1, 1], // 9
];

/// Total number of binary attributes (7 relevant + 17 irrelevant).
const NUM_ATTRIBUTES: usize = 24;

/// LED digit generator.
pub struct LedGenerator {
    schema: StreamSchema,
    seed: u64,
    rng: StdRng,
    /// Probability of flipping each relevant segment (noise).
    noise: f64,
    /// Attribute positions carrying the 7 relevant segments; permuting this
    /// vector is the drift mechanism of `LEDGeneratorDrift`.
    segment_positions: [usize; 7],
    counter: u64,
}

impl LedGenerator {
    /// Creates an LED stream with the given segment-flip probability.
    pub fn new(noise: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0,1)");
        let schema = StreamSchema::new("led", NUM_ATTRIBUTES, 10);
        LedGenerator {
            schema,
            seed,
            rng: StdRng::seed_from_u64(seed),
            noise,
            segment_positions: [0, 1, 2, 3, 4, 5, 6],
            counter: 0,
        }
    }

    /// Swaps `k` relevant segments with irrelevant attribute positions —
    /// the LED drift mechanism (a real drift: the mapping from features to
    /// digits changes).
    pub fn drift_segments(&mut self, k: usize) {
        let k = k.min(7);
        for i in 0..k {
            // Swap relevant position i with a random irrelevant position.
            let target = self.rng.gen_range(7..NUM_ATTRIBUTES);
            self.segment_positions[i] = target;
        }
    }

    /// Current positions of the relevant segments.
    pub fn segment_positions(&self) -> [usize; 7] {
        self.segment_positions
    }
}

impl DataStream for LedGenerator {
    fn next_instance(&mut self) -> Option<Instance> {
        let digit = self.rng.gen_range(0..10usize);
        let mut features = vec![0.0; NUM_ATTRIBUTES];
        // Irrelevant attributes are pure noise.
        for f in features.iter_mut() {
            *f = if self.rng.gen::<bool>() { 1.0 } else { 0.0 };
        }
        // Relevant segments overwrite their positions (with flip noise).
        for (seg, &pos) in self.segment_positions.iter().enumerate() {
            let mut v = DIGIT_SEGMENTS[digit][seg];
            if self.rng.gen::<f64>() < self.noise {
                v = 1 - v;
            }
            features[pos] = v as f64;
        }
        let inst = Instance::with_index(features, digit, self.counter);
        self.counter += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.segment_positions = [0, 1, 2, 3, 4, 5, 6];
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn noiseless_digits_are_recoverable() {
        let mut g = LedGenerator::new(0.0, 3);
        for inst in g.take_instances(500) {
            let segs: Vec<u8> = (0..7).map(|i| inst.features[i] as u8).collect();
            assert_eq!(
                &segs[..],
                &DIGIT_SEGMENTS[inst.class][..],
                "digit {} segments corrupted",
                inst.class
            );
        }
    }

    #[test]
    fn all_ten_digits_appear() {
        let mut g = LedGenerator::new(0.05, 8);
        let mut counts = [0usize; 10];
        for inst in g.take_instances(5000) {
            counts[inst.class] += 1;
        }
        for (d, &n) in counts.iter().enumerate() {
            assert!(n > 300, "digit {d} underrepresented: {n}");
        }
    }

    #[test]
    fn drift_moves_segment_positions() {
        let mut g = LedGenerator::new(0.0, 4);
        let before = g.segment_positions();
        g.drift_segments(4);
        let after = g.segment_positions();
        assert_ne!(before, after);
        // Positions outside the first seven mean segments moved into the
        // irrelevant zone.
        assert!(after.iter().any(|&p| p >= 7));
    }

    #[test]
    fn restart_resets_positions_and_sequence() {
        let mut g = LedGenerator::new(0.1, 6);
        let a = g.take_instances(100);
        g.drift_segments(3);
        g.restart();
        assert_eq!(g.segment_positions(), [0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(a, g.take_instances(100));
    }

    #[test]
    fn noise_corrupts_some_segments() {
        let mut g = LedGenerator::new(0.3, 12);
        let mut corrupted = 0;
        for inst in g.take_instances(500) {
            let segs: Vec<u8> = (0..7).map(|i| inst.features[i] as u8).collect();
            if segs != DIGIT_SEGMENTS[inst.class] {
                corrupted += 1;
            }
        }
        assert!(
            corrupted > 300,
            "with 30% segment noise most digits should be corrupted, got {corrupted}"
        );
    }
}
