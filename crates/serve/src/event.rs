//! The drift-event bus: owned serving events and the subscriber fan-out.
//!
//! Shard workers publish; any number of subscribers receive every event on
//! their own unbounded channel. Publishing never blocks a shard — a slow or
//! abandoned subscriber only grows (or, once dropped, is pruned from) its
//! own queue. Event order is preserved *per stream* (each stream lives on
//! exactly one shard thread); events of different streams interleave in
//! real arrival order, which differs run to run — consumers needing
//! determinism group by [`ServeEvent::stream`].

use rbm_im_harness::pipeline::{PipelineEvent, RunResult};
use rbm_im_metrics::PrequentialSnapshot;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// What happened on a served stream.
#[derive(Debug, Clone)]
pub enum ServeEventKind {
    /// The stream was attached and its pipeline state created.
    Attached,
    /// The stream's detector entered the warning zone.
    Warning {
        /// Per-stream instance offset of the triggering observation.
        position: u64,
    },
    /// The stream's detector signalled a drift.
    Drift {
        /// Per-stream instance offset of the triggering observation —
        /// identical to the position a sequential
        /// [`PipelineBuilder`](rbm_im_harness::pipeline::PipelineBuilder)
        /// run over the same instances would report, whatever the shard
        /// count or micro-batch boundaries.
        position: u64,
        /// Classes implicated by per-class detectors (empty for global
        /// detectors).
        classes: Vec<usize>,
    },
    /// Periodic windowed-metric snapshot (cadence =
    /// `RunConfig::snapshot_every` of the stream's pipeline config).
    Snapshot {
        /// Per-stream instance offset at which the snapshot was taken.
        position: u64,
        /// Windowed metric values.
        snapshot: PrequentialSnapshot,
    },
    /// The stream was detached (or the server shut down) and its pipeline
    /// closed; `result` is the stream's final prequential summary.
    Detached {
        /// Final run summary of the stream.
        result: RunResult,
    },
    /// The stream was live-migrated onto this shard by an elastic resize
    /// (`ServerHandle::resize_shards`): its checkpointed state moved
    /// losslessly and processing continues bitwise-identically.
    Migrated {
        /// Shard the stream lived on before the resize.
        from_shard: usize,
    },
    /// The supervisor **performed** a load-based auto-resize (failed
    /// attempts publish nothing — this event is fact, not intent). This
    /// is a **fleet-level** event: [`ServeEvent::stream`] is empty and
    /// [`ServeEvent::shard`] is the shard count after the resize. The
    /// per-stream `Migrated` events of the streams it moved *precede* it
    /// on the bus (they are published by the shard workers while the
    /// resize is in flight; this event is published once it has
    /// succeeded).
    ResizeDecision {
        /// Shard count before the resize.
        old_shards: usize,
        /// Shard count the policy asked for (post-clamping to the
        /// configured bounds).
        new_shards: usize,
        /// The smoothed per-shard queued-instance backlog that drove the
        /// decision.
        mean_queued_instances: f64,
    },
    /// The supervisor spilled a background checkpoint of this stream to
    /// disk (fires after the bytes are durably renamed into place).
    CheckpointSpilled {
        /// Instances the checkpoint covers (its resume offset).
        position: u64,
        /// Whether the spill was triggered by a drift signal rather than
        /// the periodic interval.
        urgent: bool,
    },
    /// The stream's in-memory pipeline state was evicted to its binary
    /// checkpoint (the cold tier): its workspace scratch returned to the
    /// shard pool and only the checkpoint handle stays resident. The
    /// stream remains attached — the next ingest or detach transparently
    /// rehydrates it, bitwise-identically.
    Hibernated {
        /// Instances the cold checkpoint covers (its resume offset).
        position: u64,
        /// `true` when the eviction reused the freshest background spill
        /// on disk (no encode was needed); `false` when the state was
        /// dirty and had to be encoded on demand (held in memory until
        /// the supervisor demotes it to disk).
        clean: bool,
    },
    /// A hibernated stream's pipeline state was rebuilt from its cold
    /// checkpoint (triggered by ingest, detach, shutdown or a migration
    /// that had to replay buffered instances). Processing continues
    /// exactly where the hibernation left off.
    Rehydrated {
        /// Instances restored into the rebuilt state (== the `position`
        /// of the matching `Hibernated` event).
        position: u64,
    },
}

impl ServeEventKind {
    /// Owned conversion of a borrowed pipeline event.
    pub(crate) fn from_pipeline(event: &PipelineEvent<'_>) -> ServeEventKind {
        match event {
            PipelineEvent::Warning { position } => ServeEventKind::Warning { position: *position },
            PipelineEvent::Drift { position, classes } => {
                ServeEventKind::Drift { position: *position, classes: classes.to_vec() }
            }
            PipelineEvent::Snapshot { position, snapshot } => {
                ServeEventKind::Snapshot { position: *position, snapshot: *snapshot }
            }
        }
    }
}

/// One event published on the bus.
#[derive(Debug, Clone)]
pub struct ServeEvent {
    /// Id of the stream the event belongs to.
    pub stream: Arc<str>,
    /// Shard that owns the stream.
    pub shard: usize,
    /// What happened.
    pub kind: ServeEventKind,
}

/// Multi-subscriber event fan-out.
///
/// Subscribers receive every event published after they subscribe, in
/// publish order, on a private unbounded channel. Dropped receivers are
/// pruned lazily on the next publish.
#[derive(Debug, Default)]
pub struct EventBus {
    subscribers: std::sync::Mutex<Vec<Sender<ServeEvent>>>,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Registers a new subscriber and returns its receiving end.
    pub fn subscribe(&self) -> Receiver<ServeEvent> {
        let (tx, rx) = channel();
        self.subscribers.lock().expect("event bus poisoned").push(tx);
        rx
    }

    /// Publishes an event to every live subscriber (no-op without
    /// subscribers; never blocks).
    pub fn publish(&self, event: ServeEvent) {
        let mut subscribers = self.subscribers.lock().expect("event bus poisoned");
        subscribers.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Number of currently registered subscribers (dropped subscribers are
    /// only pruned on publish, so this is an upper bound).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().expect("event bus poisoned").len()
    }

    /// Disconnects every subscriber: their receivers see end-of-stream once
    /// they have drained what was already published. The server calls this
    /// at the end of a graceful shutdown — the bus itself may outlive the
    /// server inside lingering [`StreamClient`](crate::StreamClient)
    /// handles, and subscriber loops must still terminate.
    pub fn close(&self) {
        self.subscribers.lock().expect("event bus poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drift(stream: &str, position: u64) -> ServeEvent {
        ServeEvent {
            stream: Arc::from(stream),
            shard: 0,
            kind: ServeEventKind::Drift { position, classes: vec![1] },
        }
    }

    #[test]
    fn every_subscriber_sees_every_event_in_order() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        bus.publish(drift("s", 10));
        bus.publish(drift("s", 20));
        for rx in [a, b] {
            let events: Vec<ServeEvent> = rx.try_iter().collect();
            assert_eq!(events.len(), 2);
            assert!(matches!(events[0].kind, ServeEventKind::Drift { position: 10, .. }));
            assert!(matches!(events[1].kind, ServeEventKind::Drift { position: 20, .. }));
        }
    }

    #[test]
    fn dropped_subscribers_are_pruned_and_do_not_block() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        drop(rx);
        let live = bus.subscribe();
        bus.publish(drift("s", 1));
        assert_eq!(bus.subscriber_count(), 1, "dead subscriber pruned on publish");
        assert_eq!(live.try_iter().count(), 1);
    }

    #[test]
    fn late_subscribers_miss_earlier_events() {
        let bus = EventBus::new();
        bus.publish(drift("s", 1));
        let rx = bus.subscribe();
        bus.publish(drift("s", 2));
        let events: Vec<ServeEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, ServeEventKind::Drift { position: 2, .. }));
    }
}
