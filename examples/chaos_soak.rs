//! Chaos soak harness: a >1k-stream fleet with staggered attach/detach
//! churn and hot-key skew, supervised, under a seeded, replayable
//! [`ChaosPlan`] — kill-shard panics, kill-process-style cold restarts,
//! hibernate storms, and spill-I/O faults (ENOSPC, corrupt-on-read)
//! injected throughout the ingest timeline.
//!
//! After every injected failure the harness recovers each affected stream
//! from its last durable spill and replays the tail; the zero-loss
//! contract is asserted continuously: every stream — whether it detaches
//! mid-run (churn) or at the end — must be bitwise-identical to a clean
//! sequential replay, and the instance ledger must balance exactly.
//! Recovery latency per fault kind and steady-state ingest latency are
//! recorded through the obs plane and written to `BENCH_chaos.json` with
//! the standard runner metadata.
//!
//! Tunables: `RBM_STREAMS=400 RBM_INSTANCES=96 cargo run -p rbm-im-serve
//! --release --example chaos_soak` (`RBM_SPILL_DIR` overrides the spill
//! location, `RBM_CHAOS_SOAK_SEED` the plan seed, `RBM_BENCH_OUT` the
//! output path — set it to empty to skip the file).

use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_obs::MetricsRegistry;
use rbm_im_serve::{
    deterministic_spec, ChaosFault, ChaosPlan, ChaosSpillIo, CheckpointPolicy, FaultConfig,
    FaultPlane, FaultRate, FaultSite, IngestError, ServeConfig, ServerHandle, SnapshotSink,
    StreamClient, Supervisor, SupervisorConfig, TierPolicy,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, ReplayStream, StreamExt, StreamSchema};
use serde::{Serialize, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// Fleet size (`RBM_STREAMS` overrides; the headline soak is 1200).
fn stream_count() -> usize {
    std::env::var("RBM_STREAMS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_200)
}

/// Instances per stream (`RBM_INSTANCES` overrides).
fn instances_per_stream() -> usize {
    std::env::var("RBM_INSTANCES").ok().and_then(|v| v.parse().ok()).unwrap_or(160)
}

/// Streams attached per round until the whole fleet is live (staggered
/// attach churn: late cohorts arrive while early hot feeds already
/// finish and detach).
const ATTACH_WAVE: usize = 64;
/// Chunk handed to a stream on its ingest turn.
const CHUNK: usize = 16;
/// Hot-key skew: every `HOT_STRIDE`-th stream ingests every round; the
/// cold majority only every `COLD_PERIOD`-th round.
const HOT_STRIDE: usize = 16;
const COLD_PERIOD: usize = 4;

struct Feed {
    id: String,
    schema: StreamSchema,
    instances: Vec<Instance>,
    spec: DetectorSpec,
}

/// Mostly cheap ADWIN streams with a trainable RBM arm mixed in.
fn fleet(count: usize, total: usize) -> Vec<Feed> {
    let specs = [
        "adwin(delta=0.01)",
        "adwin(delta=0.002)",
        "adwin(delta=0.05)",
        "rbm(mini_batch=8, warmup=4, persistence=1)",
    ];
    (0..count)
        .map(|i| {
            let mut gen = RandomRbfGenerator::new(6, 3, 2, 0.0, 70_000 + i as u64);
            let schema = gen.schema().clone();
            let instances = gen.take_instances(total);
            Feed {
                id: format!("soak-{i:05}"),
                schema,
                instances,
                spec: DetectorSpec::parse(specs[i % specs.len()]).unwrap(),
            }
        })
        .collect()
}

fn run_config() -> RunConfig {
    RunConfig { metric_window: 100, detector_batch: 8, ..Default::default() }
}

fn sequential_baseline(feed: &Feed, run: RunConfig, base_seed: u64) -> RunResult {
    let spec = deterministic_spec(DetectorRegistry::global(), base_seed, &feed.id, &feed.spec);
    PipelineBuilder::new()
        .stream(ReplayStream::new(feed.schema.clone(), feed.instances.clone()))
        .stream_label(feed.id.clone())
        .detector_spec(spec)
        .config(run)
        .run()
        .unwrap()
}

fn assert_results_match(context: &str, served: &RunResult, sequential: &RunResult) {
    assert_eq!(served.detections, sequential.detections, "{context}: drift offsets");
    assert_eq!(served.instances, sequential.instances, "{context}: instance count");
    assert_eq!(served.pm_auc, sequential.pm_auc, "{context}: pmAUC");
    assert_eq!(served.pm_gmean, sequential.pm_gmean, "{context}: pmGM");
}

fn ingest_all(client: &StreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(IngestError::Full(rejected)) => {
                batch = rejected;
                std::thread::yield_now();
            }
            Err(IngestError::Closed(_)) => panic!("shard closed during ingest"),
        }
    }
}

/// Restores one stream from its last durable spill (or from scratch when
/// none loads — an injected corrupt read degrades to a longer replay,
/// never to wrong state) and replays the tail up to `accepted`.
fn recover_stream(
    server: &ServerHandle,
    sink: &SnapshotSink,
    feed: &Feed,
    run: RunConfig,
    accepted: usize,
) -> (StreamClient, usize) {
    let loaded = sink.load_checkpoint(&feed.id).unwrap_or(None);
    match loaded {
        Some(checkpoint) => {
            let position = checkpoint.checkpoint.processed().unwrap() as usize;
            assert!(position <= accepted, "{}: durable point beyond the ledger", feed.id);
            let client = server.restore_stream(&checkpoint).unwrap();
            ingest_all(&client, feed.instances[position..accepted].to_vec());
            (client, accepted - position)
        }
        None => {
            let client =
                server.attach_with(&feed.id, feed.schema.clone(), &feed.spec, run).unwrap();
            ingest_all(&client, feed.instances[..accepted].to_vec());
            (client, accepted)
        }
    }
}

fn await_revive(server: &ServerHandle, shard: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.revive_shard(shard) {
            Ok(()) => return,
            Err(e) => {
                assert!(Instant::now() < deadline, "shard {shard} did not die: {e}");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

fn covers_all_kinds(plan: &ChaosPlan) -> bool {
    let mut kinds = [false; 5];
    for event in &plan.events {
        let k = match event.fault {
            ChaosFault::KillShard { .. } => 0,
            ChaosFault::ColdRestart => 1,
            ChaosFault::HibernateStorm { .. } => 2,
            ChaosFault::SpillFaultBurst { .. } => 3,
            ChaosFault::NetFaultBurst { .. } => 4,
        };
        kinds[k] = true;
    }
    kinds.iter().all(|&k| k)
}

fn start_supervisor(
    server: &Arc<ServerHandle>,
    spill_dir: &PathBuf,
    plane: &Arc<FaultPlane>,
) -> rbm_im_serve::SupervisorHandle {
    Supervisor::start(
        Arc::clone(server),
        SnapshotSink::new(spill_dir)
            .expect("spill dir")
            .with_io(Arc::new(ChaosSpillIo::new(Arc::clone(plane)))),
        SupervisorConfig {
            tick: Duration::from_millis(5),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_millis(50),
                jitter: 0.5,
                on_drift: true,
            }),
            // No resize policy: `shard_of` must stay stable across the
            // kill-shard victim selection and per-shard recovery below.
            resize: None,
            tier: Some(TierPolicy {
                idle_after: Some(Duration::from_millis(50)),
                max_hot_streams: None,
                max_demotions_per_tick: 256,
            }),
        },
    )
}

/// Supervisor errors tolerated under chaos: the injected ones, plus the
/// window where a tick raced a killed (not yet revived) shard worker.
fn assert_only_chaos_errors(errors: &[String]) {
    for error in errors {
        assert!(
            error.contains("chaos: injected") || error.contains("unavailable"),
            "unexpected supervisor error: {error}"
        );
    }
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's
/// algorithm) for the `recorded` field of the bench JSON.
fn today_utc() -> String {
    let secs =
        SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

fn main() {
    // Ingest latency recording is obs-gated; the harness needs it for the
    // p99 it writes out (timing never influences results).
    rbm_im_obs::force_enabled(true);
    let start = Instant::now();
    let num_streams = stream_count();
    let total = instances_per_stream();
    let base_seed: u64 = std::env::var("RBM_CHAOS_SOAK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xc4a0_5eed);
    let spill_dir = std::env::var("RBM_SPILL_DIR").map(PathBuf::from).unwrap_or_else(|_| {
        std::env::temp_dir().join(format!("rbm-chaos-soak-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&spill_dir);

    println!("chaos soak: {num_streams} streams x {total} instances, seed {base_seed:#x}");
    println!("runner: {}", serde_json::to_string(&rbm_im_bench::runner_metadata()).unwrap());

    let feeds = fleet(num_streams, total);
    let run = run_config();
    // Soak-safe fault posture (short writes excluded: a short write
    // adopted as durable is loss by construction — the chaos test suite
    // pins their detection instead).
    let plane = Arc::new(FaultPlane::new(FaultConfig {
        hibernate: FaultRate::every(0.01),
        spill_enospc: FaultRate::every(0.05),
        spill_corrupt_read: FaultRate::every(0.05),
        ..FaultConfig::quiet(base_seed)
    }));
    // Chaos telemetry lives in its own registry so it survives cold
    // restarts (a restart replaces the server and its metrics).
    let chaos_metrics = MetricsRegistry::new();
    plane.bind_metrics(&chaos_metrics);
    let sink = SnapshotSink::new(&spill_dir)
        .expect("spill dir")
        .with_io(Arc::new(ChaosSpillIo::new(Arc::clone(&plane))));

    let timeline = (num_streams * total) as u64;
    let plan = (base_seed..)
        .map(|seed| ChaosPlan::generate(seed, timeline, 4, 12))
        .find(covers_all_kinds)
        .expect("a covering plan");
    assert_eq!(
        plan,
        ChaosPlan::from_json(&plan.to_json().unwrap()).unwrap(),
        "the schedule is replayable"
    );
    println!("plan: seed {:#x}, {} events", plan.seed, plan.events.len());

    let serve_config =
        ServeConfig { num_shards: 4, queue_capacity: 2_048, run, ..Default::default() };
    let registry = Arc::new(DetectorRegistry::with_defaults());
    let mut server = Arc::new(ServerHandle::start_with_faults(
        serve_config,
        Arc::clone(&registry),
        Some(Arc::clone(&plane)),
    ));
    let mut supervisor: Option<rbm_im_serve::SupervisorHandle> =
        Some(start_supervisor(&server, &spill_dir, &plane));

    // The ledger. `clients[i]` is Some while stream i is live.
    let mut clients: Vec<Option<StreamClient>> = (0..num_streams).map(|_| None).collect();
    let mut accepted = vec![0usize; num_streams];
    let mut done = vec![false; num_streams];
    let mut attached_upto = 0usize; // staggered attach high-water mark
    let mut cursor = 0u64;
    let mut total_processed = 0u64;
    let mut bitwise_matches = 0usize;
    let mut replayed = 0u64;
    let mut kills = 0u64;
    let mut kills_since_restart = 0usize;
    let mut cold_restarts = 0u64;
    let mut storm_evictions = 0u64;
    let mut failed_spills = 0u64;
    let mut mid_run_detaches = 0usize;
    let mut supervisor_hibernations = 0u64;
    let mut next_event = 0usize;
    let mut storm_cursor = 0usize;
    let mut spill_rotation = 0usize;
    let mut round = 0usize;

    while done.iter().any(|&d| !d) {
        // Staggered attach: a fresh cohort joins every round.
        let wave_end = (attached_upto + ATTACH_WAVE).min(num_streams);
        for i in attached_upto..wave_end {
            let feed = &feeds[i];
            clients[i] = Some(server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap());
        }
        attached_upto = wave_end;

        // Fire every scheduled fault whose timeline point has passed.
        while next_event < plan.events.len() && plan.events[next_event].at_instances <= cursor {
            let fault = plan.events[next_event].fault.clone();
            next_event += 1;
            match fault {
                ChaosFault::KillShard { shard } => {
                    server.drain();
                    let Some(victim) = (0..attached_upto).find(|&i| {
                        !done[i] && accepted[i] < total && server.shard_of(&feeds[i].id) == shard
                    }) else {
                        continue;
                    };
                    plane.arm(FaultSite::ShardPanic, 1);
                    let instance = feeds[victim].instances[accepted[victim]].clone();
                    // Accepted into the queue, lost in the panic, restored
                    // by the replay below.
                    ingest_all(clients[victim].as_ref().unwrap(), vec![instance]);
                    accepted[victim] += 1;
                    cursor += 1;
                    let recovery_started = Instant::now();
                    await_revive(&server, shard);
                    kills += 1;
                    kills_since_restart += 1;
                    for i in 0..attached_upto {
                        let feed = &feeds[i];
                        if done[i] || server.shard_of(&feed.id) != shard {
                            continue;
                        }
                        if accepted[i] > 0 {
                            let (client, replay) =
                                recover_stream(&server, &sink, feed, run, accepted[i]);
                            clients[i] = Some(client);
                            replayed += replay as u64;
                        } else {
                            // Attached but never ingested: nothing to
                            // replay, just re-attach on the fresh worker.
                            clients[i] = Some(
                                server
                                    .attach_with(&feed.id, feed.schema.clone(), &feed.spec, run)
                                    .unwrap(),
                            );
                        }
                    }
                    let elapsed_ns = recovery_started.elapsed().as_nanos() as u64;
                    chaos_metrics
                        .histogram("rbm_chaos_recovery_seconds", &[("fault", "kill_shard")])
                        .record(elapsed_ns);
                    println!(
                        "  [{cursor:>8}] kill shard {shard}: revived + recovered in {:.1} ms",
                        elapsed_ns as f64 / 1e6
                    );
                }
                ChaosFault::ColdRestart => {
                    server.drain();
                    let recovery_started = Instant::now();
                    let report = supervisor.take().expect("supervisor live").stop();
                    assert_only_chaos_errors(&report.errors);
                    supervisor_hibernations += report.hibernations;
                    let report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
                    assert_eq!(report.panicked_shards, kills_since_restart, "kill accounting");
                    kills_since_restart = 0;
                    server = Arc::new(ServerHandle::start_with_faults(
                        serve_config,
                        Arc::clone(&registry),
                        Some(Arc::clone(&plane)),
                    ));
                    supervisor = Some(start_supervisor(&server, &spill_dir, &plane));
                    cold_restarts += 1;
                    let mut restored = 0usize;
                    for i in 0..attached_upto {
                        if done[i] {
                            continue;
                        }
                        let feed = &feeds[i];
                        if accepted[i] > 0 {
                            let (client, replay) =
                                recover_stream(&server, &sink, feed, run, accepted[i]);
                            clients[i] = Some(client);
                            replayed += replay as u64;
                        } else {
                            clients[i] = Some(
                                server
                                    .attach_with(&feed.id, feed.schema.clone(), &feed.spec, run)
                                    .unwrap(),
                            );
                        }
                        restored += 1;
                    }
                    let elapsed_ns = recovery_started.elapsed().as_nanos() as u64;
                    chaos_metrics
                        .histogram("rbm_chaos_recovery_seconds", &[("fault", "cold_restart")])
                        .record(elapsed_ns);
                    println!(
                        "  [{cursor:>8}] cold restart: {restored} streams recovered in {:.1} ms",
                        elapsed_ns as f64 / 1e6
                    );
                }
                ChaosFault::HibernateStorm { streams } => {
                    server.drain();
                    let live: Vec<usize> = (0..attached_upto).filter(|&i| !done[i]).collect();
                    if live.is_empty() {
                        continue;
                    }
                    for _ in 0..streams {
                        let i = live[storm_cursor % live.len()];
                        storm_cursor += 1;
                        server.hibernate_stream(&feeds[i].id).unwrap();
                        storm_evictions += 1;
                    }
                    println!("  [{cursor:>8}] hibernate storm: {streams} forced evictions");
                }
                ChaosFault::SpillFaultBurst { count } => plane.arm(FaultSite::SpillEnospc, count),
                // No net front-end in this soak; armed truncations stay
                // pending harmlessly.
                ChaosFault::NetFaultBurst { count } => plane.arm(FaultSite::NetTruncate, count),
            }
        }

        // One skewed ingest round: hot keys every round, the cold
        // majority staggered across COLD_PERIOD rounds, plus a rotating
        // manual durable-spill pass through the fault-injected sink.
        for i in 0..attached_upto {
            if done[i] || accepted[i] >= total {
                continue;
            }
            let hot = i.is_multiple_of(HOT_STRIDE);
            if !hot && !(round + i).is_multiple_of(COLD_PERIOD) {
                continue;
            }
            let feed = &feeds[i];
            let upto = (accepted[i] + CHUNK).min(total);
            ingest_all(clients[i].as_ref().unwrap(), feed.instances[accepted[i]..upto].to_vec());
            cursor += (upto - accepted[i]) as u64;
            accepted[i] = upto;
            if i % 8 == spill_rotation % 8 {
                if let Ok(checkpoint) = server.checkpoint_stream(&feed.id) {
                    if sink.spill_checkpoint(&checkpoint).is_err() {
                        failed_spills += 1; // injected ENOSPC
                    }
                }
            }
        }
        spill_rotation += 1;

        // Detach churn: completed streams leave mid-run, each verified
        // bitwise against a clean sequential replay on the way out.
        if (0..attached_upto).any(|i| !done[i] && accepted[i] >= total) {
            server.drain();
            for i in 0..attached_upto {
                if done[i] || accepted[i] < total {
                    continue;
                }
                let feed = &feeds[i];
                let result = server.detach(&feed.id).unwrap();
                total_processed += result.instances;
                let sequential = sequential_baseline(feed, run, serve_config.base_seed);
                assert_results_match(&format!("churn {}", feed.id), &result, &sequential);
                bitwise_matches += 1;
                clients[i] = None;
                done[i] = true;
                if attached_upto < num_streams {
                    mid_run_detaches += 1; // left while others still attach
                }
            }
        }
        round += 1;
        if round.is_multiple_of(16) {
            println!(
                "  round {round}: {cursor}/{timeline} accepted, {} detached, \
                 {} injections so far",
                done.iter().filter(|&&d| d).count(),
                plane.total_injected()
            );
        }
    }

    // Fault coverage: the seeded run injected every scheduled kind.
    assert!(kills >= 1, "the plan must kill at least one shard");
    assert!(cold_restarts >= 1, "the plan must cold-restart at least once");
    assert!(storm_evictions >= 16, "the plan must storm the hibernate path");
    assert_eq!(plane.injected(FaultSite::ShardPanic), kills, "every armed panic fired");
    assert!(plane.injected(FaultSite::Hibernate) >= 1, "rate-based hibernate noise fired");
    assert!(plane.injected(FaultSite::SpillEnospc) >= 1, "spill write faults fired");
    assert!(plane.injected(FaultSite::SpillCorruptRead) >= 1, "spill read faults fired");
    assert_eq!(plane.injected(FaultSite::SpillShortWrite), 0, "short writes stay excluded");
    // Detach churn only overlaps the attach ramp when there are more
    // waves than a hot feed needs rounds to finish (holds at the
    // headline 1200x160 scale; reduced smoke runs legitimately skip it).
    if num_streams.div_ceil(ATTACH_WAVE) > total.div_ceil(CHUNK) {
        assert!(mid_run_detaches >= 1, "hot feeds must finish while cohorts still attach");
    }

    // Exact accounting: every accepted instance reached a pipeline
    // exactly once — replays only ever filled the holes faults tore.
    let total_accepted: u64 = accepted.iter().map(|&a| a as u64).sum();
    assert_eq!(total_accepted, timeline, "the ledger covers every instance");
    assert_eq!(total_processed, total_accepted, "processed == accepted");
    assert_eq!(bitwise_matches, num_streams, "every stream verified bitwise");

    // Ingest latency from the obs plane (the final server incarnation —
    // a cold restart replaces the registry with the server).
    let snapshot = server.metrics().snapshot();
    let ingest = snapshot.merged_histogram("rbm_serve_ingest_latency_seconds");
    let chaos_snapshot = chaos_metrics.snapshot();
    let kill_recovery = chaos_snapshot.merged_histogram("rbm_chaos_recovery_seconds");

    let report = supervisor.take().expect("supervisor live").stop();
    assert_only_chaos_errors(&report.errors);
    supervisor_hibernations += report.hibernations;
    let report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    assert_eq!(report.panicked_shards, kills_since_restart, "kill accounting on the final server");
    assert_eq!(report.streams.len(), 0, "every stream already detached through the churn");

    let wall = start.elapsed();
    println!(
        "done: {kills} kills, {cold_restarts} cold restarts, {storm_evictions} storm evictions \
         (+{supervisor_hibernations} supervisor), {failed_spills} failed spills, \
         {replayed} instances replayed, {} total injections, \
         {bitwise_matches}/{num_streams} bitwise, wall {wall:?}",
        plane.total_injected()
    );

    let out = std::env::var("RBM_BENCH_OUT").unwrap_or_else(|_| "BENCH_chaos.json".to_string());
    if out.is_empty() {
        let _ = std::fs::remove_dir_all(&spill_dir);
        return;
    }
    let injections = Value::object(
        FaultSite::ALL
            .iter()
            .map(|site| (site.name(), plane.injected(*site).serialize_value()))
            .collect(),
    );
    let bench = Value::object(vec![
        ("bench", "chaos_soak".serialize_value()),
        ("recorded", today_utc().serialize_value()),
        ("command", "cargo run -p rbm-im-serve --release --example chaos_soak".serialize_value()),
        ("runner", rbm_im_bench::runner_metadata()),
        (
            "workload",
            format!(
                "{num_streams} streams x {total} instances (mixed adwin/rbm fleet, 4 shards, \
                 supervisor with 5ms tick + periodic checkpoints + idle-tiering), staggered \
                 attach waves of {ATTACH_WAVE} with detach-on-complete churn, hot-key skew \
                 1:{HOT_STRIDE} ingesting every round vs every {COLD_PERIOD}th; seeded ChaosPlan \
                 (seed {:#x}, {} events) injecting kill-shard panics, cold restarts, hibernate \
                 storms and spill-fault bursts over rate noise (hibernate 1%, ENOSPC 5%, \
                 corrupt-read 5%); recovery = restore from last durable spill + tail replay",
                plan.seed,
                plan.events.len()
            )
            .serialize_value(),
        ),
        (
            "note",
            format!(
                "Zero-loss contract held: {bitwise_matches}/{num_streams} streams detached \
                 bitwise-identical to clean sequential replays, ledger exact \
                 ({total_processed} processed == {total_accepted} accepted), {replayed} \
                 instances replayed across recoveries. Ingest p99 is the final server \
                 incarnation's (restarts replace the metrics registry); recovery times span \
                 revive/restart through full tail replay of every affected stream."
            )
            .serialize_value(),
        ),
        (
            "results",
            Value::object(vec![
                ("streams", num_streams.serialize_value()),
                ("instances_per_stream", total.serialize_value()),
                ("total_instances", timeline.serialize_value()),
                ("kills", kills.serialize_value()),
                ("cold_restarts", cold_restarts.serialize_value()),
                ("storm_evictions", storm_evictions.serialize_value()),
                ("supervisor_hibernations", supervisor_hibernations.serialize_value()),
                ("failed_spills", failed_spills.serialize_value()),
                ("replayed_instances", replayed.serialize_value()),
                ("mid_run_detaches", mid_run_detaches.serialize_value()),
                ("bitwise_matches", format!("{bitwise_matches}/{num_streams}").serialize_value()),
                ("injections", injections),
                (
                    "recovery_ms",
                    Value::object(vec![
                        ("count", kill_recovery.count().serialize_value()),
                        ("p50", (kill_recovery.quantile(0.5) as f64 / 1e6).serialize_value()),
                        ("p99", (kill_recovery.quantile(0.99) as f64 / 1e6).serialize_value()),
                    ]),
                ),
                (
                    "ingest_latency_us",
                    Value::object(vec![
                        ("count", ingest.count().serialize_value()),
                        ("p50", (ingest.quantile(0.5) as f64 / 1e3).serialize_value()),
                        ("p99", (ingest.quantile(0.99) as f64 / 1e3).serialize_value()),
                    ]),
                ),
                ("wall_seconds", wall.as_secs_f64().serialize_value()),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&bench).expect("bench json");
    std::fs::write(&out, json + "\n").expect("write bench json");
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&spill_dir);
}
