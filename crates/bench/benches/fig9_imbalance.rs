//! Fig. 9 bench: imbalance-ratio sweep (IR 50 vs IR 500) on a compact
//! Scenario-2 stream for RBM-IM and one standard baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbm_im_harness::detectors::DetectorKind;
use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig};
use rbm_im_streams::scenarios::{scenario2, ScenarioConfig};

fn bench_fig9(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("fig9_imbalance");
    group.sample_size(10);
    let run = RunConfig { metric_window: 500, ..Default::default() };
    for ir in [50.0, 500.0] {
        let config = ScenarioConfig {
            num_features: 10,
            num_classes: 5,
            length: 3_000,
            imbalance_ratio: ir,
            n_drifts: 1,
            seed: 13,
            ..Default::default()
        };
        for detector in [DetectorKind::RbmIm, DetectorKind::Rddm] {
            let id = format!("{}-ir{}", detector.name(), ir);
            group.bench_with_input(BenchmarkId::new("scenario2", id), &(), |b, _| {
                b.iter(|| {
                    let scenario = scenario2(&config);
                    PipelineBuilder::new()
                        .boxed_stream(scenario.stream)
                        .detector_spec(detector.spec())
                        .config(run)
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
