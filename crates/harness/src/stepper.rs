//! Per-instance pipeline stepping: the prequential test/detect/train core
//! of [`PipelineBuilder::run`](crate::pipeline::PipelineBuilder::run),
//! exposed as a pausable state machine.
//!
//! [`PipelineBuilder::run`](crate::pipeline::PipelineBuilder::run) owns a
//! stream and drives it to exhaustion; a
//! serving shard owns *many* streams and interleaves them as ingest
//! arrives, so it needs the same loop body with the stream inverted out:
//! feed one [`Instance`], get the events, keep the state. That is
//! [`PipelineStepper`]. `run` itself is implemented on top of this type, so
//! a sequential pipeline run and a sharded serving run execute literally
//! the same code per instance — which is what makes the serving layer's
//! determinism pin (identical drift offsets and metrics at any shard count,
//! matching the sequential run) hold by construction rather than by
//! coincidence.
//!
//! The stepper preserves the run loop's exact semantics, including the
//! batched-detector mode: with `RunConfig::detector_batch > 1`,
//! observations are buffered after training and flushed through
//! `update_batch` when the micro-batch fills ([`PipelineStepper::flush`]
//! handles the trailing partial batch at detach/shutdown, exactly like the
//! trailing flush at stream exhaustion).

use crate::checkpoint::CheckpointError;
use crate::pipeline::{PipelineError, PipelineEvent, RunConfig, RunResult};
use crate::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_classifiers::{argmax, CostSensitivePerceptronTree, OnlineClassifier};
use rbm_im_detectors::{DetectorState, DriftDetector, Observation};
use rbm_im_metrics::{PrequentialEvaluator, PrequentialSnapshot};
use rbm_im_streams::{Instance, StreamSchema};
use std::time::Instant;

/// The prequential loop body as a feedable state machine: one classifier,
/// one detector, one evaluator, plus the reused buffers of the hot path.
/// Events (drift / warning / snapshot) are delivered to the `on_event`
/// callback passed to each call, using the same borrowed
/// [`PipelineEvent`] type the builder's sinks receive.
pub struct PipelineStepper<C: OnlineClassifier = CostSensitivePerceptronTree> {
    classifier: C,
    detector: Box<dyn DriftDetector + Send>,
    detector_label: String,
    config: RunConfig,
    batch_size: usize,
    evaluator: PrequentialEvaluator,
    detections: Vec<u64>,
    detector_update_seconds: f64,
    test_seconds: f64,
    train_seconds: f64,
    processed: u64,
    // Buffers reused across the whole stream: per-class scores, per-signal
    // drift attribution, batched observations and their positions.
    scores: Vec<f64>,
    drifted: Vec<usize>,
    drift_offsets: Vec<usize>,
    pending: Vec<(Instance, usize)>,
    last_state: DetectorState,
}

impl PipelineStepper<CostSensitivePerceptronTree> {
    /// A stepper with the paper's base classifier (CSPT built from the
    /// schema) and the detector resolved from `spec` against `registry`.
    pub fn from_spec(
        registry: &DetectorRegistry,
        spec: &DetectorSpec,
        schema: &StreamSchema,
        config: RunConfig,
    ) -> Result<Self, PipelineError> {
        let detector = registry.build(spec, schema.num_features, schema.num_classes)?;
        let classifier = CostSensitivePerceptronTree::new(schema.num_features, schema.num_classes);
        Ok(PipelineStepper::new(classifier, detector, spec.label(), schema.num_classes, config))
    }
}

impl<C: OnlineClassifier> PipelineStepper<C> {
    /// Assembles a stepper from pre-built parts.
    pub fn new(
        classifier: C,
        detector: Box<dyn DriftDetector + Send>,
        detector_label: String,
        num_classes: usize,
        config: RunConfig,
    ) -> Self {
        let batch_size = config.detector_batch.max(1);
        PipelineStepper {
            classifier,
            detector,
            detector_label,
            config,
            batch_size,
            evaluator: PrequentialEvaluator::new(num_classes, config.metric_window),
            detections: Vec::new(),
            detector_update_seconds: 0.0,
            test_seconds: 0.0,
            train_seconds: 0.0,
            processed: 0,
            scores: Vec::with_capacity(num_classes),
            drifted: Vec::with_capacity(num_classes),
            drift_offsets: Vec::with_capacity(batch_size),
            pending: Vec::with_capacity(batch_size),
            last_state: DetectorState::Stable,
        }
    }

    /// Processes one instance: test (predict + record metrics), detect,
    /// train — the exact loop body of a sequential pipeline run. Drift /
    /// warning / snapshot events fire into `on_event` as they occur.
    pub fn step(&mut self, instance: Instance, on_event: &mut dyn FnMut(&PipelineEvent<'_>)) {
        // Test.
        let test_start = Instant::now();
        self.classifier.predict_scores_into(&instance.features, &mut self.scores);
        let predicted = argmax(&self.scores);
        self.evaluator.record(instance.class, predicted, &self.scores);
        self.test_seconds += test_start.elapsed().as_secs_f64();

        // Detect (per-instance mode): straight through `update`, so drift
        // reaction (classifier reset) happens before this instance is
        // learned, exactly like the paper's protocol. Batched mode instead
        // buffers after training, below.
        if self.batch_size == 1 {
            let observation = Observation {
                features: &instance.features,
                true_class: instance.class,
                predicted_class: predicted,
                correct: predicted == instance.class,
            };
            let update_start = Instant::now();
            let state = self.detector.update(&observation);
            self.detector_update_seconds += update_start.elapsed().as_secs_f64();
            if state.is_drift() {
                self.detections.push(instance.index);
                self.detector.drifted_classes_into(&mut self.drifted);
                on_event(&PipelineEvent::Drift {
                    position: instance.index,
                    classes: &self.drifted,
                });
                if self.config.reset_on_drift {
                    self.classifier.reset();
                }
            } else if state.is_warning() && !self.last_state.is_warning() {
                on_event(&PipelineEvent::Warning { position: instance.index });
            }
            self.last_state = state;
        }

        // Train.
        let train_start = Instant::now();
        self.classifier.learn(&instance);
        self.train_seconds += train_start.elapsed().as_secs_f64();
        self.processed += 1;

        if let Some(every) = self.config.snapshot_every {
            if every > 0 && self.processed.is_multiple_of(every) {
                on_event(&PipelineEvent::Snapshot {
                    position: instance.index,
                    snapshot: self.evaluator.snapshot(),
                });
            }
        }

        // Batched detection: move the (already learned) instance into the
        // pending buffer — no feature clone — and flush through
        // `update_batch` when full. A drift found in the flush resets the
        // classifier from the next instance on (batching already trades
        // reaction latency for throughput; per-instance mode keeps the
        // paper's exact reset-before-learn ordering).
        if self.batch_size > 1 {
            self.pending.push((instance, predicted));
            if self.pending.len() >= self.batch_size {
                self.flush(on_event);
            }
        }
    }

    /// Flushes a pending partial detector micro-batch (no-op in
    /// per-instance mode or when nothing is pending). A sequential run
    /// flushes at stream exhaustion; a serving shard flushes at stream
    /// detach and server shutdown.
    pub fn flush(&mut self, on_event: &mut dyn FnMut(&PipelineEvent<'_>)) {
        if self.pending.is_empty() {
            return;
        }
        let observations: Vec<Observation<'_>> = self
            .pending
            .iter()
            .map(|(instance, predicted)| Observation {
                features: &instance.features,
                true_class: instance.class,
                predicted_class: *predicted,
                correct: *predicted == instance.class,
            })
            .collect();
        let update_start = Instant::now();
        let state = self.detector.update_batch(&observations, &mut self.drift_offsets);
        self.detector_update_seconds += update_start.elapsed().as_secs_f64();
        drop(observations);
        if !self.drift_offsets.is_empty() {
            self.detector.drifted_classes_into(&mut self.drifted);
            for i in 0..self.drift_offsets.len() {
                let position = self.pending[self.drift_offsets[i]].0.index;
                self.detections.push(position);
                on_event(&PipelineEvent::Drift { position, classes: &self.drifted });
            }
            if self.config.reset_on_drift {
                self.classifier.reset();
            }
        } else if state.is_warning() && !self.last_state.is_warning() {
            on_event(&PipelineEvent::Warning {
                position: self.pending.last().expect("pending not empty").0.index,
            });
        }
        self.last_state = state;
        self.pending.clear();
    }

    /// Number of instances processed so far.
    pub fn instances(&self) -> u64 {
        self.processed
    }

    /// Positions at which the detector signalled drift so far.
    pub fn detections(&self) -> &[u64] {
        &self.detections
    }

    /// The detector label recorded in results.
    pub fn detector_label(&self) -> &str {
        &self.detector_label
    }

    /// Current windowed metrics.
    pub fn snapshot(&self) -> PrequentialSnapshot {
        self.evaluator.snapshot()
    }

    /// Flushes any pending micro-batch (emitting its events) and closes the
    /// stepper into a [`RunResult`], returning the detector alongside so
    /// callers can reclaim state (the serving layer returns pooled RBM
    /// workspaces this way).
    pub fn finish(
        mut self,
        stream_label: impl Into<String>,
        on_event: &mut dyn FnMut(&PipelineEvent<'_>),
    ) -> (RunResult, Box<dyn DriftDetector + Send>) {
        self.flush(on_event);
        let snapshot = self.evaluator.snapshot();
        let result = RunResult {
            detector: self.detector_label,
            stream: stream_label.into(),
            pm_auc: self.evaluator.average_pm_auc() * 100.0,
            pm_gmean: self.evaluator.average_pm_gmean() * 100.0,
            accuracy: snapshot.accuracy * 100.0,
            kappa: snapshot.kappa,
            instances: self.processed,
            detections: self.detections,
            detector_update_seconds: self.detector_update_seconds,
            test_seconds: self.test_seconds,
            train_seconds: self.train_seconds,
        };
        (result, self.detector)
    }

    /// Mutable access to the detector (tests / diagnostics; the serving
    /// layer uses it to install pooled workspaces after construction).
    pub fn detector_mut(&mut self) -> &mut (dyn DriftDetector + Send) {
        &mut *self.detector
    }

    /// The stepper's run configuration.
    pub fn config(&self) -> RunConfig {
        self.config
    }

    /// Captures the stepper's complete mutable state as a serde value: the
    /// classifier, the detector, the prequential evaluator, the partially
    /// filled detector micro-batch (`pending` — instances already learned
    /// but not yet seen by the detector), and the run counters. Restored
    /// with [`PipelineStepper::restore_state`] onto a stepper freshly built
    /// from the same spec / schema / config, stepping continues
    /// **bitwise-identically** to an uninterrupted run — this is the
    /// mechanism behind `rbm-im-serve`'s live shard migration and
    /// restart-from-disk. Fails if the classifier or detector does not
    /// implement the snapshot contract.
    pub fn state_snapshot(&self) -> Result<serde::Value, CheckpointError> {
        use serde::{Serialize, Value};
        let classifier = self.classifier.snapshot_state().ok_or_else(|| {
            CheckpointError::Unsupported("the classifier does not implement snapshot_state".into())
        })?;
        let detector = self.detector.snapshot_state().ok_or_else(|| {
            CheckpointError::Unsupported(format!(
                "detector `{}` does not implement snapshot_state",
                self.detector.name()
            ))
        })?;
        Ok(Value::object(vec![
            ("classifier", classifier),
            ("detector", detector),
            ("evaluator", self.evaluator.snapshot_state()),
            ("detections", self.detections.serialize_value()),
            ("detector_update_seconds", self.detector_update_seconds.serialize_value()),
            ("test_seconds", self.test_seconds.serialize_value()),
            ("train_seconds", self.train_seconds.serialize_value()),
            ("processed", self.processed.serialize_value()),
            ("pending", self.pending.serialize_value()),
            ("last_state", self.last_state.serialize_value()),
        ]))
    }

    /// Restores state captured by [`PipelineStepper::state_snapshot`] onto
    /// this stepper (which must have been built from the same detector
    /// spec, stream schema, and run configuration).
    pub fn restore_state(&mut self, state: &serde::Value) -> Result<(), CheckpointError> {
        self.classifier.restore_state(state.req("classifier")?)?;
        self.detector.restore_state(state.req("detector")?)?;
        self.evaluator.restore_state(state.req("evaluator")?)?;
        self.detections = state.field("detections")?;
        self.detector_update_seconds = state.field("detector_update_seconds")?;
        self.test_seconds = state.field("test_seconds")?;
        self.train_seconds = state.field("train_seconds")?;
        self.processed = state.field("processed")?;
        self.pending = state.field("pending")?;
        self.last_state = state.field("last_state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::DetectorKind;
    use rbm_im_streams::scenarios::{scenario1, ScenarioConfig};
    use rbm_im_streams::DataStream;

    fn collect_events(event: &PipelineEvent<'_>, drifts: &mut Vec<u64>, warnings: &mut u64) {
        match event {
            PipelineEvent::Drift { position, .. } => drifts.push(*position),
            PipelineEvent::Warning { .. } => *warnings += 1,
            PipelineEvent::Snapshot { .. } => {}
        }
    }

    /// The stepper driven manually must agree exactly with
    /// `PipelineBuilder::run` over the same stream — in both per-instance
    /// and micro-batched detector modes.
    #[test]
    fn stepping_matches_builder_run() {
        for detector_batch in [1usize, 37] {
            let config = RunConfig { metric_window: 500, detector_batch, ..Default::default() };
            let scenario = scenario1(&ScenarioConfig {
                length: 6_000,
                num_features: 8,
                num_classes: 3,
                imbalance_ratio: 10.0,
                n_drifts: 1,
                ..Default::default()
            });
            let mut stream = scenario.stream;

            let schema = stream.schema().clone();
            let mut stepper = PipelineStepper::from_spec(
                DetectorRegistry::global(),
                &DetectorKind::RbmIm.spec(),
                &schema,
                config,
            )
            .unwrap();
            let mut drifts = Vec::new();
            let mut warnings = 0u64;
            while let Some(instance) = stream.next_instance() {
                stepper.step(instance, &mut |e| collect_events(e, &mut drifts, &mut warnings));
            }
            let (stepped, _detector) = stepper.finish(schema.name.clone(), &mut |e| {
                collect_events(e, &mut drifts, &mut warnings)
            });

            stream.restart();
            let run = crate::pipeline::PipelineBuilder::new()
                .stream(stream)
                .detector_spec(DetectorKind::RbmIm.spec())
                .config(config)
                .run()
                .unwrap();

            assert_eq!(stepped.detections, run.detections, "batch={detector_batch}");
            assert_eq!(drifts, run.detections);
            assert_eq!(stepped.instances, run.instances);
            assert_eq!(stepped.pm_auc, run.pm_auc);
            assert_eq!(stepped.pm_gmean, run.pm_gmean);
            assert_eq!(stepped.accuracy, run.accuracy);
            assert_eq!(stepped.kappa, run.kappa);
        }
    }
}
