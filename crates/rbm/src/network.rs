//! The three-layer Restricted Boltzmann Machine underlying RBM-IM, on flat
//! matrix kernels.
//!
//! Architecture (paper Eq. 6–12): a visible layer `v` of `V` units holding
//! the normalized feature vector, a hidden layer `h` of `H` binary units and
//! a class layer `z` of `Z` softmax units. Connections exist between `v`–`h`
//! (weights `w`) and `h`–`z` (weights `u`); there are no intra-layer
//! connections. Training minimizes the class-balanced negative
//! log-likelihood (Eq. 13) with Contrastive Divergence (CD-k, Eq. 16–21) on
//! mini-batches.
//!
//! Unlike the retained per-instance reference ([`crate::reference`]), this
//! implementation stores every matrix flat and row-major
//! ([`crate::linalg::DenseMatrix`]) and runs CD-k **batch-level**: the
//! mini-batch is stacked into feature-major `V×N` / `Z×N` matrices (the
//! batch is the contiguous SIMD dimension) and the positive phase, the
//! Gibbs chain, and the reconstruction errors each become a handful of
//! GEMMs over the whole batch. All scratch lives in a reusable
//! [`Workspace`], so steady-state training performs zero heap allocations.
//! The kernels fix their accumulation order (see [`crate::linalg`]) and the
//! Gibbs-chain uniforms are pre-drawn per instance in arrival order, so the
//! results — including the RNG stream — are bitwise-identical to the
//! reference implementation for training, reconstruction errors, and the
//! layer probabilities. The one deliberate exception is
//! [`RbmNetwork::predict`]: it hoists the class-independent `v·w` term out
//! of the class loop (an O(Z·V·H) → O((V+Z)·H) saving), which re-associates
//! the free-energy sum — predictions agree with the reference up to
//! last-ulp rounding of near-exact ties, not bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbm_im_streams::{Instance, MiniBatch};

use crate::linalg::{
    axpy, cdk_bias_gradient_with, cdk_weight_gradient_with, dot, gemm2_acc_with, gemm_acc_with,
    gemv_acc, gemv_t_acc, momentum_update, sigmoid_in_place, sigmoid_matrix_with,
    softmax_cols_in_place_with, softmax_in_place, transpose_into, DenseMatrix, KernelPolicy,
    ParallelMode,
};

/// Hyper-parameters of the RBM network (the RBM-IM rows of Tab. II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbmNetworkConfig {
    /// Number of hidden units, expressed as a fraction of the visible units
    /// (the paper's grid: 0.25·V … 1.0·V). The absolute count is
    /// `max(4, fraction * num_features)`.
    pub hidden_fraction: f64,
    /// Absolute hidden-unit count override. When `Some`, it takes precedence
    /// over [`RbmNetworkConfig::hidden_fraction`] (the registry's
    /// `rbm(hidden=60)` spec parameter lands here); the floor of 4 units
    /// still applies.
    pub hidden_units: Option<usize>,
    /// Learning rate η of the gradient updates (Eq. 17).
    pub learning_rate: f64,
    /// Number of Gibbs sampling steps k in CD-k.
    pub gibbs_steps: usize,
    /// β parameter of the effective-number-of-samples class-balanced loss;
    /// weights are `(1 − β) / (1 − β^{n_c})`.
    pub class_balance_beta: f64,
    /// Weight-decay (L2) coefficient applied to the connection weights.
    pub weight_decay: f64,
    /// Momentum applied to gradient updates (0 disables it).
    pub momentum: f64,
    /// RNG seed.
    pub seed: u64,
    /// Row-parallelism mode of the batched CD-k kernels. Never changes
    /// results — parallel-exact is bitwise-identical to sequential at any
    /// thread count — so it is an execution knob, not a hyper-parameter.
    /// The default comes from the `RBM_KERNEL_PARALLEL` env var
    /// (`auto`/`off`/`on`; unset = `Auto`).
    pub parallel: ParallelMode,
    /// Upper bound on threads the kernels may use (0 = whole pool); caps,
    /// never grows, the process-wide `rayon` pool.
    pub max_threads: usize,
    /// Opt-in fast-math: the batched sigmoid/softmax kernels use the
    /// polynomial [`crate::linalg::fast_exp`] instead of `f64::exp`.
    /// Results are only tolerance-equivalent (≤ 1e-9 per activation) to
    /// the exact path, so this **does** leave the bitwise contract —
    /// deliberately, and only when asked for.
    pub fast_math: bool,
    /// Opt-in CD-k kernel timing: the policy-dispatched kernels record
    /// their durations into the global metrics registry as
    /// `rbm_kernel_seconds{kernel}` (see [`KernelPolicy::timing`]). Pure
    /// observation — never changes results — but it pays a clock read and
    /// a histogram update per kernel call, so it stays off by default.
    pub kernel_timing: bool,
}

impl Default for RbmNetworkConfig {
    fn default() -> Self {
        RbmNetworkConfig {
            hidden_fraction: 0.5,
            hidden_units: None,
            learning_rate: 0.05,
            gibbs_steps: 1,
            class_balance_beta: 0.99,
            weight_decay: 1e-4,
            momentum: 0.5,
            seed: 42,
            parallel: ParallelMode::from_env(),
            max_threads: 0,
            fast_math: false,
            kernel_timing: false,
        }
    }
}

/// Reusable scratch buffers of the batched CD-k trainer.
///
/// The batched data flow stacks a mini-batch of `N` instances into
/// **feature-major** matrices — layer units × batch, so the batch is the
/// contiguous dimension every kernel vectorizes over (layer widths are
/// often single-digit; the batch is 25–100) — and pushes the whole stack
/// through each phase at once:
///
/// ```text
/// pack       v0: V×N  (normalized features)   z0: Z×N  (one-hot labels)
/// positive   h0 = σ(b ⊕ wᵀ·v0 + u·z0)                — 1 fused GEMM pair
/// sample     hs = 1[uniforms < h0]     (uniforms pre-drawn per instance)
/// gibbs ×k   vk = σ(a ⊕ w·hs)   zk = softmax(c ⊕ uᵀ·hs)      — 2 GEMMs
///            hk = σ(b ⊕ wᵀ·vk + u·zk)               — 1 fused GEMM pair
/// gradient   dw += Σₙ wₙ·(v0ₙh0ₙᵀ − vkₙhkₙᵀ)   (batch-reduced fused
///            du += Σₙ wₙ·(h0ₙz0ₙᵀ − hkₙzkₙᵀ)      outer products)
/// update     w/u/a/b/c via fused momentum + weight-decay kernels
/// ```
///
/// (`⊕` = bias broadcast across the batch, `wₙ` = the class-balanced weight
/// of instance `n`'s class, computed once per batch into `class_weights`.)
///
/// Every buffer is re-shaped with [`DenseMatrix::resize`] /
/// [`DenseMatrix::reshape_uninit`] / `Vec::resize`, which never release
/// capacity: after the first mini-batch of a given shape, training touches
/// the allocator exactly zero times (`crates/rbm/tests/no_alloc.rs`
/// enforces this with a counting allocator).
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Normalized visible batch, feature-major `V×N`.
    v0: DenseMatrix,
    /// One-hot class batch, `Z×N`.
    z0: DenseMatrix,
    /// Positive-phase hidden probabilities, `H×N`.
    h0: DenseMatrix,
    /// Hidden samples driving the Gibbs chain, `H×N`.
    hs: DenseMatrix,
    /// Reconstructed visible batch, `V×N`.
    vk: DenseMatrix,
    /// Reconstructed class batch, `Z×N`.
    zk: DenseMatrix,
    /// Negative-phase hidden probabilities, `H×N`.
    hk: DenseMatrix,
    /// Pre-drawn sampling uniforms, `N×(k·H)`, drawn instance-major so the
    /// RNG stream matches the reference's per-instance draw order exactly.
    uniforms: DenseMatrix,
    /// Cached transpose `wᵀ: H×V`, refreshed once per batch.
    wt: DenseMatrix,
    /// Cached transpose `uᵀ: Z×H`, refreshed once per batch.
    ut: DenseMatrix,
    /// Gradient accumulator for `w`, `V×H`.
    dw: DenseMatrix,
    /// Gradient accumulator for `u`, `H×Z`.
    du: DenseMatrix,
    /// Bias gradient accumulators.
    da: Vec<f64>,
    db: Vec<f64>,
    dc: Vec<f64>,
    /// Per-class loss weights, computed once per batch (length `Z`).
    class_weights: Vec<f64>,
    /// Per-packed-instance loss weights (length `N`), gathered from
    /// `class_weights` for the blocked gradient kernels.
    instance_weights: Vec<f64>,
    /// Classes of the packed (valid-label) instances, in arrival order.
    packed_classes: Vec<usize>,
    /// Per-class error sums/counts for `batch_reconstruction_errors`.
    err_sums: Vec<f64>,
    err_counts: Vec<usize>,
    /// Staging buffers for the `MiniBatch`-based entry points.
    staged_features: Vec<f64>,
    staged_classes: Vec<usize>,
}

/// The three-layer RBM on flat storage.
#[derive(Debug, Clone)]
pub struct RbmNetwork {
    num_visible: usize,
    num_hidden: usize,
    num_classes: usize,
    config: RbmNetworkConfig,
    /// Visible–hidden weights, `V×H` row-major (`w[i·H + j]` connects `v_i`
    /// to `h_j`).
    w: DenseMatrix,
    /// Hidden–class weights, `H×Z` row-major (`u[j·Z + k]` connects `h_j`
    /// to `z_k`).
    u: DenseMatrix,
    /// Visible biases `a_i`.
    a: Vec<f64>,
    /// Hidden biases `b_j`.
    b: Vec<f64>,
    /// Class biases `c_k`.
    c: Vec<f64>,
    /// Momentum buffers (same shapes as `w` / `u`).
    w_vel: DenseMatrix,
    u_vel: DenseMatrix,
    /// Per-class instance counts (for the class-balanced loss weights).
    class_counts: Vec<u64>,
    /// Online per-feature min/max used to normalize inputs into [0, 1].
    feature_min: Vec<f64>,
    feature_max: Vec<f64>,
    rng: StdRng,
    batches_trained: u64,
    workspace: Workspace,
}

impl RbmNetwork {
    /// Creates an untrained network for the given schema.
    pub fn new(num_features: usize, num_classes: usize, config: RbmNetworkConfig) -> Self {
        assert!(num_features > 0);
        assert!(num_classes >= 2);
        assert!(config.hidden_fraction > 0.0);
        assert!(config.learning_rate > 0.0);
        assert!(config.gibbs_steps >= 1);
        assert!(config.class_balance_beta > 0.0 && config.class_balance_beta < 1.0);
        let num_hidden = hidden_count(num_features, &config);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = 0.1;
        // Row-major fill order matches the reference's nested loops, so both
        // implementations consume the same RNG stream at construction.
        let w =
            DenseMatrix::from_fn(num_features, num_hidden, |_, _| (rng.gen::<f64>() - 0.5) * scale);
        let u =
            DenseMatrix::from_fn(num_hidden, num_classes, |_, _| (rng.gen::<f64>() - 0.5) * scale);
        RbmNetwork {
            num_visible: num_features,
            num_hidden,
            num_classes,
            config,
            w,
            u,
            a: vec![0.0; num_features],
            b: vec![0.0; num_hidden],
            c: vec![0.0; num_classes],
            w_vel: DenseMatrix::zeros(num_features, num_hidden),
            u_vel: DenseMatrix::zeros(num_hidden, num_classes),
            class_counts: vec![0; num_classes],
            feature_min: vec![f64::INFINITY; num_features],
            feature_max: vec![f64::NEG_INFINITY; num_features],
            rng,
            batches_trained: 0,
            workspace: Workspace::default(),
        }
    }

    /// Number of hidden units.
    pub fn num_hidden(&self) -> usize {
        self.num_hidden
    }

    /// Number of mini-batches trained on so far.
    pub fn batches_trained(&self) -> u64 {
        self.batches_trained
    }

    /// Per-class instance counts accumulated during training.
    pub fn class_counts(&self) -> &[u64] {
        &self.class_counts
    }

    /// The visible–hidden weight matrix (`V×H`, row-major). Exposed for
    /// diagnostics and the equivalence suite.
    pub fn w(&self) -> &DenseMatrix {
        &self.w
    }

    /// The hidden–class weight matrix (`H×Z`, row-major).
    pub fn u(&self) -> &DenseMatrix {
        &self.u
    }

    /// Visible biases.
    pub fn a(&self) -> &[f64] {
        &self.a
    }

    /// Hidden biases.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Class biases.
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Min–max normalizes one feature value using the running range of
    /// feature `i` (features never observed to vary map to 0.5).
    #[inline]
    fn normalize_one(&self, i: usize, x: f64) -> f64 {
        normalize_value(self.feature_min[i], self.feature_max[i], x)
    }

    fn observe_ranges(&mut self, features: &[f64]) {
        // Branch-free min/max so the loop vectorizes (equivalent to the
        // reference's comparisons for all non-NaN inputs).
        for ((&x, lo), hi) in
            features.iter().zip(self.feature_min.iter_mut()).zip(self.feature_max.iter_mut())
        {
            *lo = lo.min(x);
            *hi = hi.max(x);
        }
    }

    /// Hidden activation probabilities given visible values and a class
    /// one-hot/soft encoding (Eq. 10). Single-vector form used by tests and
    /// the equivalence suite; the training path computes whole batches with
    /// one GEMM instead.
    pub fn hidden_probabilities(&self, v: &[f64], z: &[f64]) -> Vec<f64> {
        let mut act = self.b.clone();
        gemv_t_acc(&mut act, &self.w, v);
        gemv_acc(&mut act, &self.u, z);
        sigmoid_in_place(&mut act);
        act
    }

    /// Visible reconstruction probabilities given hidden values (Eq. 11).
    pub fn visible_probabilities(&self, h: &[f64]) -> Vec<f64> {
        let mut act = self.a.clone();
        gemv_acc(&mut act, &self.w, h);
        sigmoid_in_place(&mut act);
        act
    }

    /// Class reconstruction probabilities (softmax, Eq. 12).
    pub fn class_probabilities(&self, h: &[f64]) -> Vec<f64> {
        let mut act = self.c.clone();
        gemv_t_acc(&mut act, &self.u, h);
        softmax_in_place(&mut act);
        act
    }

    /// Class-balanced loss weight of a class (Eq. 13): the inverse effective
    /// number of samples, normalized so the average weight over observed
    /// classes is 1. Diagnostic entry point; the training loop computes all
    /// classes at once with [`RbmNetwork::class_weights_into`].
    pub fn class_weight(&self, class: usize) -> f64 {
        let mut weights = vec![0.0; self.num_classes];
        self.class_weights_into(&mut weights);
        weights[class]
    }

    /// Computes the class-balanced loss weight of every class into `out`
    /// (resized to the class count). One call per mini-batch replaces the
    /// seed's per-instance recomputation, which allocated a fresh `raw`
    /// vector over all classes for every instance.
    pub fn class_weights_into(&self, out: &mut Vec<f64>) {
        let beta = self.config.class_balance_beta;
        out.clear();
        out.extend(self.class_counts.iter().map(|&n| {
            if n == 0 {
                // Unseen classes get the weight of a single-instance class.
                (1.0 - beta) / (1.0 - beta.powi(1))
            } else {
                (1.0 - beta) / (1.0 - beta.powi(n.min(i32::MAX as u64) as i32))
            }
        }));
        let mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        if mean <= 0.0 {
            out.fill(1.0);
        } else {
            for w in out.iter_mut() {
                *w /= mean;
            }
        }
    }

    /// Predicts the class of an instance by comparing free energies: for
    /// each candidate class `k` the free energy of the configuration
    /// `(v, z = 1_k)` is computed and the lowest-energy class wins (the
    /// standard discriminative read-out of a classification RBM). The
    /// shared `v·w` contribution is hoisted out of the class loop (one
    /// transposed GEMV instead of `Z` of them) — this re-associates the
    /// free-energy sum relative to the reference, so predictions match it
    /// up to last-ulp rounding of near-exact ties rather than bitwise (the
    /// detector path never calls this). Used by examples and tests; RBM-IM
    /// itself is a detector, not the stream classifier.
    pub fn predict(&self, features: &[f64]) -> usize {
        let v: Vec<f64> =
            features.iter().enumerate().map(|(i, &x)| self.normalize_one(i, x)).collect();
        let visible_term = dot(&v, &self.a);
        // act[j] = b_j + Σ_i v_i w_ij, shared across classes.
        let mut act = self.b.clone();
        gemv_t_acc(&mut act, &self.w, &v);
        let mut best = (0usize, f64::NEG_INFINITY);
        for k in 0..self.num_classes {
            // -F(v, k) = Σ_i a_i v_i + c_k + Σ_j softplus(act_j + u_jk)
            let mut neg_free_energy = visible_term + self.c[k];
            for (j, &act_j) in act.iter().enumerate() {
                let x = act_j + self.u.get(j, k);
                // softplus(x) = ln(1 + e^x), computed stably.
                neg_free_energy += if x > 30.0 { x } else { (1.0 + x.exp()).ln() };
            }
            if neg_free_energy > best.1 {
                best = (k, neg_free_energy);
            }
        }
        best.0
    }

    /// Packs the valid-label instances of a flat batch into the given
    /// workspace's `v0` / `z0` matrices (normalizing features) and records
    /// their classes. Returns the number of packed rows.
    fn pack_batch_in(&self, ws: &mut Workspace, features: &[f64], classes: &[usize]) -> usize {
        assert_eq!(
            features.len(),
            classes.len() * self.num_visible,
            "flat batch shape mismatch: expected {} features per instance",
            self.num_visible
        );
        let kept = classes.iter().filter(|&&c| c < self.num_classes).count();
        ws.v0.reshape_uninit(self.num_visible, kept);
        ws.z0.resize(self.num_classes, kept);
        ws.packed_classes.clear();
        let mut col = 0;
        for (n, &class) in classes.iter().enumerate() {
            if class >= self.num_classes {
                continue;
            }
            let src = &features[n * self.num_visible..(n + 1) * self.num_visible];
            // Writes walk the instance's column of the feature-major matrix.
            for (i, &x) in src.iter().enumerate() {
                *ws.v0.get_mut(i, col) =
                    normalize_value(self.feature_min[i], self.feature_max[i], x);
            }
            *ws.z0.get_mut(class, col) = 1.0;
            ws.packed_classes.push(class);
            col += 1;
        }
        kept
    }

    /// Stages a `MiniBatch` into flat buffers and hands it to `run`.
    fn with_staged<R>(
        &mut self,
        batch: &MiniBatch,
        run: impl FnOnce(&mut Self, &[f64], &[usize]) -> R,
    ) -> R {
        let mut features = std::mem::take(&mut self.workspace.staged_features);
        let mut classes = std::mem::take(&mut self.workspace.staged_classes);
        features.clear();
        classes.clear();
        for instance in &batch.instances {
            assert_eq!(instance.features.len(), self.num_visible, "feature count mismatch");
            features.extend_from_slice(&instance.features);
            classes.push(instance.class);
        }
        let out = run(self, &features, &classes);
        self.workspace.staged_features = features;
        self.workspace.staged_classes = classes;
        out
    }

    /// Reconstruction error of a single labeled instance (Eq. 22–26): the
    /// root of the summed squared differences between the instance (features
    /// plus one-hot label) and its reconstruction, scored against
    /// caller-owned scratch. Scoring never mutates the model, so read paths
    /// never need `&mut` access to the network and one [`Workspace`] (e.g.
    /// checked out of a [`WorkspacePool`](crate::pool::WorkspacePool)) can
    /// serve any number of networks. Allocation-free once `ws` has grown to
    /// the largest shape it has seen. This is the only single-instance
    /// scoring surface — the old `&mut self` variant that borrowed the
    /// network's internal scratch is gone.
    pub fn reconstruction_error_with(&self, ws: &mut Workspace, instance: &Instance) -> f64 {
        assert_eq!(instance.features.len(), self.num_visible, "feature count mismatch");
        // Single-row batch through the same kernels; invalid labels keep an
        // all-zero class row (matching the reference).
        ws.v0.reshape_uninit(self.num_visible, 1);
        ws.z0.resize(self.num_classes, 1);
        for (i, &x) in instance.features.iter().enumerate() {
            *ws.v0.get_mut(i, 0) = normalize_value(self.feature_min[i], self.feature_max[i], x);
        }
        if instance.class < self.num_classes {
            *ws.z0.get_mut(instance.class, 0) = 1.0;
        }
        self.refresh_transposes_in(ws);
        self.reconstruct_packed_in(ws, 1);
        self.packed_column_error_in(ws, 0).sqrt()
    }

    /// Squared reconstruction error of packed instance (column) `n`:
    /// visible terms in ascending feature order, then class terms in
    /// ascending class order — the reference's accumulation order
    /// (Eq. 22–26).
    fn packed_column_error_in(&self, ws: &Workspace, n: usize) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.num_visible {
            let d = ws.v0.get(i, n) - ws.vk.get(i, n);
            acc += d * d;
        }
        for k in 0..self.num_classes {
            let d = ws.z0.get(k, n) - ws.zk.get(k, n);
            acc += d * d;
        }
        acc
    }

    /// Average reconstruction error of each class over a flat mini-batch —
    /// the per-class detection pass (Eq. 27) — against caller-owned scratch:
    /// `features` holds `classes.len()` rows of `num_features` values;
    /// classes absent from the batch yield `None`. Scoring never mutates
    /// the model, so concurrent read paths can share one network and pool
    /// their workspaces. Clears and fills `out`; allocation-free once `out`
    /// and the workspace have grown to shape. This is the only batch
    /// scoring surface — the old `&mut self` variants
    /// (`batch_reconstruction_errors`, `reconstruction_errors_flat_into`)
    /// that borrowed the network's internal scratch are gone.
    pub fn reconstruction_errors_flat_with(
        &self,
        ws: &mut Workspace,
        features: &[f64],
        classes: &[usize],
        out: &mut Vec<Option<f64>>,
    ) {
        let kept = self.pack_batch_in(ws, features, classes);
        self.refresh_transposes_in(ws);
        self.reconstruct_packed_in(ws, kept);
        ws.err_sums.clear();
        ws.err_sums.resize(self.num_classes, 0.0);
        ws.err_counts.clear();
        ws.err_counts.resize(self.num_classes, 0);
        for n in 0..kept {
            let err = self.packed_column_error_in(ws, n).sqrt();
            let class = ws.packed_classes[n];
            ws.err_sums[class] += err;
            ws.err_counts[class] += 1;
        }
        out.clear();
        out.extend(ws.err_sums.iter().zip(ws.err_counts.iter()).map(|(&s, &c)| {
            if c == 0 {
                None
            } else {
                Some(s / c as f64)
            }
        }));
    }

    /// Refreshes the cached transposes `wᵀ` / `uᵀ` from the current weights
    /// so every GEMM in the batched path can run in contiguous axpy form.
    fn refresh_transposes_in(&self, ws: &mut Workspace) {
        transpose_into(&mut ws.wt, &self.w);
        transpose_into(&mut ws.ut, &self.u);
    }

    /// Kernel execution policy of this network (from the config's
    /// `parallel` / `max_threads` / `fast_math` knobs). Both the training
    /// and the scoring batched paths run under this policy, so a fast-math
    /// network scores and learns in fast-math throughout.
    #[inline]
    fn kernel_policy(&self) -> KernelPolicy {
        KernelPolicy {
            parallel: self.config.parallel,
            max_threads: self.config.max_threads,
            fast_math: self.config.fast_math,
            timing: self.config.kernel_timing,
        }
    }

    /// One deterministic mean-field reconstruction of the packed batch
    /// (feature-major: every matrix is layer units × batch, so the batch is
    /// the contiguous SIMD dimension): `h0 = σ(b ⊕ wᵀ·v0 + u·z0)`, then
    /// `vk = σ(a ⊕ w·h0)` and `zk = softmax(c ⊕ uᵀ·h0)`. Requires
    /// `pack_batch_in` and `refresh_transposes_in` to have run on `ws`.
    fn reconstruct_packed_in(&self, ws: &mut Workspace, kept: usize) {
        let policy = self.kernel_policy();
        ws.h0.reshape_uninit(self.num_hidden, kept);
        ws.h0.broadcast_cols(&self.b);
        gemm2_acc_with(&policy, &mut ws.h0, &ws.wt, &ws.v0, &self.u, &ws.z0);
        sigmoid_matrix_with(&policy, &mut ws.h0);

        ws.vk.reshape_uninit(self.num_visible, kept);
        ws.vk.broadcast_cols(&self.a);
        gemm_acc_with(&policy, &mut ws.vk, &self.w, &ws.h0);
        sigmoid_matrix_with(&policy, &mut ws.vk);

        ws.zk.reshape_uninit(self.num_classes, kept);
        ws.zk.broadcast_cols(&self.c);
        gemm_acc_with(&policy, &mut ws.zk, &ws.ut, &ws.h0);
        softmax_cols_in_place_with(&policy, &mut ws.zk);
    }

    /// Trains the network on one mini-batch with CD-k and the class-balanced
    /// loss (Eq. 16–21). Returns the mean (weighted) reconstruction error of
    /// the batch before the update, which doubles as a cheap training
    /// diagnostic.
    pub fn train_batch(&mut self, batch: &MiniBatch) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        self.with_staged(batch, |net, features, classes| net.train_flat(features, classes))
    }

    /// Flat-batch trainer: `features` holds `classes.len()` rows of
    /// `num_features` values each (row-major). This is the batched CD-k hot
    /// path — the detector feeds its internal mini-batch buffer here without
    /// materializing any `Instance`. Steady state performs zero heap
    /// allocations: all scratch lives in the [`Workspace`].
    pub fn train_flat(&mut self, features: &[f64], classes: &[usize]) -> f64 {
        let n_total = classes.len();
        if n_total == 0 {
            return 0.0;
        }
        // Validate the batch shape before touching any state: a malformed
        // batch must not leave partial range/count updates behind.
        assert_eq!(
            features.len(),
            n_total * self.num_visible,
            "flat batch shape mismatch: expected {} features per instance",
            self.num_visible
        );
        // Update normalization ranges and class counts first so the weights
        // reflect the batch about to be learned.
        for (n, &class) in classes.iter().enumerate() {
            self.observe_ranges(&features[n * self.num_visible..(n + 1) * self.num_visible]);
            if class < self.num_classes {
                self.class_counts[class] += 1;
            }
        }

        let lr = self.config.learning_rate / n_total as f64;
        let momentum = self.config.momentum;
        let decay = self.config.weight_decay;
        let gibbs_steps = self.config.gibbs_steps;
        let (num_visible, num_hidden, num_classes) =
            (self.num_visible, self.num_hidden, self.num_classes);

        // The scratch workspace is moved out for the duration of the batch
        // (and moved back below) so the batched kernels can borrow it
        // mutably alongside `&self` model state — the same mechanism that
        // lets the `_with` scoring variants run on caller-owned workspaces.
        let mut workspace = std::mem::take(&mut self.workspace);
        let ws = &mut workspace;

        let kept = self.pack_batch_in(ws, features, classes);
        self.refresh_transposes_in(ws);

        // Per-class loss weights, once per batch (the class counts are fixed
        // for the duration of the batch, so per-instance recomputation — as
        // the seed did — yields the exact same values).
        self.class_weights_into(&mut ws.class_weights);

        // Pre-draw every Gibbs-sampling uniform, instance-major: instance n
        // consumes draws [n·kH, (n+1)·kH) exactly as the reference's
        // per-instance chain does, so the RNG streams stay identical. With
        // CD-1 (the default) there is exactly one sampling round and the
        // instance-major order coincides with sampling row by row, so the
        // draws can feed the comparison directly without the staging matrix.
        if gibbs_steps > 1 {
            ws.uniforms.reshape_uninit(kept, gibbs_steps * num_hidden);
            for n in 0..kept {
                for slot in ws.uniforms.row_mut(n).iter_mut() {
                    *slot = self.rng.gen::<f64>();
                }
            }
        }

        // Positive phase over the whole batch (feature-major):
        // h0 = σ(b ⊕ wᵀ·v0 + u·z0), one fused GEMM pair with the batch as
        // the contiguous inner dimension.
        let policy = self.kernel_policy();
        ws.h0.reshape_uninit(num_hidden, kept);
        ws.h0.broadcast_cols(&self.b);
        gemm2_acc_with(&policy, &mut ws.h0, &ws.wt, &ws.v0, &self.u, &ws.z0);
        sigmoid_matrix_with(&policy, &mut ws.h0);

        // First hidden sample (instance-major draws walk the columns).
        ws.hs.reshape_uninit(num_hidden, kept);
        if gibbs_steps > 1 {
            sample_columns(&mut ws.hs, &ws.h0, &ws.uniforms, 0, num_hidden);
        } else {
            for n in 0..kept {
                for j in 0..num_hidden {
                    let p = ws.h0.get(j, n);
                    *ws.hs.get_mut(j, n) = if self.rng.gen::<f64>() < p { 1.0 } else { 0.0 };
                }
            }
        }

        // Gibbs chain (negative phase), batch-level.
        ws.vk.reshape_uninit(num_visible, kept);
        ws.zk.reshape_uninit(num_classes, kept);
        ws.hk.reshape_uninit(num_hidden, kept);
        for step in 0..gibbs_steps {
            ws.vk.broadcast_cols(&self.a);
            gemm_acc_with(&policy, &mut ws.vk, &self.w, &ws.hs);
            sigmoid_matrix_with(&policy, &mut ws.vk);

            ws.zk.broadcast_cols(&self.c);
            gemm_acc_with(&policy, &mut ws.zk, &ws.ut, &ws.hs);
            softmax_cols_in_place_with(&policy, &mut ws.zk);

            ws.hk.broadcast_cols(&self.b);
            gemm2_acc_with(&policy, &mut ws.hk, &ws.wt, &ws.vk, &self.u, &ws.zk);
            sigmoid_matrix_with(&policy, &mut ws.hk);

            if step + 1 < gibbs_steps {
                sample_columns(&mut ws.hs, &ws.hk, &ws.uniforms, step + 1, num_hidden);
            } else {
                // Final step uses probabilities (standard CD-k practice).
                ws.hs.as_mut_slice().copy_from_slice(ws.hk.as_slice());
            }
        }

        // Accumulate weighted gradients: ⟨data⟩ − ⟨reconstruction⟩, as
        // instance-blocked positive-minus-negative outer products (the
        // outer-product formulation of the gradient GEMMs, ordered to keep
        // the reference's one-addend-per-instance accumulation).
        ws.dw.resize(num_visible, num_hidden);
        ws.du.resize(num_hidden, num_classes);
        ws.da.clear();
        ws.da.resize(num_visible, 0.0);
        ws.db.clear();
        ws.db.resize(num_hidden, 0.0);
        ws.dc.clear();
        ws.dc.resize(num_classes, 0.0);
        ws.instance_weights.clear();
        ws.instance_weights.extend(ws.packed_classes.iter().map(|&c| ws.class_weights[c]));
        cdk_weight_gradient_with(
            &policy,
            &mut ws.dw,
            &ws.instance_weights,
            &ws.v0,
            &ws.h0,
            &ws.vk,
            &ws.hk,
        );
        cdk_weight_gradient_with(
            &policy,
            &mut ws.du,
            &ws.instance_weights,
            &ws.h0,
            &ws.z0,
            &ws.hk,
            &ws.zk,
        );
        cdk_bias_gradient_with(&policy, &mut ws.da, &ws.instance_weights, &ws.v0, &ws.vk);
        cdk_bias_gradient_with(&policy, &mut ws.db, &ws.instance_weights, &ws.h0, &ws.hk);
        cdk_bias_gradient_with(&policy, &mut ws.dc, &ws.instance_weights, &ws.z0, &ws.zk);
        let mut total_error = 0.0;
        for n in 0..kept {
            let weight = ws.instance_weights[n];
            let mut err = 0.0;
            for i in 0..num_visible {
                let d = ws.v0.get(i, n) - ws.vk.get(i, n);
                err += d * d;
            }
            for k in 0..num_classes {
                let d = ws.z0.get(k, n) - ws.zk.get(k, n);
                err += d * d;
            }
            total_error += weight * err.sqrt();
        }

        // Apply updates with momentum and weight decay (fused flat kernels).
        momentum_update(
            self.w.as_mut_slice(),
            self.w_vel.as_mut_slice(),
            ws.dw.as_slice(),
            lr,
            momentum,
            decay,
        );
        momentum_update(
            self.u.as_mut_slice(),
            self.u_vel.as_mut_slice(),
            ws.du.as_slice(),
            lr,
            momentum,
            decay,
        );
        axpy(&mut self.a, lr, &ws.da);
        axpy(&mut self.b, lr, &ws.db);
        axpy(&mut self.c, lr, &ws.dc);
        self.workspace = workspace;
        self.batches_trained += 1;
        total_error / n_total as f64
    }

    /// Installs `ws` as the network's internal scratch workspace, returning
    /// the previous one. A workspace checked out of a
    /// [`WorkspacePool`](crate::pool::WorkspacePool) carries the grown
    /// buffer capacities of every batch shape it has ever processed, so a
    /// freshly attached detector adopting a pooled workspace skips the
    /// warm-up allocations entirely.
    pub fn adopt_workspace(&mut self, ws: Workspace) -> Workspace {
        std::mem::replace(&mut self.workspace, ws)
    }

    /// Takes the internal scratch workspace out of the network (leaving an
    /// empty one behind), e.g. to return it to a
    /// [`WorkspacePool`](crate::pool::WorkspacePool) when the network is
    /// dropped.
    pub fn take_workspace(&mut self) -> Workspace {
        std::mem::take(&mut self.workspace)
    }

    /// Forgets everything (used when the harness fully reinitializes the
    /// detector). The scratch workspace — pure capacity, no model state —
    /// is carried over so adopted/pooled buffers survive resets.
    pub fn reset(&mut self) {
        let ws = std::mem::take(&mut self.workspace);
        *self = RbmNetwork::new(self.num_visible, self.num_classes, self.config);
        self.workspace = ws;
    }

    /// Captures the network's complete mutable state — weights, biases,
    /// momentum buffers, class counts, normalization ranges, the RNG state
    /// (as lossless hex words) and the batch counter — as a serde value.
    /// The scratch [`Workspace`] is pure capacity and is **never**
    /// serialized; a restored network keeps (or rebuilds) its own. Restored
    /// with [`RbmNetwork::restore_state`] onto a network built with the
    /// same shape and configuration, training and scoring continue
    /// **bitwise identically** — including the Gibbs-chain RNG stream — to
    /// a network that was never checkpointed.
    pub fn snapshot_state(&self) -> serde::Value {
        use serde::{Serialize, Value};
        let rng: Vec<Value> = self.rng.state().iter().map(|&w| Value::from_u64_hex(w)).collect();
        Value::object(vec![
            ("num_visible", self.num_visible.serialize_value()),
            ("num_hidden", self.num_hidden.serialize_value()),
            ("num_classes", self.num_classes.serialize_value()),
            ("w", matrix_to_value(&self.w)),
            ("u", matrix_to_value(&self.u)),
            ("a", self.a.serialize_value()),
            ("b", self.b.serialize_value()),
            ("c", self.c.serialize_value()),
            ("w_vel", matrix_to_value(&self.w_vel)),
            ("u_vel", matrix_to_value(&self.u_vel)),
            ("class_counts", self.class_counts.serialize_value()),
            ("feature_min", self.feature_min.serialize_value()),
            ("feature_max", self.feature_max.serialize_value()),
            ("rng", Value::Array(rng)),
            ("batches_trained", self.batches_trained.serialize_value()),
        ])
    }

    /// Restores state captured by [`RbmNetwork::snapshot_state`]. Fails if
    /// the snapshot was taken at a different layer shape. The internal
    /// scratch workspace is left untouched (it holds no model state).
    pub fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let num_visible: usize = state.field("num_visible")?;
        let num_hidden: usize = state.field("num_hidden")?;
        let num_classes: usize = state.field("num_classes")?;
        if num_visible != self.num_visible
            || num_hidden != self.num_hidden
            || num_classes != self.num_classes
        {
            return Err(serde::Error::msg(format!(
                "network shape mismatch: snapshot is {num_visible}v/{num_hidden}h/{num_classes}z, \
                 network is {}v/{}h/{}z",
                self.num_visible, self.num_hidden, self.num_classes
            )));
        }
        self.w = matrix_from_value(state.req("w")?, self.num_visible, self.num_hidden)?;
        self.u = matrix_from_value(state.req("u")?, self.num_hidden, self.num_classes)?;
        self.a = state.field("a")?;
        self.b = state.field("b")?;
        self.c = state.field("c")?;
        self.w_vel = matrix_from_value(state.req("w_vel")?, self.num_visible, self.num_hidden)?;
        self.u_vel = matrix_from_value(state.req("u_vel")?, self.num_hidden, self.num_classes)?;
        self.class_counts = state.field("class_counts")?;
        self.feature_min = state.field("feature_min")?;
        self.feature_max = state.field("feature_max")?;
        for (name, vec, want) in [
            ("a", self.a.len(), self.num_visible),
            ("b", self.b.len(), self.num_hidden),
            ("c", self.c.len(), self.num_classes),
            ("class_counts", self.class_counts.len(), self.num_classes),
            ("feature_min", self.feature_min.len(), self.num_visible),
            ("feature_max", self.feature_max.len(), self.num_visible),
        ] {
            if vec != want {
                return Err(serde::Error::msg(format!(
                    "network `{name}` length mismatch: snapshot has {vec}, expected {want}"
                )));
            }
        }
        let serde::Value::Array(rng_words) = state.req("rng")? else {
            return Err(serde::Error::msg("network `rng` must be an array"));
        };
        if rng_words.len() != 4 {
            return Err(serde::Error::msg("network `rng` must hold 4 state words"));
        }
        let mut words = [0u64; 4];
        for (slot, value) in words.iter_mut().zip(rng_words) {
            *slot = value.as_u64_hex()?;
        }
        self.rng = StdRng::from_state(words);
        self.batches_trained = state.field("batches_trained")?;
        Ok(())
    }
}

/// Serializes a matrix as `{rows, cols, data}` (row-major flat data).
fn matrix_to_value(m: &DenseMatrix) -> serde::Value {
    use serde::{Serialize, Value};
    Value::object(vec![
        ("rows", m.rows().serialize_value()),
        ("cols", m.cols().serialize_value()),
        ("data", m.as_slice().serialize_value()),
    ])
}

/// Rebuilds a matrix serialized by [`matrix_to_value`], validating its
/// shape against the expected dimensions.
fn matrix_from_value(
    value: &serde::Value,
    want_rows: usize,
    want_cols: usize,
) -> Result<DenseMatrix, serde::Error> {
    let rows: usize = value.field("rows")?;
    let cols: usize = value.field("cols")?;
    let data: Vec<f64> = value.field("data")?;
    if rows != want_rows || cols != want_cols || data.len() != rows * cols {
        return Err(serde::Error::msg(format!(
            "matrix shape mismatch: snapshot is {rows}×{cols} ({} values), expected \
             {want_rows}×{want_cols}",
            data.len()
        )));
    }
    let mut m = DenseMatrix::zeros(rows, cols);
    m.as_mut_slice().copy_from_slice(&data);
    Ok(m)
}

/// The hidden-layer width implied by a config: the absolute
/// `hidden_units` override when present, otherwise `hidden_fraction` of the
/// visible layer; both floored at 4 units. Shared with the retained
/// reference implementation so the two always agree on network shape.
pub(crate) fn hidden_count(num_features: usize, config: &RbmNetworkConfig) -> usize {
    config
        .hidden_units
        .unwrap_or_else(|| (num_features as f64 * config.hidden_fraction).round() as usize)
        .max(4)
}

/// Min–max normalizes `x` into `[0, 1]` over the running range `[lo, hi]`;
/// degenerate or never-observed ranges map to 0.5. The single definition of
/// the normalization expression (shared by `predict`, batch packing, and the
/// single-instance error path), matching the reference bit for bit.
#[inline]
fn normalize_value(lo: f64, hi: f64, x: f64) -> f64 {
    if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-12 {
        0.5
    } else {
        ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
    }
}

/// `dst[j][n] ← 1` iff `uniforms[n][round·h + j] < probs[j][n]` — the
/// batched Bernoulli sampling step over feature-major matrices, reading the
/// pre-drawn (instance-major) uniforms of the given Gibbs round.
fn sample_columns(
    dst: &mut DenseMatrix,
    probs: &DenseMatrix,
    uniforms: &DenseMatrix,
    round: usize,
    h: usize,
) {
    for n in 0..dst.cols() {
        let u = &uniforms.row(n)[round * h..(round + 1) * h];
        for (j, &uj) in u.iter().enumerate() {
            *dst.get_mut(j, n) = if uj < probs.get(j, n) { 1.0 } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_streams::generators::GaussianMixtureGenerator;
    use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
    use rbm_im_streams::StreamExt;

    fn batch_from(instances: Vec<Instance>) -> MiniBatch {
        MiniBatch { start_index: instances.first().map(|i| i.index).unwrap_or(0), instances }
    }

    /// Flattens instances into the `(features, classes)` form the flat
    /// scoring/training entry points take.
    fn flatten(instances: &[Instance]) -> (Vec<f64>, Vec<usize>) {
        let mut features = Vec::new();
        let mut classes = Vec::new();
        for inst in instances {
            features.extend_from_slice(&inst.features);
            classes.push(inst.class);
        }
        (features, classes)
    }

    #[test]
    fn construction_respects_hidden_fraction() {
        let net = RbmNetwork::new(
            20,
            5,
            RbmNetworkConfig { hidden_fraction: 0.25, ..Default::default() },
        );
        assert_eq!(net.num_hidden(), 5);
        // Floor of 4 hidden units for tiny inputs.
        let tiny =
            RbmNetwork::new(3, 2, RbmNetworkConfig { hidden_fraction: 0.25, ..Default::default() });
        assert_eq!(tiny.num_hidden(), 4);
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut stream = GaussianMixtureGenerator::balanced(8, 3, 1, 7);
        let mut net = RbmNetwork::new(8, 3, RbmNetworkConfig::default());
        // Measure error on a held-out probe batch before and after training.
        let probe = batch_from(stream.take_instances(100));
        // Warm the normalization ranges so the before/after comparison is fair.
        let warm = batch_from(stream.take_instances(50));
        net.train_batch(&warm);
        let mut ws = Workspace::default();
        let before: f64 =
            probe.instances.iter().map(|i| net.reconstruction_error_with(&mut ws, i)).sum::<f64>()
                / 100.0;
        for _ in 0..60 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        let after: f64 =
            probe.instances.iter().map(|i| net.reconstruction_error_with(&mut ws, i)).sum::<f64>()
                / 100.0;
        assert!(
            after < before * 0.9,
            "training should reduce reconstruction error: before {before}, after {after}"
        );
        assert_eq!(net.batches_trained(), 61);
    }

    #[test]
    fn reconstruction_error_rises_after_concept_change() {
        // Train on one mixture; the reconstruction error of data from a
        // different mixture must be higher than on the training concept.
        let mut concept_a = GaussianMixtureGenerator::balanced(6, 3, 1, 11);
        let mut concept_b = GaussianMixtureGenerator::balanced(6, 3, 1, 999);
        let mut net = RbmNetwork::new(6, 3, RbmNetworkConfig::default());
        for _ in 0..80 {
            let batch = batch_from(concept_a.take_instances(50));
            net.train_batch(&batch);
        }
        let mut ws = Workspace::default();
        let err_a: f64 = concept_a
            .take_instances(200)
            .iter()
            .map(|i| net.reconstruction_error_with(&mut ws, i))
            .sum::<f64>()
            / 200.0;
        let err_b: f64 = concept_b
            .take_instances(200)
            .iter()
            .map(|i| net.reconstruction_error_with(&mut ws, i))
            .sum::<f64>()
            / 200.0;
        assert!(
            err_b > err_a * 1.05,
            "unseen concept should reconstruct worse: trained {err_a}, new {err_b}"
        );
    }

    #[test]
    fn per_class_errors_reported_only_for_present_classes() {
        let mut stream = GaussianMixtureGenerator::balanced(5, 4, 1, 3);
        let mut net = RbmNetwork::new(5, 4, RbmNetworkConfig::default());
        let batch = batch_from(stream.take_instances(60));
        net.train_batch(&batch);
        let only_class_zero: Vec<Instance> =
            (0..20).map(|_| stream.generate_for_class(0)).collect();
        let (features, classes) = flatten(&only_class_zero);
        let mut ws = Workspace::default();
        let mut errors = Vec::new();
        net.reconstruction_errors_flat_with(&mut ws, &features, &classes, &mut errors);
        assert!(errors[0].is_some());
        assert!(errors[1].is_none());
        assert!(errors[2].is_none());
        assert!(errors[3].is_none());
    }

    #[test]
    fn class_weights_favor_minorities() {
        let base = GaussianMixtureGenerator::balanced(5, 3, 1, 17);
        let profile = ImbalanceProfile::Static(vec![50.0, 10.0, 1.0]);
        let mut stream = ImbalancedStream::new(base, profile, 5);
        let mut net = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        for _ in 0..40 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        let w_majority = net.class_weight(0);
        let w_minority = net.class_weight(2);
        assert!(
            w_minority > w_majority,
            "minority weight {w_minority} must exceed majority weight {w_majority}"
        );
        assert!(net.class_counts()[0] > net.class_counts()[2]);
    }

    #[test]
    fn class_weights_into_matches_per_class_queries() {
        let mut stream = GaussianMixtureGenerator::balanced(5, 3, 1, 17);
        let mut net = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        for _ in 0..10 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        let mut all = Vec::new();
        net.class_weights_into(&mut all);
        assert_eq!(all.len(), 3);
        for (class, &weight) in all.iter().enumerate() {
            assert_eq!(weight, net.class_weight(class));
        }
    }

    #[test]
    fn prediction_is_better_than_chance_after_training() {
        // The default (detector-sized) network is deliberately small; give
        // the classification probe a wider hidden layer and a faster
        // learning rate, as one would when using the RBM as a classifier.
        let mut stream = GaussianMixtureGenerator::balanced(6, 3, 1, 23);
        let cfg =
            RbmNetworkConfig { hidden_fraction: 2.0, learning_rate: 0.2, ..Default::default() };
        let mut net = RbmNetwork::new(6, 3, cfg);
        for _ in 0..200 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        let test = stream.take_instances(300);
        let correct = test.iter().filter(|i| net.predict(&i.features) == i.class).count();
        let accuracy = correct as f64 / test.len() as f64;
        assert!(accuracy > 0.6, "RBM class layer should beat chance (1/3), got {accuracy}");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut net = RbmNetwork::new(4, 2, RbmNetworkConfig::default());
        let err = net.train_batch(&MiniBatch { instances: vec![], start_index: 0 });
        assert_eq!(err, 0.0);
        assert_eq!(net.batches_trained(), 0);
    }

    #[test]
    fn reset_forgets_training() {
        let mut stream = GaussianMixtureGenerator::balanced(5, 3, 1, 31);
        let mut net = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        for _ in 0..20 {
            let batch = batch_from(stream.take_instances(50));
            net.train_batch(&batch);
        }
        net.reset();
        assert_eq!(net.batches_trained(), 0);
        assert!(net.class_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut s1 = GaussianMixtureGenerator::balanced(5, 3, 1, 3);
        let mut s2 = GaussianMixtureGenerator::balanced(5, 3, 1, 3);
        let mut n1 = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        let mut n2 = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        for _ in 0..10 {
            let b1 = batch_from(s1.take_instances(40));
            let b2 = batch_from(s2.take_instances(40));
            let e1 = n1.train_batch(&b1);
            let e2 = n2.train_batch(&b2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn flat_and_minibatch_entry_points_agree() {
        let mut stream = GaussianMixtureGenerator::balanced(6, 3, 1, 9);
        let mut via_batch = RbmNetwork::new(6, 3, RbmNetworkConfig::default());
        let mut via_flat = RbmNetwork::new(6, 3, RbmNetworkConfig::default());
        let mut ws = Workspace::default();
        for _ in 0..15 {
            let batch = batch_from(stream.take_instances(30));
            let (features, classes) = flatten(&batch.instances);
            let e1 = via_batch.train_batch(&batch);
            let e2 = via_flat.train_flat(&features, &classes);
            assert_eq!(e1, e2);
            let mut errs1 = Vec::new();
            let mut errs2 = Vec::new();
            via_batch.reconstruction_errors_flat_with(&mut ws, &features, &classes, &mut errs1);
            via_flat.reconstruction_errors_flat_with(&mut ws, &features, &classes, &mut errs2);
            assert_eq!(errs1, errs2);
        }
    }

    /// Checkpoint at an arbitrary batch boundary, serialize to JSON,
    /// restore onto a fresh network: further training — including the
    /// Gibbs-chain RNG stream — must be bitwise-identical to the
    /// uninterrupted network's.
    #[test]
    fn checkpoint_roundtrip_training_is_bitwise_identical() {
        let mut stream = GaussianMixtureGenerator::balanced(6, 3, 1, 55);
        let config = RbmNetworkConfig { gibbs_steps: 2, ..Default::default() };
        let mut uninterrupted = RbmNetwork::new(6, 3, config);
        let mut head = RbmNetwork::new(6, 3, config);
        let mut batches = Vec::new();
        for _ in 0..20 {
            batches.push(flatten(&stream.take_instances(30)));
        }
        for (features, classes) in &batches[..7] {
            assert_eq!(
                uninterrupted.train_flat(features, classes),
                head.train_flat(features, classes)
            );
        }
        let json = serde_json::to_string(&head.snapshot_state()).unwrap();
        let mut resumed = RbmNetwork::new(6, 3, config);
        resumed.restore_state(&serde_json::parse_value(&json).unwrap()).unwrap();
        let mut ws = Workspace::default();
        for (features, classes) in &batches[7..] {
            let mut expected = Vec::new();
            let mut got = Vec::new();
            uninterrupted.reconstruction_errors_flat_with(
                &mut ws,
                features,
                classes,
                &mut expected,
            );
            resumed.reconstruction_errors_flat_with(&mut ws, features, classes, &mut got);
            assert_eq!(expected, got, "scoring must match after restore");
            assert_eq!(
                uninterrupted.train_flat(features, classes),
                resumed.train_flat(features, classes),
                "training (and its RNG stream) must match after restore"
            );
        }
        assert_eq!(uninterrupted.w().as_slice(), resumed.w().as_slice());
        assert_eq!(uninterrupted.u().as_slice(), resumed.u().as_slice());
        assert_eq!(uninterrupted.batches_trained(), resumed.batches_trained());

        // A different shape refuses the snapshot.
        let mut wrong = RbmNetwork::new(7, 3, config);
        assert!(wrong.restore_state(&serde_json::parse_value(&json).unwrap()).is_err());
    }

    #[test]
    fn gibbs_chain_depth_changes_the_updates() {
        // k=1 and k=3 must consume different RNG stream lengths and produce
        // different weights — a smoke test that the pre-drawn uniforms wire
        // the deeper chain correctly.
        let mut stream = GaussianMixtureGenerator::balanced(5, 3, 1, 41);
        let data = stream.take_instances(50);
        let mut k1 = RbmNetwork::new(5, 3, RbmNetworkConfig::default());
        let mut k3 =
            RbmNetwork::new(5, 3, RbmNetworkConfig { gibbs_steps: 3, ..Default::default() });
        k1.train_batch(&batch_from(data.clone()));
        k3.train_batch(&batch_from(data));
        assert_ne!(k1.w().as_slice(), k3.w().as_slice());
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        RbmNetwork::new(5, 3, RbmNetworkConfig { gibbs_steps: 0, ..Default::default() });
    }
}
