//! Class-imbalance operators: static and dynamic imbalance ratios, and
//! class-role switching.
//!
//! The paper's benchmarks combine concept drift with (i) a high imbalance
//! ratio between the largest and smallest class (IR up to 348 on the
//! real-world streams, and swept from 50 to 500 in Experiment 3), (ii)
//! *dynamic* imbalance where the ratio changes during the stream, and (iii)
//! *class-role switching* where minority classes become majority and vice
//! versa (Scenarios 2 and 3).
//!
//! [`ImbalanceProfile`] describes the target class distribution as a
//! function of the stream position; [`ImbalancedStream`] imposes it on any
//! base stream by class-targeted rejection sampling (the wrapper first draws
//! the desired class from the target distribution, then pulls instances
//! from the base stream until one of that class appears — base generators
//! are roughly balanced, so the expected number of pulls is the class
//! count).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// Target class distribution as a function of stream position.
#[derive(Debug, Clone, PartialEq)]
pub enum ImbalanceProfile {
    /// Fixed class weights for the whole stream (need not be normalized).
    Static(Vec<f64>),
    /// Linear interpolation between a start and an end weight vector over
    /// `period` instances (clamped at the end distribution afterwards).
    /// This models a *dynamic imbalance ratio*.
    LinearShift {
        /// Weights at position 0.
        start: Vec<f64>,
        /// Weights at position `period` and beyond.
        end: Vec<f64>,
        /// Number of instances over which the interpolation runs.
        period: u64,
    },
    /// Class-role switching: the weight vector is rotated by one position
    /// every `interval` instances, so the majority role moves from class to
    /// class (Scenario 2/3 of the taxonomy).
    RoleSwitching {
        /// Base weights (rotated over time).
        weights: Vec<f64>,
        /// Number of instances between consecutive rotations.
        interval: u64,
    },
}

impl ImbalanceProfile {
    /// Builds a geometric multi-class imbalance profile with the given
    /// maximum imbalance ratio: class 0 receives weight `ir`, the last class
    /// weight 1, intermediate classes interpolate geometrically. This is the
    /// standard way multi-class IR is reported in the paper (ratio between
    /// the largest and smallest class).
    pub fn geometric(num_classes: usize, ir: f64) -> Self {
        assert!(num_classes >= 2);
        assert!(ir >= 1.0, "imbalance ratio must be >= 1, got {ir}");
        let weights = (0..num_classes)
            .map(|c| ir.powf(1.0 - c as f64 / (num_classes as f64 - 1.0)))
            .collect();
        ImbalanceProfile::Static(weights)
    }

    /// The (unnormalized) class weights at stream position `t`.
    pub fn weights_at(&self, t: u64) -> Vec<f64> {
        match self {
            ImbalanceProfile::Static(w) => w.clone(),
            ImbalanceProfile::LinearShift { start, end, period } => {
                let alpha = if *period == 0 { 1.0 } else { (t as f64 / *period as f64).min(1.0) };
                start.iter().zip(end.iter()).map(|(s, e)| s * (1.0 - alpha) + e * alpha).collect()
            }
            ImbalanceProfile::RoleSwitching { weights, interval } => {
                let shift =
                    if *interval == 0 { 0 } else { (t / interval) as usize % weights.len() };
                let mut rotated = vec![0.0; weights.len()];
                for (i, &w) in weights.iter().enumerate() {
                    rotated[(i + shift) % weights.len()] = w;
                }
                rotated
            }
        }
    }

    /// Normalized class probabilities at position `t`.
    pub fn probabilities_at(&self, t: u64) -> Vec<f64> {
        let w = self.weights_at(t);
        let total: f64 = w.iter().sum();
        assert!(total > 0.0, "class weights must sum to a positive value");
        w.iter().map(|x| x / total).collect()
    }

    /// Imbalance ratio (max weight / min positive weight) at position `t`.
    pub fn imbalance_ratio_at(&self, t: u64) -> f64 {
        let w = self.weights_at(t);
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        let min = w.iter().cloned().filter(|x| *x > 0.0).fold(f64::MAX, f64::min);
        if min == f64::MAX {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Number of classes covered by the profile.
    pub fn num_classes(&self) -> usize {
        match self {
            ImbalanceProfile::Static(w) => w.len(),
            ImbalanceProfile::LinearShift { start, .. } => start.len(),
            ImbalanceProfile::RoleSwitching { weights, .. } => weights.len(),
        }
    }
}

/// Wrapper imposing an [`ImbalanceProfile`] on a base stream via
/// class-targeted rejection sampling.
pub struct ImbalancedStream<S> {
    inner: S,
    schema: StreamSchema,
    profile: ImbalanceProfile,
    seed: u64,
    rng: StdRng,
    counter: u64,
    /// Upper bound on base-stream pulls per emitted instance, to guard
    /// against pathological base streams that never produce some class.
    max_rejections: usize,
}

impl<S: DataStream> ImbalancedStream<S> {
    /// Wraps `inner` with the given target profile.
    ///
    /// # Panics
    /// Panics if the profile's class count does not match the stream schema
    /// or any weight vector has a non-positive sum.
    pub fn new(inner: S, profile: ImbalanceProfile, seed: u64) -> Self {
        let schema = inner.schema().renamed(format!("{}-imbalanced", inner.schema().name));
        assert_eq!(
            profile.num_classes(),
            schema.num_classes,
            "profile classes must match stream classes"
        );
        // Validate that weights are usable at t = 0.
        let _ = profile.probabilities_at(0);
        ImbalancedStream {
            inner,
            schema,
            profile,
            seed,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
            max_rejections: 10_000,
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &ImbalanceProfile {
        &self.profile
    }

    fn sample_target_class(&mut self) -> usize {
        let probs = self.profile.probabilities_at(self.counter);
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (c, p) in probs.iter().enumerate() {
            acc += p;
            if u <= acc {
                return c;
            }
        }
        probs.len() - 1
    }
}

impl<S: DataStream> DataStream for ImbalancedStream<S> {
    fn next_instance(&mut self) -> Option<Instance> {
        let target = self.sample_target_class();
        for _ in 0..self.max_rejections {
            let candidate = self.inner.next_instance()?;
            if candidate.class == target {
                let mut inst = candidate;
                inst.index = self.counter;
                self.counter += 1;
                return Some(inst);
            }
        }
        // The base stream failed to produce the target class within the
        // rejection budget (e.g. a generator whose concept no longer covers
        // that class). Fall back to the next available instance so the
        // stream keeps flowing rather than silently stalling.
        let mut inst = self.inner.next_instance()?;
        inst.index = self.counter;
        self.counter += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        self.inner.restart();
        self.rng = StdRng::seed_from_u64(self.seed);
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GaussianMixtureGenerator, RandomRbfGenerator};
    use crate::stream::StreamExt;

    #[test]
    fn geometric_profile_has_requested_ir() {
        let p = ImbalanceProfile::geometric(5, 100.0);
        assert!((p.imbalance_ratio_at(0) - 100.0).abs() < 1e-9);
        let probs = p.probabilities_at(0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Monotone decreasing class probabilities.
        for w in probs.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn linear_shift_interpolates() {
        let p = ImbalanceProfile::LinearShift {
            start: vec![10.0, 1.0],
            end: vec![1.0, 10.0],
            period: 100,
        };
        assert_eq!(p.weights_at(0), vec![10.0, 1.0]);
        assert_eq!(p.weights_at(50), vec![5.5, 5.5]);
        assert_eq!(p.weights_at(100), vec![1.0, 10.0]);
        assert_eq!(p.weights_at(1000), vec![1.0, 10.0]);
        assert!((p.imbalance_ratio_at(0) - 10.0).abs() < 1e-12);
        assert!((p.imbalance_ratio_at(50) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn role_switching_rotates_majority() {
        let p = ImbalanceProfile::RoleSwitching { weights: vec![9.0, 3.0, 1.0], interval: 100 };
        let w0 = p.weights_at(0);
        let w1 = p.weights_at(150);
        let w2 = p.weights_at(250);
        assert_eq!(w0, vec![9.0, 3.0, 1.0]);
        assert_eq!(w1, vec![1.0, 9.0, 3.0]);
        assert_eq!(w2, vec![3.0, 1.0, 9.0]);
        // After a full cycle the original roles return.
        assert_eq!(p.weights_at(300), w0);
    }

    #[test]
    fn imbalanced_stream_matches_target_distribution() {
        let base = RandomRbfGenerator::new(5, 4, 2, 0.0, 3);
        let profile = ImbalanceProfile::Static(vec![60.0, 25.0, 10.0, 5.0]);
        let mut stream = ImbalancedStream::new(base, profile, 11);
        let dist = stream.empirical_class_distribution(8000);
        assert!((dist[0] - 0.60).abs() < 0.03, "class 0: {}", dist[0]);
        assert!((dist[1] - 0.25).abs() < 0.03, "class 1: {}", dist[1]);
        assert!((dist[2] - 0.10).abs() < 0.02, "class 2: {}", dist[2]);
        assert!((dist[3] - 0.05).abs() < 0.02, "class 3: {}", dist[3]);
    }

    #[test]
    fn high_ir_still_produces_minority_instances() {
        let base = GaussianMixtureGenerator::balanced(6, 5, 2, 5);
        let profile = ImbalanceProfile::geometric(5, 200.0);
        let mut stream = ImbalancedStream::new(base, profile, 17);
        let sample = stream.take_instances(20_000);
        let minority = sample.iter().filter(|i| i.class == 4).count();
        assert!(minority > 0, "minority class must still appear");
        let majority = sample.iter().filter(|i| i.class == 0).count();
        assert!(majority > 50 * minority.max(1) / 2, "majority {majority}, minority {minority}");
    }

    #[test]
    fn role_switching_stream_changes_majority_over_time() {
        let base = RandomRbfGenerator::new(4, 3, 2, 0.0, 6);
        let profile =
            ImbalanceProfile::RoleSwitching { weights: vec![20.0, 4.0, 1.0], interval: 3000 };
        let mut stream = ImbalancedStream::new(base, profile, 8);
        let sample = stream.take_instances(9000);
        let majority_of = |slice: &[Instance]| -> usize {
            let mut counts = [0usize; 3];
            for i in slice {
                counts[i.class] += 1;
            }
            counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).unwrap()
        };
        assert_eq!(majority_of(&sample[..3000]), 0);
        assert_eq!(majority_of(&sample[3000..6000]), 1);
        assert_eq!(majority_of(&sample[6000..]), 2);
    }

    #[test]
    fn restart_is_deterministic() {
        let base = RandomRbfGenerator::new(4, 3, 2, 0.0, 9);
        let profile = ImbalanceProfile::geometric(3, 20.0);
        let mut stream = ImbalancedStream::new(base, profile, 31);
        let a = stream.take_instances(500);
        stream.restart();
        let b = stream.take_instances(500);
        assert_eq!(a, b);
    }

    #[test]
    fn indices_are_restamped_sequentially() {
        let base = RandomRbfGenerator::new(3, 3, 1, 0.0, 2);
        let mut stream = ImbalancedStream::new(base, ImbalanceProfile::geometric(3, 10.0), 4);
        let sample = stream.take_instances(50);
        for (i, inst) in sample.iter().enumerate() {
            assert_eq!(inst.index, i as u64);
        }
    }

    #[test]
    #[should_panic]
    fn profile_class_mismatch_rejected() {
        let base = RandomRbfGenerator::new(3, 3, 1, 0.0, 2);
        ImbalancedStream::new(base, ImbalanceProfile::geometric(5, 10.0), 0);
    }

    #[test]
    #[should_panic]
    fn geometric_rejects_ir_below_one() {
        ImbalanceProfile::geometric(3, 0.5);
    }
}
