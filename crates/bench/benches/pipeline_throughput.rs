//! Pipeline hot-path baseline: instances/second of the prequential loop in
//! per-instance mode (`detector_batch = 1`, the paper's protocol) versus
//! batched mode (`detector_batch = 50`, RBM-IM's natural mini-batch), for
//! RBM-IM and ADWIN. Future PRs optimizing the hot loop should compare
//! against these numbers.
//!
//! RBM-IM's share of this loop (detect + CD-k train per mini-batch) runs on
//! the flat-matrix `rbm_im::linalg` kernels; see the `rbm_train` bench for
//! the isolated kernel-level comparison against the retained seed
//! implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbm_im_harness::detectors::DetectorKind;
use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::stream::BoundedStream;

const INSTANCES: u64 = 4_000;

fn bench_pipeline_throughput(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INSTANCES));
    for detector in [DetectorKind::RbmIm, DetectorKind::Adwin] {
        for batch in [1usize, 50] {
            let id = format!("{}-batch{}", detector.name(), batch);
            let run = RunConfig { metric_window: 500, detector_batch: batch, ..Default::default() };
            group.bench_with_input(BenchmarkId::new("rbf", id), &(), |b, _| {
                b.iter(|| {
                    let stream =
                        BoundedStream::new(RandomRbfGenerator::new(10, 4, 2, 0.0, 5), INSTANCES);
                    PipelineBuilder::new()
                        .stream(stream)
                        .detector_spec(detector.spec())
                        .config(run)
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_throughput);
criterion_main!(benches);
