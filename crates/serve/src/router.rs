//! Stream-id → shard routing.

use rbm_im_streams::source::derive_stream_seed;

/// Fixed routing salt: `shard_of` must be a pure function of the stream id
/// and the shard count (attach and ingest may be called from different
/// threads and must agree without coordination), so the hash base is a
/// constant rather than the server's configurable seed.
const ROUTER_SALT: u64 = 0x5eed_0000_1207_a11b;

/// Hashes stream ids onto shards. Stateless and deterministic: the same id
/// always lands on the same shard for a given shard count, with no shared
/// table and no locking on the ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRouter {
    num_shards: usize,
}

impl StreamRouter {
    /// A router over `num_shards` shards (must be ≥ 1).
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "a server needs at least one shard");
        StreamRouter { num_shards }
    }

    /// Number of shards routed over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `stream_id` (FNV-1a over the id, SplitMix64
    /// finalization, modulo the shard count).
    pub fn shard_of(&self, stream_id: &str) -> usize {
        (derive_stream_seed(ROUTER_SALT, stream_id) % self.num_shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let router = StreamRouter::new(8);
        for i in 0..256 {
            let id = format!("feed-{i:03}");
            let shard = router.shard_of(&id);
            assert!(shard < 8);
            assert_eq!(shard, router.shard_of(&id));
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let router = StreamRouter::new(1);
        assert_eq!(router.shard_of("anything"), 0);
        assert_eq!(router.shard_of(""), 0);
    }

    #[test]
    fn many_streams_spread_over_shards() {
        let router = StreamRouter::new(8);
        let mut counts = [0usize; 8];
        for i in 0..512 {
            counts[router.shard_of(&format!("feed-{i:04}"))] += 1;
        }
        // No shard should be starved or hold the bulk of 512 uniform ids.
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 20 && count < 160,
                "shard {shard} got a pathological share: {count}/512"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        StreamRouter::new(0);
    }
}
