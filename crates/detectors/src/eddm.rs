//! EDDM — Early Drift Detection Method (Baena-García et al., 2006).
//!
//! Instead of the error *rate*, EDDM monitors the *distance between
//! consecutive errors* (in number of instances). When the data is stable
//! the mean distance grows; a drift shrinks it. The detector tracks the
//! running mean `p'` and standard deviation `s'` of the distance and
//! remembers the maximum of `p' + 2s'`; warnings / drifts are raised when
//! `(p' + 2s') / (p'_max + 2s'_max)` falls below the `alpha` / `beta`
//! thresholds (0.85 / 0.75 by default).

use crate::{DetectorState, DriftDetector, Observation};

/// Configuration of [`Eddm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EddmConfig {
    /// Warning threshold α (ratio below which a warning is raised).
    pub alpha: f64,
    /// Drift threshold β (ratio below which a drift is raised).
    pub beta: f64,
    /// Minimum number of errors before the test activates.
    pub min_errors: u64,
}

impl Default for EddmConfig {
    fn default() -> Self {
        EddmConfig { alpha: 0.85, beta: 0.75, min_errors: 30 }
    }
}

/// The EDDM detector.
#[derive(Debug, Clone)]
pub struct Eddm {
    config: EddmConfig,
    instance_counter: u64,
    last_error_at: Option<u64>,
    n_errors: u64,
    mean_distance: f64,
    m2_distance: f64,
    max_score: f64,
    state: DetectorState,
}

impl Eddm {
    /// Creates an EDDM detector with the default thresholds.
    pub fn new() -> Self {
        Self::with_config(EddmConfig::default())
    }

    /// Creates an EDDM detector with explicit thresholds.
    pub fn with_config(config: EddmConfig) -> Self {
        assert!(config.beta < config.alpha, "beta (drift) must be below alpha (warning)");
        Eddm {
            config,
            instance_counter: 0,
            last_error_at: None,
            n_errors: 0,
            mean_distance: 0.0,
            m2_distance: 0.0,
            max_score: f64::MIN_POSITIVE,
            state: DetectorState::Stable,
        }
    }
}

impl Default for Eddm {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for Eddm {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        self.instance_counter += 1;
        if observation.correct {
            // EDDM only updates on errors.
            if !matches!(self.state, DetectorState::Drift) {
                // Keep warning state sticky until contradicted by the score.
                return self.state;
            }
            return self.state;
        }

        if let Some(last) = self.last_error_at {
            let distance = (self.instance_counter - last) as f64;
            self.n_errors += 1;
            let delta = distance - self.mean_distance;
            self.mean_distance += delta / self.n_errors as f64;
            self.m2_distance += delta * (distance - self.mean_distance);
        }
        self.last_error_at = Some(self.instance_counter);

        if self.n_errors < self.config.min_errors {
            self.state = DetectorState::Stable;
            return self.state;
        }
        let std = if self.n_errors < 2 {
            0.0
        } else {
            (self.m2_distance / (self.n_errors - 1) as f64).sqrt()
        };
        let score = self.mean_distance + 2.0 * std;
        if score > self.max_score {
            self.max_score = score;
        }
        let ratio = score / self.max_score;
        self.state = if ratio < self.config.beta {
            // Restart concept statistics after signalling.
            self.n_errors = 0;
            self.mean_distance = 0.0;
            self.m2_distance = 0.0;
            self.max_score = f64::MIN_POSITIVE;
            self.last_error_at = None;
            DetectorState::Drift
        } else if ratio < self.config.alpha {
            DetectorState::Warning
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = Eddm::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "EDDM"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("instance_counter", self.instance_counter.serialize_value()),
            ("last_error_at", self.last_error_at.serialize_value()),
            ("n_errors", self.n_errors.serialize_value()),
            ("mean_distance", self.mean_distance.serialize_value()),
            ("m2_distance", self.m2_distance.serialize_value()),
            ("max_score", self.max_score.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.instance_counter = state.field("instance_counter")?;
        self.last_error_at = state.field("last_error_at")?;
        self.n_errors = state.field("n_errors")?;
        self.mean_distance = state.field("mean_distance")?;
        self.m2_distance = state.field("m2_distance")?;
        self.max_score = state.field("max_score")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_quiet_on_stationary, run_error_stream};

    #[test]
    fn detects_gradual_error_increase() {
        // EDDM is designed for gradual changes: error rate creeps from 2% to
        // 30% over a long window.
        let mut eddm = Eddm::new();
        let features = [0.0];
        let mut detected_at = None;
        for i in 0..30_000usize {
            let p = if i < 10_000 { 0.02 } else { (0.02 + (i - 10_000) as f64 * 0.00005).min(0.3) };
            let wrong = ((i as f64 * 0.618_034).fract()) < p;
            let obs = Observation {
                features: &features,
                true_class: 0,
                predicted_class: if wrong { 1 } else { 0 },
                correct: !wrong,
            };
            if eddm.update(&obs).is_drift() && i > 10_000 {
                detected_at = Some(i);
                break;
            }
        }
        assert!(detected_at.is_some(), "EDDM should react to a gradual error increase");
    }

    #[test]
    fn detects_abrupt_change_as_well() {
        let detections = run_error_stream(&mut Eddm::new(), 0.05, 0.5, 5000, 10_000, 11);
        assert!(
            detections.iter().any(|&p| (5000..6500).contains(&p)),
            "EDDM should fire after the abrupt change, detections: {detections:?}"
        );
    }

    #[test]
    fn tolerates_stationary_stream() {
        // EDDM is known to be more alarm-happy than DDM; allow a few.
        assert_quiet_on_stationary(&mut Eddm::new(), 6);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut eddm = Eddm::new();
        run_error_stream(&mut eddm, 0.05, 0.5, 1000, 4000, 2);
        eddm.reset();
        assert_eq!(eddm.state(), DetectorState::Stable);
        assert_eq!(eddm.name(), "EDDM");
    }

    #[test]
    #[should_panic]
    fn invalid_thresholds_rejected() {
        Eddm::with_config(EddmConfig { alpha: 0.9, beta: 0.95, min_errors: 30 });
    }
}
