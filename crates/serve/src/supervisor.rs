//! The autonomic control plane: a background supervisor that makes the
//! serving fleet checkpoint and resize *itself*.
//!
//! PR 4 landed the mechanisms — non-destructive
//! [`checkpoint_stream`](crate::server::ServerHandle::checkpoint_stream) /
//! [`checkpoint_all`](crate::server::ServerHandle::checkpoint_all), disk
//! spills via [`SnapshotSink`], and live
//! [`resize_shards`](crate::server::ServerHandle::resize_shards) — but
//! every one of them was caller-triggered. The [`Supervisor`] closes the
//! loop:
//!
//! * **background checkpointing** — every attached stream is spilled on a
//!   per-stream interval with a deterministic per-stream *jitter* phase
//!   (derived from the stream id, so a thousand streams never spill in
//!   one thundering herd), and — when
//!   [`CheckpointPolicy::on_drift`] is set — *urgently* right after the
//!   stream signals a drift, because post-drift state is exactly the
//!   state worth preserving. Spills use the sink's codec (the compact
//!   binary codec by default) and land atomically;
//! * **load-based auto-resize** — each tick the supervisor reads the
//!   shards' lock-free queue gauges
//!   ([`ServerHandle::shard_loads`](crate::server::ServerHandle::shard_loads)),
//!   feeds them to a pluggable [`ResizePolicy`] (the default
//!   [`HysteresisResizePolicy`] smooths the per-shard backlog with an
//!   EWMA and applies distinct grow/shrink watermarks so the fleet never
//!   flaps), clamps the answer to `[min_shards, max_shards]`, enforces a
//!   cooldown between resizes, and then calls `resize_shards` — emitting
//!   a [`ServeEventKind::ResizeDecision`] bus event either way the
//!   decision goes;
//! * **tiered stream state** — with a [`TierPolicy`] configured, each tick
//!   scans the fleet's residency tiers and **hibernates** hot streams that
//!   are idle past the policy's age, or — under budget pressure — the
//!   least-recently-active ones until the hot tier fits
//!   [`TierPolicy::max_hot_streams`]. Every eviction first spills a fresh
//!   checkpoint, so clean evictions reuse the disk file without encoding,
//!   and already-cold in-memory handles are demoted to disk the same way.
//!   Disk-authoritative cold streams are skipped by the periodic spill
//!   schedule (their checkpoint cannot go stale) until they rehydrate.
//!
//! The supervisor runs on its **own** thread and touches the data plane
//! only through the same public control operations callers use: ingest
//! hot paths are never locked by it, and — because checkpoints are
//! non-destructive and resizes are bitwise-safe by construction (PR 4's
//! park/extract/replay protocol) — a supervised run produces **bitwise
//! identical** per-stream results to an unsupervised or sequential run,
//! whatever the supervisor decides and whenever it decides it. The
//! `tests/supervisor.rs` suite pins exactly that, plus the cold-restart
//! path: kill the server, reload the latest background spills, resume,
//! and the tail of the stream completes bitwise-identically.

use crate::config::TierPolicy;
use crate::event::{ServeEvent, ServeEventKind};
use crate::server::{HibernateOutcome, ServeError, ServerHandle, ShardLoad};
use crate::shard::TierKind;
use crate::sink::SnapshotSink;
use rbm_im_stats::Ewma;
use rbm_im_streams::source::derive_stream_seed;
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When and how the supervisor spills background checkpoints.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Per-stream spill interval.
    pub every: Duration,
    /// Fraction of `every` (in `[0, 1]`) used as a deterministic
    /// per-stream phase offset, staggering spills across the fleet. The
    /// offset is derived from the stream id, so it is stable across
    /// restarts.
    pub jitter: f64,
    /// Spill a stream immediately after it signals a drift (the
    /// post-drift state is the state a warm restart most wants).
    pub on_drift: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { every: Duration::from_secs(30), jitter: 0.5, on_drift: true }
    }
}

/// Bounds and pacing of load-based auto-resize.
pub struct ResizeConfig {
    /// Smallest fleet the supervisor may shrink to.
    pub min_shards: usize,
    /// Largest fleet the supervisor may grow to.
    pub max_shards: usize,
    /// Minimum wall-clock spacing between two resizes (a live migration
    /// has real cost; give the new topology time to absorb load before
    /// judging it).
    pub cooldown: Duration,
    /// The decision rule.
    pub policy: Box<dyn ResizePolicy>,
}

impl ResizeConfig {
    /// Hysteresis policy over the given bounds with default watermarks.
    pub fn bounded(min_shards: usize, max_shards: usize) -> Self {
        ResizeConfig {
            min_shards,
            max_shards,
            cooldown: Duration::from_secs(10),
            policy: Box::new(HysteresisResizePolicy::default()),
        }
    }
}

impl std::fmt::Debug for ResizeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResizeConfig")
            .field("min_shards", &self.min_shards)
            .field("max_shards", &self.max_shards)
            .field("cooldown", &self.cooldown)
            .finish()
    }
}

/// A pluggable fleet-sizing rule: fed the current shard loads every
/// supervisor tick, answers with the shard count it wants (or `None` to
/// stay put). The supervisor clamps the answer to the configured bounds
/// and applies the cooldown — policies only express *desire*.
pub trait ResizePolicy: Send {
    /// The desired shard count under the observed loads.
    fn desired_shards(&mut self, loads: &[ShardLoad], current: usize) -> Option<usize>;

    /// The smoothed load signal the policy is currently acting on
    /// (reported in [`ServeEventKind::ResizeDecision`] events for
    /// observability; return the raw mean if the policy keeps no state).
    fn signal(&self) -> f64 {
        0.0
    }
}

/// The default [`ResizePolicy`]: an EWMA of the mean per-shard queued
/// instances, compared against distinct grow/shrink watermarks
/// (hysteresis), stepping one shard at a time.
///
/// * backlog above `scale_up_backlog` → one more shard;
/// * backlog below `scale_down_backlog` → one fewer shard;
/// * in between → stay put.
///
/// The gap between the watermarks is what prevents flapping: a fleet that
/// just grew sees its backlog drop, and must drop *well below* the grow
/// threshold before the policy gives the shard back.
pub struct HysteresisResizePolicy {
    ewma: Ewma,
    /// Smoothed mean queued instances per shard above which to add a shard.
    pub scale_up_backlog: f64,
    /// Smoothed mean queued instances per shard below which to drop one.
    pub scale_down_backlog: f64,
}

impl HysteresisResizePolicy {
    /// Policy with explicit watermarks and EWMA smoothing factor.
    ///
    /// # Panics
    /// Panics if `scale_down_backlog >= scale_up_backlog` (the hysteresis
    /// band must be non-empty) or `lambda` is outside `(0, 1]`.
    pub fn new(scale_up_backlog: f64, scale_down_backlog: f64, lambda: f64) -> Self {
        assert!(
            scale_down_backlog < scale_up_backlog,
            "hysteresis needs scale_down_backlog < scale_up_backlog"
        );
        HysteresisResizePolicy { ewma: Ewma::new(lambda), scale_up_backlog, scale_down_backlog }
    }
}

impl Default for HysteresisResizePolicy {
    fn default() -> Self {
        // Watermarks in *instances queued per shard*: grow when a shard is
        // ~half an ingest queue behind, shrink when backlogs are trivial.
        HysteresisResizePolicy::new(512.0, 32.0, 0.3)
    }
}

impl ResizePolicy for HysteresisResizePolicy {
    fn desired_shards(&mut self, loads: &[ShardLoad], current: usize) -> Option<usize> {
        if loads.is_empty() {
            return None;
        }
        let mean =
            loads.iter().map(|l| l.queued_instances as f64).sum::<f64>() / loads.len() as f64;
        let smoothed = self.ewma.update(mean);
        if smoothed > self.scale_up_backlog {
            Some(current + 1)
        } else if smoothed < self.scale_down_backlog && current > 1 {
            Some(current - 1)
        } else {
            None
        }
    }

    fn signal(&self) -> f64 {
        self.ewma.value()
    }
}

/// Supervisor configuration: the control-loop cadence plus the two
/// policies it enforces (either may be disabled independently).
#[derive(Debug)]
pub struct SupervisorConfig {
    /// Control-loop cadence: how often schedules are checked and shard
    /// loads sampled. Checkpoint intervals shorter than the tick are
    /// effectively rounded up to it.
    pub tick: Duration,
    /// Background checkpointing policy (`None` disables spilling).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Load-based auto-resize (`None` pins the fleet size).
    pub resize: Option<ResizeConfig>,
    /// Hot/cold stream tiering (`None` keeps every stream hot — the
    /// pre-tiering behavior). See [`TierPolicy`].
    pub tier: Option<TierPolicy>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            tick: Duration::from_millis(250),
            checkpoint: Some(CheckpointPolicy::default()),
            resize: None,
            tier: None,
        }
    }
}

/// One auto-resize the supervisor **performed**. Attempts that failed are
/// not recorded here (the fleet size did not change); they land in
/// [`SupervisorReport::errors`].
#[derive(Debug, Clone)]
pub struct ResizeDecision {
    /// Shard count before.
    pub old_shards: usize,
    /// Shard count after (the policy's desire clamped to the bounds).
    pub new_shards: usize,
    /// The smoothed backlog signal at decision time.
    pub mean_queued_instances: f64,
    /// Streams the resize migrated.
    pub moved: usize,
}

/// What a stopped supervisor hands back.
#[derive(Debug, Default)]
pub struct SupervisorReport {
    /// Periodic (interval-driven) checkpoints spilled.
    pub periodic_spills: u64,
    /// Urgent (drift-driven) checkpoints spilled.
    pub urgent_spills: u64,
    /// Streams hibernated by the tier policy (idle-age or budget
    /// pressure). Each hibernation also spilled a fresh checkpoint.
    pub hibernations: u64,
    /// Cold streams whose in-memory checkpoint bytes were demoted to the
    /// spill file on disk.
    pub disk_demotions: u64,
    /// Every resize decision taken, in order.
    pub resizes: Vec<ResizeDecision>,
    /// Control-plane errors the supervisor absorbed (a stream detached
    /// mid-checkpoint, a spill hitting a full disk, …). The supervisor
    /// never panics the fleet over these; they are reported for
    /// observability.
    pub errors: Vec<String>,
}

/// The background control-plane thread. Construct with
/// [`Supervisor::start`]; stop (and collect the report) with
/// [`SupervisorHandle::stop`].
pub struct Supervisor;

/// Handle to a running supervisor: owns its thread and stop signal.
pub struct SupervisorHandle {
    stop: Sender<()>,
    join: JoinHandle<SupervisorReport>,
}

impl Supervisor {
    /// Spawns the supervisor thread over a shared server handle and a
    /// spill sink.
    ///
    /// The supervisor holds its `Arc<ServerHandle>` until stopped, so the
    /// teardown order is: `handle.stop()` first, then
    /// `Arc::try_unwrap(server)` and
    /// [`shutdown`](crate::server::ServerHandle::shutdown).
    pub fn start(
        server: Arc<ServerHandle>,
        sink: SnapshotSink,
        config: SupervisorConfig,
    ) -> SupervisorHandle {
        let (stop, stop_rx) = channel();
        // Subscribed before the thread starts, so no drift event published
        // after `start` returns can be missed.
        let events = server.subscribe();
        let join = std::thread::Builder::new()
            .name("rbm-serve-supervisor".to_string())
            .spawn(move || run(server, sink, config, stop_rx, events))
            .expect("failed to spawn supervisor thread");
        SupervisorHandle { stop, join }
    }
}

impl SupervisorHandle {
    /// Stops the supervisor (finishing the tick in progress) and returns
    /// its report. The supervisor's `Arc<ServerHandle>` is released by the
    /// time this returns.
    pub fn stop(self) -> SupervisorReport {
        // A dropped receiver also stops the loop, so send errors (the
        // thread already exiting) are fine to ignore.
        let _ = self.stop.send(());
        self.join.join().expect("supervisor thread panicked")
    }
}

impl std::fmt::Debug for SupervisorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisorHandle").finish()
    }
}

/// Per-stream checkpoint schedule entry.
struct StreamSchedule {
    next_due: Instant,
    /// A drift fired since the last spill — spill at the next tick.
    urgent: bool,
}

/// The supervisor loop body.
fn run(
    server: Arc<ServerHandle>,
    sink: SnapshotSink,
    mut config: SupervisorConfig,
    stop: Receiver<()>,
    events: Receiver<ServeEvent>,
) -> SupervisorReport {
    // Auto-wire telemetry: the sink records spill encode/write timings
    // into the server's registry, urgent spills are counted, and the
    // server's slow-path trace ring is drained to the sink every tick.
    let metrics = server.metrics();
    let sink = sink.with_metrics(&metrics);
    let urgent_spills = metrics.counter("rbm_supervisor_urgent_spills_total", &[]);
    let tracer = server.tracer();
    let mut report = SupervisorReport::default();
    let mut schedule: HashMap<String, StreamSchedule> = HashMap::new();
    // Cold streams whose spill file on disk *is* their state (clean
    // eviction or completed demotion): periodic spills skip them — the
    // bytes cannot go stale while the stream is cold. Membership ends at
    // the stream's `Rehydrated` (or `Detached`) event.
    let mut cold_disk: HashSet<String> = HashSet::new();
    let mut last_resize = Instant::now();
    // Streams attached before the supervisor started predate the bus
    // subscription; seed the schedule once from a fleet inventory. From
    // here on the schedule is maintained purely from bus events — an
    // Inventory round-trip queues behind ingest backlog on every shard,
    // and a per-tick barrier would stall urgent spills and resize relief
    // exactly when the fleet is overloaded.
    if let Some(policy) = config.checkpoint {
        let now = Instant::now();
        for id in server.attached_streams() {
            let next_due = now + jitter_offset(&policy, &id);
            schedule.insert(id, StreamSchedule { next_due, urgent: false });
        }
    }
    loop {
        // The stop channel doubles as the tick clock.
        match stop.recv_timeout(config.tick) {
            Ok(()) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
        let now = Instant::now();

        // Fold the bus events since the last tick into the schedule and
        // the cold-disk set. Events arrive in publish order, and a
        // stream's `Attached` always precedes its `Drift`s, so an urgent
        // mark can never race the stream's first schedule entry. Draining
        // happens every tick regardless of policies, so the bus queue
        // cannot grow unboundedly behind a resize-only supervisor.
        for event in events.try_iter() {
            match &event.kind {
                ServeEventKind::Attached => {
                    if let Some(policy) = config.checkpoint {
                        let id = event.stream.to_string();
                        let next_due = now + jitter_offset(&policy, &id);
                        schedule.entry(id).or_insert(StreamSchedule { next_due, urgent: false });
                    }
                }
                ServeEventKind::Detached { .. } => {
                    schedule.remove(event.stream.as_ref());
                    cold_disk.remove(event.stream.as_ref());
                }
                ServeEventKind::Drift { .. } if config.checkpoint.is_some_and(|p| p.on_drift) => {
                    if let Some(entry) = schedule.get_mut(event.stream.as_ref()) {
                        entry.urgent = true;
                    }
                }
                // Rehydrated state starts diverging from its spill the
                // moment it steps again — back onto the normal schedule.
                ServeEventKind::Rehydrated { .. } => {
                    cold_disk.remove(event.stream.as_ref());
                }
                _ => {}
            }
        }

        // Resize before the spill round: the decision is a gauge read,
        // while a checkpoint round can take milliseconds per stream — an
        // overloaded fleet should not wait behind its own spill schedule
        // for relief. The policy sees the gauges every tick (so its
        // smoothing keeps tracking reality through the cooldown); only
        // the resize *action* is paced by the cooldown.
        if let Some(resize) = config.resize.as_mut() {
            let loads = server.shard_loads();
            let current = loads.len();
            let desired = resize.policy.desired_shards(&loads, current);
            if now.duration_since(last_resize) >= resize.cooldown {
                if let Some(desired) = desired {
                    let clamped = desired.clamp(resize.min_shards, resize.max_shards);
                    if clamped != current {
                        let signal = resize.policy.signal();
                        match server.resize_shards(clamped) {
                            Ok(resize_report) => {
                                server.bus().publish(ServeEvent {
                                    stream: Arc::from(""),
                                    shard: clamped,
                                    kind: ServeEventKind::ResizeDecision {
                                        old_shards: current,
                                        new_shards: clamped,
                                        mean_queued_instances: signal,
                                    },
                                });
                                report.resizes.push(ResizeDecision {
                                    old_shards: current,
                                    new_shards: clamped,
                                    mean_queued_instances: signal,
                                    moved: resize_report.moved.len(),
                                });
                            }
                            Err(e) => {
                                // No event: the fleet size did not change,
                                // and subscribers must be able to trust
                                // `ResizeDecision` as fact, not intent.
                                report
                                    .errors
                                    .push(format!("resize {current} -> {clamped} failed: {e}"));
                            }
                        }
                        // Pace the next attempt either way — retrying a
                        // failed resize every tick would busy-loop the
                        // error against a broken fleet.
                        last_resize = Instant::now();
                    }
                }
            }
        }

        // Tier pass: hibernate idle / over-budget hot streams and demote
        // cold in-memory handles to disk. Runs after the resize block (a
        // just-resized fleet reports fresh tier rows) and before the spill
        // round (an eviction's spill resets the stream's spill schedule,
        // so the round never redundantly re-spills what the tier pass just
        // wrote).
        if let Some(tier) = config.tier {
            let scan = server.tier_scan();
            let hot: Vec<_> = scan.iter().filter(|e| e.tier == TierKind::Hot).collect();
            let mut planned: Vec<&std::sync::Arc<str>> = Vec::new();
            let mut planned_ids: HashSet<&str> = HashSet::new();
            // Budget pressure first — these evictions are *urgent* (the
            // fleet is over its memory budget): most-idle hot streams go,
            // id order breaking ties so the plan is deterministic.
            if let Some(max_hot) = tier.max_hot_streams {
                if hot.len() > max_hot {
                    let mut candidates = hot.clone();
                    candidates.sort_by(|a, b| b.idle.cmp(&a.idle).then_with(|| a.id.cmp(&b.id)));
                    for entry in &candidates[..hot.len() - max_hot] {
                        if planned_ids.insert(entry.id.as_ref()) {
                            planned.push(&entry.id);
                        }
                    }
                }
            }
            // Idle-age trigger on whatever remains hot.
            if let Some(idle_after) = tier.idle_after {
                for entry in &hot {
                    if entry.idle >= idle_after && planned_ids.insert(entry.id.as_ref()) {
                        planned.push(&entry.id);
                    }
                }
            }
            // Cold in-memory handles: re-spill at their (frozen) position
            // and swap the resident bytes for the disk file.
            for entry in scan.iter().filter(|e| e.tier == TierKind::ColdMemory) {
                if planned_ids.insert(entry.id.as_ref()) {
                    planned.push(&entry.id);
                }
            }
            // The per-tick cap bounds this tick's encode+spill work; the
            // remainder drains over the following ticks (the scan re-finds
            // it).
            for id in planned.into_iter().take(tier.max_demotions_per_tick) {
                let span = tracer.span("hibernate", id);
                let outcome = demote(&server, &sink, id);
                span.finish();
                match outcome {
                    Ok((outcome, position)) => {
                        server.note_spill();
                        server.bus().publish(ServeEvent {
                            stream: Arc::from(id.as_ref()),
                            shard: server.shard_of(id),
                            kind: ServeEventKind::CheckpointSpilled { position, urgent: false },
                        });
                        match outcome {
                            HibernateOutcome::Hibernated { clean, .. } => {
                                report.hibernations += 1;
                                if clean {
                                    cold_disk.insert(id.to_string());
                                }
                            }
                            HibernateOutcome::DemotedToDisk { .. } => {
                                report.disk_demotions += 1;
                                cold_disk.insert(id.to_string());
                            }
                            HibernateOutcome::AlreadyCold { .. } => {
                                cold_disk.insert(id.to_string());
                            }
                        }
                        // The eviction just spilled a fresh checkpoint;
                        // push the stream's periodic slot out accordingly.
                        if let (Some(policy), Some(entry)) =
                            (config.checkpoint, schedule.get_mut(id.as_ref()))
                        {
                            entry.next_due = now + policy.every;
                        }
                    }
                    // Detached between the scan and the demote: the
                    // schedule entry dies at its Detached event.
                    Err(SpillError::Serve(ServeError::UnknownStream(_))) => {}
                    Err(e) => report.errors.push(format!("hibernate of `{id}`: {e}")),
                }
            }
        }

        // Spill everything due or urgent.
        if let Some(policy) = config.checkpoint {
            for (id, entry) in schedule.iter_mut() {
                let urgent = entry.urgent;
                if !urgent && now < entry.next_due {
                    continue;
                }
                if !urgent && cold_disk.contains(id) {
                    // The disk file already *is* this cold stream's state;
                    // a periodic spill would decode and rewrite identical
                    // bytes. (Urgent spills still run — a drift marked the
                    // state worth preserving before the stream went cold.)
                    entry.next_due = now + policy.every;
                    continue;
                }
                let span = tracer.span("spill", id);
                let outcome = spill(&server, &sink, id);
                span.finish();
                match outcome {
                    Ok(position) => {
                        server.note_spill();
                        if urgent {
                            report.urgent_spills += 1;
                            urgent_spills.inc();
                        } else {
                            report.periodic_spills += 1;
                        }
                        server.bus().publish(ServeEvent {
                            stream: Arc::from(id.as_str()),
                            shard: server.shard_of(id),
                            kind: ServeEventKind::CheckpointSpilled { position, urgent },
                        });
                        // Metric-history rotation rides the spill
                        // schedule: right after a stream's spill, its
                        // (sink-configured) retention policy is enforced.
                        if let Err(e) = sink.enforce_metric_retention(id) {
                            report.errors.push(format!("metric retention of `{id}`: {e}"));
                        }
                    }
                    // The stream detached after this tick's event drain:
                    // not an error, the entry dies at its Detached event.
                    Err(SpillError::Serve(ServeError::UnknownStream(_))) => {}
                    Err(e) => report.errors.push(format!("checkpoint of `{id}`: {e}")),
                }
                entry.urgent = false;
                entry.next_due = now + policy.every;
            }
        }

        // Persist the slow-path spans accumulated this tick (spills above,
        // resize phases recorded by the server) to the sink's JSONL trace
        // log, rotation included.
        if !tracer.is_empty() {
            if let Err(e) = sink.spill_trace(&tracer.drain()) {
                report.errors.push(format!("trace spill: {e}"));
            }
        }
    }
    // Final flush so spans from the last partial tick are not lost.
    if !tracer.is_empty() {
        if let Err(e) = sink.spill_trace(&tracer.drain()) {
            report.errors.push(format!("trace spill: {e}"));
        }
    }
    report
}

/// The deterministic per-stream phase offset of the first spill.
fn jitter_offset(policy: &CheckpointPolicy, stream_id: &str) -> Duration {
    let jitter = policy.jitter.clamp(0.0, 1.0);
    if jitter == 0.0 {
        return Duration::ZERO;
    }
    // 53-bit uniform fraction derived from the stream id — stable across
    // restarts, independent of wall clock.
    let hash = derive_stream_seed(0x5e1f_ca7e, stream_id);
    let frac = (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    policy.every.mul_f64(jitter * frac)
}

/// Why a background spill failed.
enum SpillError {
    Serve(ServeError),
    Io(std::io::Error),
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Serve(e) => write!(f, "{e}"),
            SpillError::Io(e) => write!(f, "spill I/O: {e}"),
        }
    }
}

/// Checkpoints one stream and spills it through the sink, returning the
/// checkpoint's resume position.
fn spill(server: &ServerHandle, sink: &SnapshotSink, id: &str) -> Result<u64, SpillError> {
    let checkpoint = server.checkpoint_stream(id).map_err(SpillError::Serve)?;
    let position = checkpoint.checkpoint.processed().unwrap_or(0);
    sink.spill_checkpoint(&checkpoint).map_err(SpillError::Io)?;
    Ok(position)
}

/// Demotes one stream toward the cold-disk tier: spill a fresh checkpoint,
/// then hand the shard its `(position, path)` so the eviction reuses the
/// file when the stream has not stepped since (clean), or encodes on
/// demand when it has (dirty — the in-memory bytes are demoted by the next
/// tick's pass, by which point the position is frozen). Returns the
/// outcome plus the spilled position.
fn demote(
    server: &ServerHandle,
    sink: &SnapshotSink,
    id: &str,
) -> Result<(HibernateOutcome, u64), SpillError> {
    let checkpoint = server.checkpoint_stream(id).map_err(SpillError::Serve)?;
    let position = checkpoint.checkpoint.processed().unwrap_or(0);
    let path = sink.spill_checkpoint(&checkpoint).map_err(SpillError::Io)?;
    let outcome = server.hibernate_with(id, Some((position, path))).map_err(SpillError::Serve)?;
    Ok((outcome, position))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(shard: usize, queued: u64) -> ShardLoad {
        ShardLoad {
            shard,
            queue_depth: queued / 8,
            queued_instances: queued,
            processed_instances: 0,
        }
    }

    #[test]
    fn hysteresis_policy_steps_up_and_down_with_a_dead_band() {
        // lambda = 1.0 → no smoothing lag, pure watermark logic.
        let mut policy = HysteresisResizePolicy::new(100.0, 10.0, 1.0);
        assert_eq!(policy.desired_shards(&[load(0, 500)], 2), Some(3), "overload grows");
        assert_eq!(policy.desired_shards(&[load(0, 50)], 3), None, "dead band holds");
        assert_eq!(policy.desired_shards(&[load(0, 0)], 3), Some(2), "idle shrinks");
        assert_eq!(policy.desired_shards(&[load(0, 0)], 1), None, "never below one shard");
        assert_eq!(policy.desired_shards(&[], 4), None, "no loads, no opinion");
    }

    #[test]
    fn hysteresis_smoothing_filters_single_spikes() {
        let mut policy = HysteresisResizePolicy::new(100.0, 10.0, 0.05);
        // Initialize the average inside the dead band, then spike: a
        // single 1000-instance burst must not trigger growth at λ=0.05...
        assert_eq!(policy.desired_shards(&[load(0, 50)], 2), None);
        assert_eq!(policy.desired_shards(&[load(0, 1_000)], 2), None, "one spike is filtered");
        // ...but a sustained backlog works through the EWMA quickly.
        let mut grew = false;
        for _ in 0..10 {
            if policy.desired_shards(&[load(0, 1_000)], 2).is_some() {
                grew = true;
                break;
            }
        }
        assert!(grew, "sustained overload must grow the fleet");
        assert!(policy.signal() > 100.0);
    }

    #[test]
    #[should_panic]
    fn inverted_watermarks_are_rejected() {
        HysteresisResizePolicy::new(10.0, 100.0, 0.5);
    }

    #[test]
    fn jitter_offsets_are_deterministic_and_bounded() {
        let policy =
            CheckpointPolicy { every: Duration::from_secs(10), jitter: 0.5, on_drift: false };
        let a1 = jitter_offset(&policy, "feed-a");
        let a2 = jitter_offset(&policy, "feed-a");
        let b = jitter_offset(&policy, "feed-b");
        assert_eq!(a1, a2, "offset is a pure function of the id");
        assert_ne!(a1, b, "distinct ids stagger");
        assert!(a1 <= Duration::from_secs(5), "bounded by jitter × every");
        let none = CheckpointPolicy { jitter: 0.0, ..policy };
        assert_eq!(jitter_offset(&none, "feed-a"), Duration::ZERO);
    }
}
