//! The prequential evaluation loop: classifier + detector + metrics.
//!
//! Mirrors the paper's setup (Sec. VI-B): every detector drives the same
//! base classifier (Adaptive Cost-Sensitive Perceptron Trees). Each instance
//! is first *tested* (prediction recorded into the pmAUC/pmGM evaluator and
//! into the detector), then *learned*; when the detector signals a drift the
//! classifier is reset so it can re-learn the new concept. Detector test and
//! update times are accumulated separately (the bottom rows of Table III).

use crate::detectors::DetectorKind;
use rbm_im_classifiers::{CostSensitivePerceptronTree, OnlineClassifier};
use rbm_im_detectors::Observation;
use rbm_im_metrics::{PrequentialEvaluator, PrequentialSnapshot};
use rbm_im_streams::DataStream;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of a single prequential run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Window size of the prequential metrics (the paper uses 1000).
    pub metric_window: usize,
    /// Maximum number of instances to process (`None` = until exhaustion).
    pub max_instances: Option<u64>,
    /// Whether the classifier is reset when the detector fires.
    pub reset_on_drift: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { metric_window: 1000, max_instances: None, reset_on_drift: true }
    }
}

/// Outcome of one prequential run (one cell of Table III plus diagnostics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Detector evaluated.
    pub detector: DetectorKind,
    /// Stream name.
    pub stream: String,
    /// Stream-averaged prequential multi-class AUC, in percent.
    pub pm_auc: f64,
    /// Stream-averaged prequential multi-class G-mean, in percent.
    pub pm_gmean: f64,
    /// Final windowed accuracy, in percent.
    pub accuracy: f64,
    /// Final windowed Cohen's kappa.
    pub kappa: f64,
    /// Number of instances processed.
    pub instances: u64,
    /// Positions at which the detector signalled drift.
    pub detections: Vec<u64>,
    /// Total seconds spent in detector `update` calls.
    pub detector_update_seconds: f64,
    /// Total seconds spent testing (classifier prediction + metric update).
    pub test_seconds: f64,
    /// Total seconds spent training the classifier.
    pub train_seconds: f64,
}

impl RunResult {
    /// Number of drift signals raised.
    pub fn drift_count(&self) -> usize {
        self.detections.len()
    }
}

/// Runs one detector on one stream with the paper's prequential protocol.
pub fn run_detector_on_stream(
    stream: &mut (dyn DataStream + Send),
    detector_kind: DetectorKind,
    config: &RunConfig,
) -> RunResult {
    let schema = stream.schema().clone();
    let mut classifier = CostSensitivePerceptronTree::new(schema.num_features, schema.num_classes);
    let mut detector = detector_kind.build(schema.num_features, schema.num_classes);
    let mut evaluator = PrequentialEvaluator::new(schema.num_classes, config.metric_window);
    let mut detections = Vec::new();
    let mut detector_update_seconds = 0.0;
    let mut test_seconds = 0.0;
    let mut train_seconds = 0.0;
    let mut processed: u64 = 0;

    while let Some(instance) = stream.next_instance() {
        if let Some(limit) = config.max_instances {
            if processed >= limit {
                break;
            }
        }
        // Test.
        let test_start = Instant::now();
        let scores = classifier.predict_scores(&instance.features);
        let predicted = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are not NaN"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        evaluator.record(instance.class, predicted, &scores);
        test_seconds += test_start.elapsed().as_secs_f64();

        // Detector update.
        let observation = Observation {
            features: &instance.features,
            true_class: instance.class,
            predicted_class: predicted,
            correct: predicted == instance.class,
        };
        let update_start = Instant::now();
        let state = detector.update(&observation);
        detector_update_seconds += update_start.elapsed().as_secs_f64();
        if state.is_drift() {
            detections.push(instance.index);
            if config.reset_on_drift {
                classifier.reset();
            }
        }

        // Train.
        let train_start = Instant::now();
        classifier.learn(&instance);
        train_seconds += train_start.elapsed().as_secs_f64();
        processed += 1;
    }

    let snapshot: PrequentialSnapshot = evaluator.snapshot();
    RunResult {
        detector: detector_kind,
        stream: schema.name,
        pm_auc: evaluator.average_pm_auc() * 100.0,
        pm_gmean: evaluator.average_pm_gmean() * 100.0,
        accuracy: snapshot.accuracy * 100.0,
        kappa: snapshot.kappa,
        instances: processed,
        detections,
        detector_update_seconds,
        test_seconds,
        train_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_streams::scenarios::{scenario1, ScenarioConfig};
    use rbm_im_streams::generators::RandomRbfGenerator;
    use rbm_im_streams::stream::BoundedStream;

    fn small_scenario() -> ScenarioConfig {
        ScenarioConfig {
            length: 8_000,
            num_features: 8,
            num_classes: 3,
            imbalance_ratio: 10.0,
            n_drifts: 1,
            ..Default::default()
        }
    }

    #[test]
    fn run_produces_sane_metrics() {
        let mut scenario = scenario1(&small_scenario());
        let config = RunConfig { metric_window: 500, ..Default::default() };
        let result = run_detector_on_stream(scenario.stream.as_mut(), DetectorKind::RbmIm, &config);
        assert_eq!(result.instances, 8_000);
        assert!(result.pm_auc > 0.0 && result.pm_auc <= 100.0);
        assert!(result.pm_gmean >= 0.0 && result.pm_gmean <= 100.0);
        assert!(result.accuracy > 0.0 && result.accuracy <= 100.0);
        assert!(result.detector_update_seconds >= 0.0);
        assert_eq!(result.detector, DetectorKind::RbmIm);
        assert_eq!(result.drift_count(), result.detections.len());
    }

    #[test]
    fn detector_driven_adaptation_beats_no_detector_after_drift() {
        // A stream with a severe sudden drift: the classifier driven by a
        // reasonable detector (ADWIN) should end up at least as good as one
        // that never adapts (detector that never fires ⇒ emulate by
        // disabling reset_on_drift).
        let make_stream = || {
            let mut gen = RandomRbfGenerator::new(8, 3, 2, 0.0, 77);
            let before: Vec<_> = {
                use rbm_im_streams::StreamExt;
                gen.take_instances(6_000)
            };
            gen.regenerate();
            let after: Vec<_> = {
                use rbm_im_streams::StreamExt;
                gen.take_instances(6_000)
            };
            let mut all = before;
            all.extend(after);
            VecStream::new(all, 8, 3)
        };
        let config_adapt = RunConfig { metric_window: 500, ..Default::default() };
        let config_frozen = RunConfig { metric_window: 500, reset_on_drift: false, ..Default::default() };
        let mut s1 = make_stream();
        let adaptive = run_detector_on_stream(&mut s1, DetectorKind::Adwin, &config_adapt);
        let mut s2 = make_stream();
        let frozen = run_detector_on_stream(&mut s2, DetectorKind::Adwin, &config_frozen);
        assert!(
            adaptive.pm_auc >= frozen.pm_auc - 3.0,
            "adaptive {:.2} should not trail frozen {:.2} materially",
            adaptive.pm_auc,
            frozen.pm_auc
        );
    }

    #[test]
    fn max_instances_is_respected() {
        let mut scenario = scenario1(&small_scenario());
        let config = RunConfig { metric_window: 200, max_instances: Some(1_000), ..Default::default() };
        let result = run_detector_on_stream(scenario.stream.as_mut(), DetectorKind::Ddm, &config);
        assert_eq!(result.instances, 1_000);
    }

    #[test]
    fn bounded_stream_terminates_runner() {
        let gen = RandomRbfGenerator::new(5, 3, 2, 0.0, 3);
        let mut stream = BoundedStream::new(gen, 2_000);
        let result =
            run_detector_on_stream(&mut stream, DetectorKind::Fhddm, &RunConfig { metric_window: 500, ..Default::default() });
        assert_eq!(result.instances, 2_000);
    }

    /// Minimal in-memory stream used by runner tests.
    struct VecStream {
        data: Vec<rbm_im_streams::Instance>,
        pos: usize,
        schema: rbm_im_streams::StreamSchema,
    }

    impl VecStream {
        fn new(data: Vec<rbm_im_streams::Instance>, num_features: usize, num_classes: usize) -> Self {
            VecStream {
                data,
                pos: 0,
                schema: rbm_im_streams::StreamSchema::new("vec", num_features, num_classes),
            }
        }
    }

    impl DataStream for VecStream {
        fn next_instance(&mut self) -> Option<rbm_im_streams::Instance> {
            let inst = self.data.get(self.pos).cloned();
            self.pos += 1;
            inst
        }
        fn schema(&self) -> &rbm_im_streams::StreamSchema {
            &self.schema
        }
        fn restart(&mut self) {
            self.pos = 0;
        }
    }
}
