//! Experiment 1 — detector comparison over the 24 benchmark streams
//! (Table III) with Friedman / Bonferroni–Dunn ranking (Figs. 4–5) and
//! Bayesian signed pairwise tests (Figs. 6–7).
//!
//! The full grid (detectors × benchmarks) runs through the rayon-parallel
//! [`run_grid`](crate::pipeline::run_grid), one deterministic cell per
//! pair, so wall-clock time scales
//! with the core count while the output stays byte-identical to a
//! single-threaded run.

use crate::detectors::DetectorKind;
use crate::pipeline::{run_grid_observed, GridStream, RunConfig, RunResult};
use crate::registry::DetectorRegistry;
use rbm_im_stats::bayesian::{bayesian_signed_test, BayesianSignedOutcome};
use rbm_im_stats::friedman::{bonferroni_dunn_critical_difference, friedman_test, FriedmanResult};
use rbm_im_streams::registry::{all_benchmarks, BenchmarkSpec, BuildConfig};
use serde::{Deserialize, Serialize};

/// Configuration of Experiment 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment1Config {
    /// Detectors to compare (defaults to the paper's six).
    pub detectors: Vec<DetectorKind>,
    /// Stream construction (seed, length scaling, drift count, dynamic IR).
    pub build: BuildConfigSerde,
    /// Prequential run settings.
    pub run: RunConfig,
    /// Optional restriction to a subset of benchmark names (all 24 if empty).
    pub benchmarks: Vec<String>,
}

/// Serializable mirror of [`BuildConfig`] (which lives in the streams crate
/// and intentionally stays serde-free).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuildConfigSerde {
    /// Reproducibility seed.
    pub seed: u64,
    /// Divisor applied to the published stream lengths.
    pub scale_divisor: u64,
    /// Number of injected drifts per artificial stream.
    pub n_drifts: usize,
    /// Whether artificial streams use a dynamic imbalance ratio.
    pub dynamic_imbalance: bool,
}

impl From<BuildConfigSerde> for BuildConfig {
    fn from(value: BuildConfigSerde) -> Self {
        BuildConfig {
            seed: value.seed,
            scale_divisor: value.scale_divisor,
            n_drifts: value.n_drifts,
            dynamic_imbalance: value.dynamic_imbalance,
        }
    }
}

impl Default for Experiment1Config {
    fn default() -> Self {
        Experiment1Config {
            detectors: DetectorKind::paper_detectors(),
            build: BuildConfigSerde {
                seed: 42,
                scale_divisor: 20,
                n_drifts: 3,
                dynamic_imbalance: true,
            },
            run: RunConfig::default(),
            benchmarks: Vec::new(),
        }
    }
}

/// Full outcome of Experiment 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Experiment1Result {
    /// One row per (benchmark × detector).
    pub runs: Vec<RunResult>,
    /// Benchmark names in evaluation order.
    pub benchmarks: Vec<String>,
    /// Detector order used for the rank analysis.
    pub detectors: Vec<DetectorKind>,
}

impl Experiment1Result {
    /// pmAUC matrix `[detector][benchmark]`.
    pub fn pm_auc_matrix(&self) -> Vec<Vec<f64>> {
        self.metric_matrix(|r| r.pm_auc)
    }

    /// pmGM matrix `[detector][benchmark]`.
    pub fn pm_gmean_matrix(&self) -> Vec<Vec<f64>> {
        self.metric_matrix(|r| r.pm_gmean)
    }

    fn metric_matrix(&self, metric: impl Fn(&RunResult) -> f64) -> Vec<Vec<f64>> {
        self.detectors
            .iter()
            .map(|d| {
                self.benchmarks
                    .iter()
                    .map(|b| {
                        self.runs
                            .iter()
                            .find(|r| r.detector == d.name() && &r.stream == b)
                            .map(&metric)
                            .unwrap_or(f64::NAN)
                    })
                    .collect()
            })
            .collect()
    }

    /// Friedman test over the pmAUC matrix (Fig. 4 input).
    pub fn friedman_pm_auc(&self) -> rbm_im_stats::Result<FriedmanResult> {
        friedman_test(&self.pm_auc_matrix(), true)
    }

    /// Friedman test over the pmGM matrix (Fig. 5 input).
    pub fn friedman_pm_gmean(&self) -> rbm_im_stats::Result<FriedmanResult> {
        friedman_test(&self.pm_gmean_matrix(), true)
    }

    /// Bonferroni–Dunn critical difference for this comparison.
    pub fn critical_difference(&self, alpha: f64) -> rbm_im_stats::Result<f64> {
        bonferroni_dunn_critical_difference(self.detectors.len(), self.benchmarks.len(), alpha)
    }

    /// Bayesian signed test of RBM-IM against another detector on pmAUC
    /// (Figs. 6–7; the rope is expressed in pmAUC percentage points).
    pub fn bayesian_vs(
        &self,
        opponent: DetectorKind,
        rope: f64,
        samples: usize,
        seed: u64,
    ) -> rbm_im_stats::Result<BayesianSignedOutcome> {
        let matrix = self.pm_auc_matrix();
        let rbm_idx = self
            .detectors
            .iter()
            .position(|d| *d == DetectorKind::RbmIm)
            .expect("RBM-IM must be part of the comparison");
        let opp_idx = self
            .detectors
            .iter()
            .position(|d| *d == opponent)
            .expect("opponent must be part of the comparison");
        bayesian_signed_test(&matrix[rbm_idx], &matrix[opp_idx], rope, samples, seed)
    }

    /// Average detector update time in seconds, per detector.
    pub fn average_update_seconds(&self) -> Vec<(DetectorKind, f64)> {
        self.detectors
            .iter()
            .map(|d| {
                let rows: Vec<&RunResult> =
                    self.runs.iter().filter(|r| r.detector == d.name()).collect();
                let avg = if rows.is_empty() {
                    0.0
                } else {
                    rows.iter().map(|r| r.detector_update_seconds).sum::<f64>() / rows.len() as f64
                };
                (*d, avg)
            })
            .collect()
    }
}

/// Selects the benchmarks requested by the configuration.
pub fn selected_benchmarks(config: &Experiment1Config) -> Vec<BenchmarkSpec> {
    let all = all_benchmarks();
    if config.benchmarks.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|b| config.benchmarks.iter().any(|n| n.eq_ignore_ascii_case(&b.name)))
            .collect()
    }
}

/// Runs Experiment 1: every configured detector on every configured
/// benchmark, as one parallel grid. `progress` is called live as each cell
/// completes (completion order, so long grids show progress); the returned
/// result is in deterministic benchmark-major grid order. Pass `|_| {}` to
/// ignore progress.
pub fn run_experiment1(
    config: &Experiment1Config,
    progress: impl FnMut(&RunResult) + Send,
) -> Experiment1Result {
    let build: BuildConfig = config.build.into();
    let specs = selected_benchmarks(config);
    let detectors: Vec<_> = config.detectors.iter().map(|d| d.spec()).collect();
    let streams: Vec<GridStream> =
        specs.iter().map(|s| GridStream::from_benchmark(s.clone(), build)).collect();
    let progress = std::sync::Mutex::new(progress);
    let runs =
        run_grid_observed(DetectorRegistry::global(), &detectors, &streams, &config.run, |run| {
            (progress.lock().expect("progress sink poisoned"))(run)
        })
        .expect("every DetectorKind resolves against the default registry");
    Experiment1Result {
        runs,
        benchmarks: specs.iter().map(|s| s.name.clone()).collect(),
        detectors: config.detectors.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny configuration so the experiment machinery can be
    /// exercised inside unit tests.
    fn tiny_config() -> Experiment1Config {
        Experiment1Config {
            detectors: vec![DetectorKind::Fhddm, DetectorKind::DdmOci, DetectorKind::RbmIm],
            build: BuildConfigSerde {
                seed: 7,
                scale_divisor: 400,
                n_drifts: 1,
                dynamic_imbalance: true,
            },
            run: RunConfig { metric_window: 500, max_instances: Some(2_500), ..Default::default() },
            benchmarks: vec!["RBF5".into(), "Aggrawal5".into()],
        }
    }

    #[test]
    fn tiny_experiment_produces_full_matrix() {
        let config = tiny_config();
        let mut seen = 0usize;
        let result = run_experiment1(&config, |_| seen += 1);
        assert_eq!(seen, 6);
        assert_eq!(result.runs.len(), 6);
        assert_eq!(result.benchmarks.len(), 2);
        let matrix = result.pm_auc_matrix();
        assert_eq!(matrix.len(), 3);
        assert_eq!(matrix[0].len(), 2);
        assert!(matrix.iter().flatten().all(|v| v.is_finite()));
        let gm = result.pm_gmean_matrix();
        assert!(gm.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn rank_analysis_runs_on_experiment_output() {
        let result = run_experiment1(&tiny_config(), |_| {});
        let friedman = result.friedman_pm_auc().unwrap();
        assert_eq!(friedman.average_ranks.len(), 3);
        let cd = result.critical_difference(0.05).unwrap();
        assert!(cd > 0.0);
        let bayes = result.bayesian_vs(DetectorKind::DdmOci, 1.0, 2_000, 3).unwrap();
        let total = bayes.p_left + bayes.p_rope + bayes.p_right;
        assert!((total - 1.0).abs() < 1e-9);
        let timings = result.average_update_seconds();
        assert_eq!(timings.len(), 3);
    }

    #[test]
    fn benchmark_selection_filters() {
        let mut config = Experiment1Config {
            benchmarks: vec!["rbf5".into(), "electricity".into()],
            ..Default::default()
        };
        let specs = selected_benchmarks(&config);
        assert_eq!(specs.len(), 2);
        config.benchmarks.clear();
        assert_eq!(selected_benchmarks(&config).len(), 24);
    }
}
