//! RBM-IM — the trainable, skew-insensitive concept drift detector that is
//! the paper's primary contribution (Sec. V).
//!
//! The detector is a three-layer Restricted Boltzmann Machine:
//!
//! * a **visible layer** `v` over the (min–max normalized) feature vector,
//! * a **hidden layer** `h` of binary units,
//! * a **class layer** `z` holding a softmax encoding of the label,
//!
//! trained online on mini-batches with Contrastive Divergence (CD-k) and a
//! **class-balanced negative log-likelihood loss** based on the effective
//! number of samples (Cui et al., CVPR 2019), which prevents majority
//! classes from dominating the learned representation.
//!
//! Drift detection (Sec. V-B) works per class:
//!
//! 1. every arriving mini-batch is *first* pushed through the network to
//!    obtain the average **reconstruction error** of each class
//!    (Eq. 22–27),
//! 2. the **trend** of that error is maintained as the slope of a linear
//!    regression over a self-adaptive sliding window of recent batches
//!    (Eq. 28–37, with ADWIN providing the adaptive window length),
//! 3. a **Granger causality test on first differences** compares the trend
//!    series of the previous window with the current one; when no causal
//!    relationship is found *and* the reconstruction error has moved
//!    materially, a drift is signalled **for that class** (the paper's
//!    detection rule, Sec. V-B), and independently an ADWIN monitor on the
//!    per-class reconstruction error provides the self-adaptive windowing
//!    the paper attributes to \[19\],
//! 4. the network then trains on the batch, so the detector follows the
//!    stream (changing imbalance ratios, class-role switches) without any
//!    manually set thresholds.
//!
//! The public entry point is [`RbmIm`], which implements the
//! [`DriftDetector`](rbm_im_detectors::DriftDetector) trait used by every
//! other detector in the reproduction, plus per-class attribution through
//! `drifted_classes`.
//!
//! # Layers
//!
//! * [`linalg`] — flat row-major [`linalg::DenseMatrix`] plus the blocked,
//!   auto-vectorizable GEMM/GEMV/sigmoid/softmax kernels every hot loop
//!   runs on (and the one shared `softmax_in_place`, re-exported by the
//!   classifiers crate);
//! * [`network`] — the three-layer RBM with batch-level CD-k over a
//!   zero-allocation [`network::Workspace`];
//! * [`mod@reference`] — the retained naive per-instance implementation, the
//!   ground truth of the equivalence suite and the baseline of the
//!   `rbm_train` microbenchmark;
//! * [`trend`] / [`detector`] — per-class trend tracking and the RBM-IM
//!   drift rule on top.

#![warn(missing_docs)]

pub mod detector;
pub mod linalg;
pub mod network;
pub mod pool;
pub mod reference;
pub mod trend;

pub use detector::{RbmIm, RbmImConfig};
pub use linalg::{DenseMatrix, KernelPolicy, ParallelMode};
pub use network::{RbmNetwork, RbmNetworkConfig, Workspace};
pub use pool::WorkspacePool;
pub use reference::ReferenceRbmNetwork;
pub use trend::TrendTracker;
