//! Fixed-bucket log-linear histogram for latency and size distributions.
//!
//! The bucket layout is HDR-style log-linear: each power-of-two octave is
//! split into 4 linear sub-buckets, so the relative quantile error is
//! bounded at 25% (one sub-bucket width) across the full `u64` range while
//! the whole histogram stays a fixed 252-slot array of `AtomicU64` —
//! about 2 KiB, no allocation after construction, and [`Histogram::record`]
//! is a pair of wait-free `fetch_add`s. Durations are recorded as integer
//! nanoseconds; the exposition layer converts `_seconds`-suffixed metrics
//! back to seconds at render time.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Value;

/// Number of log-linear buckets: values 0–3 map to 4 exact unit buckets,
/// octaves 2–63 contribute 4 sub-buckets each (`4 + 62 * 4 = 252`).
pub const NUM_BUCKETS: usize = 252;

/// Returns the bucket index for a recorded value. Total over `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        // Octave is the MSB position (>= 2 here); the next two bits select
        // the linear sub-bucket, giving `base & 3` in `0..4`.
        let octave = 63 - v.leading_zeros() as usize;
        let base = (v >> (octave - 2)) as usize;
        (octave - 1) * 4 + (base & 3)
    }
}

/// Largest value that maps to bucket `index` — the Prometheus `le` bound.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    debug_assert!(index < NUM_BUCKETS);
    if index < 4 {
        index as u64
    } else {
        let octave = index / 4 + 1;
        let sub = (index % 4) as u128;
        // The very top bucket's exclusive bound is 2^64, which overflows
        // u64 — compute in u128 and clamp.
        let bound = ((5 + sub) << (octave - 2)) - 1;
        bound.min(u64::MAX as u128) as u64
    }
}

/// Lock-free log-linear histogram. `record` is wait-free and performs no
/// heap allocation; snapshots are taken with relaxed loads (each bucket is
/// individually consistent; the total may lag concurrent writers by a few
/// in-flight samples, which is fine for telemetry).
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS], sum: AtomicU64::new(0) }
    }

    /// Records one observation. Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Copies the current bucket contents into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Owned point-in-time copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, `NUM_BUCKETS` entries (see [`bucket_index`]).
    pub buckets: Vec<u64>,
    /// Sum of all recorded raw values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; NUM_BUCKETS], sum: 0 }
    }

    /// Total observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another snapshot bucket-wise (e.g. to aggregate shards).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.sum += other.sum;
    }

    /// Estimated value at quantile `q` (clamped to `[0, 1]`): the upper
    /// bound of the bucket containing the target rank, i.e. an estimate
    /// with at most one sub-bucket (≤ 25%) of relative overshoot. Returns
    /// 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Mean of the recorded raw values (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Serializes to a compact value tree: non-zero buckets as
    /// `[index, count]` pairs (the array is mostly zeros) and the raw sum
    /// as a hex string so full 64-bit nanosecond totals round-trip exactly.
    pub fn to_value(&self) -> Value {
        let sparse: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| Value::Array(vec![Value::Number(i as f64), Value::Number(c as f64)]))
            .collect();
        Value::object(vec![
            ("sum", Value::from_u64_hex(self.sum)),
            ("buckets", Value::Array(sparse)),
        ])
    }

    /// Inverse of [`HistogramSnapshot::to_value`].
    pub fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let sum = value.req("sum")?.as_u64_hex()?;
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let Value::Array(entries) = value.req("buckets")? else {
            return Err(serde::Error::msg("histogram buckets: expected array"));
        };
        for entry in entries {
            let Value::Array(pair) = entry else {
                return Err(serde::Error::msg("histogram bucket entry: expected [index, count]"));
            };
            if pair.len() != 2 {
                return Err(serde::Error::msg("histogram bucket entry: expected [index, count]"));
            }
            let index: usize = serde::Deserialize::deserialize_value(&pair[0])?;
            let count: u64 = serde::Deserialize::deserialize_value(&pair[1])?;
            if index >= NUM_BUCKETS {
                return Err(serde::Error::msg(format!(
                    "histogram bucket index {index} out of range"
                )));
            }
            buckets[index] = count;
        }
        Ok(HistogramSnapshot { buckets, sum })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone() {
        let mut last = 0usize;
        for v in 0u64..4096 {
            let i = bucket_index(v);
            assert!(i >= last, "bucket index must be monotone at v={v}");
            assert!(i < NUM_BUCKETS);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 3, 4, 7, 8, 9, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} below previous bucket bound");
            }
        }
    }

    #[test]
    fn exact_buckets_below_four() {
        for v in 0u64..4 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        let p50 = snap.quantile(0.5);
        let p99 = snap.quantile(0.99);
        // Log-linear buckets overshoot by at most one sub-bucket (25%).
        assert!((500..=640).contains(&p50), "p50={p50}");
        assert!((990..=1280).contains(&p99), "p99={p99}");
        assert!(snap.quantile(0.0) >= 1);
        assert_eq!(snap.quantile(1.0), snap.quantile(0.9999));
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), 0);
        assert_eq!(HistogramSnapshot::empty().mean(), 0.0);
    }

    #[test]
    fn merge_adds_bucket_wise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 7);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.sum, a.snapshot().sum + b.snapshot().sum);
    }

    #[test]
    fn snapshot_value_round_trip() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 123_456, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        let restored = HistogramSnapshot::from_value(&snap.to_value()).unwrap();
        assert_eq!(snap, restored);
    }
}
