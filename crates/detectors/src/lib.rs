//! Concept drift detectors.
//!
//! This crate implements the reference detectors the paper compares RBM-IM
//! against (Tab. II), plus the broader families discussed in its Related
//! Works section, all behind one [`DriftDetector`] trait:
//!
//! **Standard (error-monitoring) detectors**
//! * [`ddm::Ddm`] — Drift Detection Method (Gama et al., 2004)
//! * [`eddm::Eddm`] — Early Drift Detection Method
//! * [`rddm::Rddm`] — Reactive Drift Detection Method
//! * [`adwin::Adwin`] — Adaptive Windowing (Bifet & Gavaldà, 2007)
//! * [`hddm::HddmA`] / [`hddm::HddmW`] — Hoeffding-bound detectors
//! * [`fhddm::Fhddm`] — Fast Hoeffding Drift Detection Method
//! * [`wstd::Wstd`] — Wilcoxon rank-sum test drift detector
//! * [`page_hinkley::PageHinkley`], [`cusum::Cusum`], [`ecdd::Ecdd`] —
//!   classical sequential change detectors
//!
//! **Skew-insensitive detectors**
//! * [`perfsim::PerfSim`] — monitors the whole confusion matrix
//! * [`ddm_oci::DdmOci`] — monitors per-class recall (online class
//!   imbalance)
//!
//! The trainable RBM-IM detector (the paper's contribution) lives in the
//! `rbm-im` crate and implements the same trait, so the harness can swap
//! detectors freely.
//!
//! # Interface
//!
//! Detectors are fed [`Observation`]s — the true class, the predicted class
//! and whether the prediction was correct (plus the raw feature vector,
//! which only trainable detectors use) — either one per test-then-train step
//! (`update`) or as contiguous slices (`update_batch`, whose default is the
//! per-observation loop, so both entry points report identical drift
//! positions). They answer with a [`DetectorState`] and expose per-class
//! drift attribution when they support it (`drifted_classes_into`).

#![warn(missing_docs)]

pub mod adwin;
pub mod cusum;
pub mod ddm;
pub mod ddm_oci;
pub mod ecdd;
pub mod eddm;
pub mod fhddm;
pub mod hddm;
pub mod page_hinkley;
pub mod perfsim;
pub mod rddm;
pub mod wstd;

pub use adwin::Adwin;
pub use cusum::Cusum;
pub use ddm::Ddm;
pub use ddm_oci::DdmOci;
pub use ecdd::Ecdd;
pub use eddm::Eddm;
pub use fhddm::Fhddm;
pub use hddm::{HddmA, HddmW};
pub use page_hinkley::PageHinkley;
pub use perfsim::PerfSim;
pub use rddm::Rddm;
pub use wstd::Wstd;

/// One monitored prediction step, assembled by the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation<'a> {
    /// Feature vector of the tested instance (used by trainable detectors).
    pub features: &'a [f64],
    /// True class of the instance.
    pub true_class: usize,
    /// Class predicted by the monitored classifier.
    pub predicted_class: usize,
    /// Whether the prediction was correct (`predicted_class == true_class`).
    pub correct: bool,
}

impl<'a> Observation<'a> {
    /// Builds an observation, deriving `correct` from the two labels.
    pub fn new(features: &'a [f64], true_class: usize, predicted_class: usize) -> Self {
        Observation {
            features,
            true_class,
            predicted_class,
            correct: true_class == predicted_class,
        }
    }
}

/// State reported by a detector after each observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DetectorState {
    /// No evidence of change.
    Stable,
    /// The warning zone: change is suspected but not confirmed.
    Warning,
    /// A concept drift has been detected. The harness reacts by resetting
    /// the classifier (and the detector resets its own statistics).
    Drift,
}

impl DetectorState {
    /// Convenience predicate.
    pub fn is_drift(&self) -> bool {
        matches!(self, DetectorState::Drift)
    }

    /// Convenience predicate.
    pub fn is_warning(&self) -> bool {
        matches!(self, DetectorState::Warning)
    }
}

/// A concept drift detector consuming a stream of monitored predictions.
///
/// The trait is *batched*: [`DriftDetector::update`] handles one observation,
/// [`DriftDetector::update_batch`] a contiguous slice of them. The default
/// batch implementation is an update-per-observation loop, so the two entry
/// points always yield identical drift positions; detectors whose natural
/// unit of work is a mini-batch (RBM-IM) override `update_batch` to skip the
/// per-observation bookkeeping. Per-class drift attribution goes through the
/// caller-buffer method [`DriftDetector::drifted_classes_into`] so the hot
/// loop of an evaluation pipeline allocates nothing per signal.
pub trait DriftDetector {
    /// Processes one observation and returns the detector state after it.
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState;

    /// Processes a batch of observations and returns the state after the
    /// last one. `drift_offsets` is cleared and filled with the
    /// batch-relative offset of every observation at which the detector
    /// signalled [`DetectorState::Drift`] — exactly the positions a
    /// per-observation [`DriftDetector::update`] loop would have reported.
    fn update_batch(
        &mut self,
        observations: &[Observation<'_>],
        drift_offsets: &mut Vec<usize>,
    ) -> DetectorState {
        drift_offsets.clear();
        let mut state = self.state();
        for (offset, observation) in observations.iter().enumerate() {
            state = self.update(observation);
            if state.is_drift() {
                drift_offsets.push(offset);
            }
        }
        state
    }

    /// The state after the most recent update.
    fn state(&self) -> DetectorState;

    /// Clears all internal statistics (called by the harness after it has
    /// reacted to a drift, and at stream restarts).
    fn reset(&mut self);

    /// Human-readable detector name (used in result tables).
    fn name(&self) -> &'static str;

    /// Whether the detector can attribute drifts to individual classes
    /// (RBM-IM and DDM-OCI can; global detectors cannot).
    fn per_class_detection(&self) -> bool {
        false
    }

    /// Caller-buffer variant of drift attribution: clears `out` and fills it
    /// with the classes implicated in the most recent drift signal. Global
    /// detectors leave the buffer empty. Evaluation loops keep one buffer
    /// alive across the whole stream instead of allocating per signal.
    fn drifted_classes_into(&self, out: &mut Vec<usize>) {
        out.clear();
    }

    /// Escape hatch for infrastructure that needs the concrete detector
    /// behind a `Box<dyn DriftDetector>` (e.g. the serving layer installs
    /// pooled RBM workspaces into RBM-IM instances at attach time). Stateful
    /// detectors that want to opt in return `Some(self)`; the default opts
    /// out, so ordinary detectors need not care.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Captures the detector's complete mutable state as a serde
    /// [`Value`](serde::Value) — the checkpoint half of the workspace-wide
    /// snapshot/restore contract. Configuration (thresholds, window sizes,
    /// seeds) is deliberately **not** part of the snapshot: a snapshot is
    /// restored onto a freshly built, identically configured detector
    /// (typically rebuilt from the same registry
    /// `DetectorSpec`), after which the detector continues **bitwise
    /// identically** to one that was never checkpointed. Returns `None` for
    /// detectors that do not support checkpointing (the default, so
    /// third-party detectors keep compiling); every detector this workspace
    /// ships overrides it.
    fn snapshot_state(&self) -> Option<serde::Value> {
        None
    }

    /// Restores state captured by [`DriftDetector::snapshot_state`] onto
    /// this (identically configured, typically freshly built) detector.
    /// The default rejects restoration, matching the default
    /// `snapshot_state` of `None`.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let _ = state;
        Err(serde::Error::msg(format!("detector `{}` does not support checkpointing", self.name())))
    }
}

/// Non-overridable conveniences available on every detector. These live
/// outside [`DriftDetector`] deliberately: a detector migrating from the
/// pre-batched API that still tries to override `drifted_classes` gets a
/// compile error pointing it at `drifted_classes_into`, instead of
/// compiling and being silently ignored by evaluation pipelines.
pub trait DriftDetectorExt: DriftDetector {
    /// Allocating wrapper around [`DriftDetector::drifted_classes_into`]
    /// for examples and tests; hot loops should reuse a buffer instead.
    fn drifted_classes(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.drifted_classes_into(&mut out);
        out
    }
}

impl<T: DriftDetector + ?Sized> DriftDetectorExt for T {}

/// Boxed detectors are detectors too (the harness stores them this way).
/// Every method forwards explicitly so overridden batch/attribution
/// implementations are not shadowed by the trait defaults.
impl DriftDetector for Box<dyn DriftDetector + Send> {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        (**self).update(observation)
    }
    fn update_batch(
        &mut self,
        observations: &[Observation<'_>],
        drift_offsets: &mut Vec<usize>,
    ) -> DetectorState {
        (**self).update_batch(observations, drift_offsets)
    }
    fn state(&self) -> DetectorState {
        (**self).state()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn per_class_detection(&self) -> bool {
        (**self).per_class_detection()
    }
    fn drifted_classes_into(&self, out: &mut Vec<usize>) {
        (**self).drifted_classes_into(out)
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
    fn snapshot_state(&self) -> Option<serde::Value> {
        (**self).snapshot_state()
    }
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        (**self).restore_state(state)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for detector unit tests: synthetic error streams with
    //! a known change point.

    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Feeds a detector a Bernoulli error stream whose error rate jumps from
    /// `p_before` to `p_after` at `change_point`; returns the positions at
    /// which the detector signalled drift.
    pub fn run_error_stream(
        detector: &mut dyn DriftDetector,
        p_before: f64,
        p_after: f64,
        change_point: usize,
        length: usize,
        seed: u64,
    ) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut detections = Vec::new();
        let features = [0.0_f64; 1];
        for i in 0..length {
            let p = if i < change_point { p_before } else { p_after };
            let wrong = rng.gen::<f64>() < p;
            let obs = Observation {
                features: &features,
                true_class: 0,
                predicted_class: if wrong { 1 } else { 0 },
                correct: !wrong,
            };
            if detector.update(&obs).is_drift() {
                detections.push(i);
            }
        }
        detections
    }

    /// Asserts the standard detector contract on a synthetic abrupt change:
    /// at least one detection after the change point (within `max_delay`),
    /// and no more than `max_false_alarms` before it.
    pub fn assert_detects_abrupt_change(
        detector: &mut dyn DriftDetector,
        max_delay: usize,
        max_false_alarms: usize,
    ) {
        let change = 3000;
        let detections = run_error_stream(detector, 0.1, 0.5, change, 6000, 77);
        let false_alarms = detections.iter().filter(|&&p| p < change).count();
        let hit = detections.iter().find(|&&p| p >= change && p <= change + max_delay);
        assert!(
            hit.is_some(),
            "{}: no detection within {} instances of the change (detections: {:?})",
            detector.name(),
            max_delay,
            detections
        );
        assert!(
            false_alarms <= max_false_alarms,
            "{}: {} false alarms before the change (allowed {})",
            detector.name(),
            false_alarms,
            max_false_alarms
        );
    }

    /// Asserts that a detector stays silent on a stationary error stream.
    pub fn assert_quiet_on_stationary(detector: &mut dyn DriftDetector, max_alarms: usize) {
        let detections = run_error_stream(detector, 0.2, 0.2, usize::MAX, 8000, 5);
        assert!(
            detections.len() <= max_alarms,
            "{}: {} alarms on a stationary stream (allowed {})",
            detector.name(),
            detections.len(),
            max_alarms
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_derives_correctness() {
        let f = [1.0, 2.0];
        let ok = Observation::new(&f, 3, 3);
        assert!(ok.correct);
        let bad = Observation::new(&f, 3, 1);
        assert!(!bad.correct);
    }

    #[test]
    fn detector_state_predicates() {
        assert!(DetectorState::Drift.is_drift());
        assert!(!DetectorState::Stable.is_drift());
        assert!(DetectorState::Warning.is_warning());
        assert!(!DetectorState::Drift.is_warning());
    }

    #[test]
    fn default_update_batch_matches_per_instance_loop() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // Build a fixed observation stream with an error-rate change.
        let mut rng = StdRng::seed_from_u64(4242);
        let outcomes: Vec<bool> =
            (0..6_000).map(|i| rng.gen::<f64>() < if i < 3_000 { 0.1 } else { 0.5 }).collect();
        let features = [0.0_f64; 1];
        let observations: Vec<Observation<'_>> = outcomes
            .iter()
            .map(|&wrong| Observation {
                features: &features,
                true_class: 0,
                predicted_class: usize::from(wrong),
                correct: !wrong,
            })
            .collect();

        let mut per_instance = Ddm::new();
        let mut sequential_positions = Vec::new();
        for (i, obs) in observations.iter().enumerate() {
            if per_instance.update(obs).is_drift() {
                sequential_positions.push(i);
            }
        }

        let mut batched = Ddm::new();
        let mut batched_positions = Vec::new();
        let mut offsets = Vec::new();
        for (chunk_index, chunk) in observations.chunks(97).enumerate() {
            batched.update_batch(chunk, &mut offsets);
            batched_positions.extend(offsets.iter().map(|o| chunk_index * 97 + o));
        }
        assert_eq!(sequential_positions, batched_positions);
        assert!(!sequential_positions.is_empty(), "change must be detected at all");
    }

    /// Every in-crate detector: snapshot at a cut point, serialize to JSON,
    /// restore onto a freshly built twin, continue — states and drift
    /// positions must match the uninterrupted run bitwise, whatever the cut.
    #[test]
    fn checkpoint_roundtrip_resumes_bitwise_for_every_detector() {
        use crate::ddm_oci::DdmOciConfig;
        use crate::perfsim::PerfSimConfig;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        type Factory = Box<dyn Fn() -> Box<dyn DriftDetector + Send>>;
        let factories: Vec<(&str, Factory)> = vec![
            ("ddm", Box::new(|| Box::new(Ddm::new()))),
            ("eddm", Box::new(|| Box::new(Eddm::new()))),
            ("rddm", Box::new(|| Box::new(Rddm::new()))),
            ("adwin", Box::new(|| Box::new(Adwin::new(0.002)))),
            ("hddm-a", Box::new(|| Box::new(HddmA::new()))),
            ("hddm-w", Box::new(|| Box::new(HddmW::new(0.05)))),
            ("fhddm", Box::new(|| Box::new(Fhddm::new()))),
            ("wstd", Box::new(|| Box::new(Wstd::new()))),
            ("pagehinkley", Box::new(|| Box::new(PageHinkley::new()))),
            ("cusum", Box::new(|| Box::new(Cusum::new()))),
            ("ecdd", Box::new(|| Box::new(Ecdd::new()))),
            ("perfsim", Box::new(|| Box::new(PerfSim::new(PerfSimConfig::for_classes(3))))),
            ("ddm-oci", Box::new(|| Box::new(DdmOci::new(DdmOciConfig::for_classes(3))))),
        ];

        // A 3-class stream whose error rate jumps at 3000 so most detectors
        // actually traverse warning/drift states during the run.
        let mut rng = StdRng::seed_from_u64(20_260_726);
        let labels: Vec<(usize, usize)> = (0..6_000)
            .map(|i| {
                let true_class = rng.gen_range(0..3usize);
                let p = if i < 3_000 { 0.1 } else { 0.5 };
                let predicted = if rng.gen::<f64>() < p {
                    (true_class + 1 + rng.gen_range(0..2usize)) % 3
                } else {
                    true_class
                };
                (true_class, predicted)
            })
            .collect();
        let features = [0.0_f64; 1];
        let observations: Vec<Observation<'_>> = labels
            .iter()
            .map(|&(true_class, predicted_class)| Observation {
                features: &features,
                true_class,
                predicted_class,
                correct: true_class == predicted_class,
            })
            .collect();

        for (name, make) in &factories {
            for cut in [0usize, 1, 997, 3_100] {
                let mut uninterrupted = make();
                let mut head = make();
                for obs in &observations[..cut] {
                    uninterrupted.update(obs);
                    head.update(obs);
                }
                let snapshot = head.snapshot_state().unwrap_or_else(|| {
                    panic!("{name}: every shipped detector must support checkpointing")
                });
                let json = serde_json::to_string(&snapshot).unwrap();
                let parsed = serde_json::parse_value(&json).unwrap();
                let mut resumed = make();
                resumed.restore_state(&parsed).unwrap_or_else(|e| panic!("{name}: restore: {e}"));
                assert_eq!(resumed.state(), uninterrupted.state(), "{name} @ cut {cut}");

                let mut expected_positions = Vec::new();
                let mut resumed_positions = Vec::new();
                for (offset, obs) in observations[cut..].iter().enumerate() {
                    let a = uninterrupted.update(obs);
                    let b = resumed.update(obs);
                    assert_eq!(a, b, "{name} @ cut {cut}, offset {offset}");
                    if a.is_drift() {
                        expected_positions.push(offset);
                        let mut lhs = Vec::new();
                        let mut rhs = Vec::new();
                        uninterrupted.drifted_classes_into(&mut lhs);
                        resumed.drifted_classes_into(&mut rhs);
                        assert_eq!(lhs, rhs, "{name} @ cut {cut}: drift attribution");
                    }
                    if b.is_drift() {
                        resumed_positions.push(offset);
                    }
                }
                assert_eq!(expected_positions, resumed_positions, "{name} @ cut {cut}");
            }
        }
    }

    #[test]
    fn drifted_classes_wrapper_mirrors_into_variant() {
        struct FixedAttribution;
        impl DriftDetector for FixedAttribution {
            fn update(&mut self, _observation: &Observation<'_>) -> DetectorState {
                DetectorState::Drift
            }
            fn state(&self) -> DetectorState {
                DetectorState::Drift
            }
            fn reset(&mut self) {}
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn per_class_detection(&self) -> bool {
                true
            }
            fn drifted_classes_into(&self, out: &mut Vec<usize>) {
                out.clear();
                out.extend([2, 5]);
            }
        }
        let detector = FixedAttribution;
        let mut buffer = vec![9, 9, 9];
        detector.drifted_classes_into(&mut buffer);
        assert_eq!(buffer, vec![2, 5]);
        assert_eq!(detector.drifted_classes(), vec![2, 5]);
    }
}
