//! The TCP front-end: a `std::net` listener terminating wire frames and
//! driving the in-process serving plane.
//!
//! # Connection lifecycle
//!
//! Each accepted connection gets a dedicated handler thread running a
//! strict request→reply loop: read one frame, perform the operation, write
//! exactly one reply. Two frames change the loop's shape:
//!
//! * [`Frame::Subscribe`] turns the connection into a server-push event
//!   stream — after the `Ack`, the handler pumps [`Frame::Event`] frames
//!   until shutdown closes the bus (or the client disconnects);
//! * [`Frame::Shutdown`] shuts the serving plane down, replies with the
//!   final [`Frame::Report`], and closes the connection.
//!
//! # Error containment
//!
//! Malformed input never panics a handler and never poisons the serving
//! plane. Frame-scoped failures (unsupported version, unknown frame type,
//! undecodable body) get an [`Frame::Error`] reply and the connection
//! lives on; framing-level failures (garbage length prefix, EOF inside a
//! frame) get a best-effort error reply and the connection closes, since
//! the byte stream cannot be resynchronized. Every discarded frame counts
//! into [`ServeReport::frames_dropped`] on the final report.

use crate::wire::{self, ErrorCode, Frame, WireError};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_obs::{Counter, Histogram, MetricsRegistry};
use rbm_im_serve::{
    FaultPlane, FrameDropBreakdown, ServeConfig, ServeReport, ServerHandle, StreamClient,
};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-category drop counters, bound into the serving plane's metrics
/// registry as `rbm_net_frames_dropped_total{kind}` so the breakdown shows
/// up in exposition as well as on the final [`ServeReport`].
struct DropCounters {
    malformed: Arc<Counter>,
    unsupported_version: Arc<Counter>,
    unknown_frame_type: Arc<Counter>,
    oversized: Arc<Counter>,
    io: Arc<Counter>,
    unexpected_reply: Arc<Counter>,
}

impl DropCounters {
    fn bind(metrics: &MetricsRegistry) -> Self {
        let kind = |k: &str| metrics.counter("rbm_net_frames_dropped_total", &[("kind", k)]);
        Self {
            malformed: kind("malformed"),
            unsupported_version: kind("unsupported_version"),
            unknown_frame_type: kind("unknown_frame_type"),
            oversized: kind("oversized"),
            io: kind("io"),
            unexpected_reply: kind("unexpected_reply"),
        }
    }

    fn breakdown(&self) -> FrameDropBreakdown {
        FrameDropBreakdown {
            malformed: self.malformed.get(),
            unsupported_version: self.unsupported_version.get(),
            unknown_frame_type: self.unknown_frame_type.get(),
            oversized: self.oversized.get(),
            io: self.io.get(),
            unexpected_reply: self.unexpected_reply.get(),
        }
    }
}

/// Pre-registered request instrumentation: one latency histogram per
/// request frame type (`rbm_net_request_latency_seconds{frame}`) plus the
/// backpressure counter (`rbm_net_busy_total`). Histograms record integer
/// nanoseconds; exposition divides to seconds.
struct NetObs {
    attach: Arc<Histogram>,
    detach: Arc<Histogram>,
    ingest: Arc<Histogram>,
    drain: Arc<Histogram>,
    checkpoint: Arc<Histogram>,
    shutdown: Arc<Histogram>,
    subscribe: Arc<Histogram>,
    metrics: Arc<Histogram>,
    health: Arc<Histogram>,
    busy: Arc<Counter>,
}

impl NetObs {
    fn bind(metrics: &MetricsRegistry) -> Self {
        let frame = |f: &str| metrics.histogram("rbm_net_request_latency_seconds", &[("frame", f)]);
        Self {
            attach: frame("attach"),
            detach: frame("detach"),
            ingest: frame("ingest"),
            drain: frame("drain"),
            checkpoint: frame("checkpoint"),
            shutdown: frame("shutdown"),
            subscribe: frame("subscribe"),
            metrics: frame("metrics"),
            health: frame("health"),
            busy: metrics.counter("rbm_net_busy_total", &[]),
        }
    }

    /// The latency histogram for a request frame; `None` for reply-type
    /// frames (a client protocol violation, counted as a drop instead).
    fn latency(&self, frame: &Frame) -> Option<&Arc<Histogram>> {
        match frame {
            Frame::Attach { .. } => Some(&self.attach),
            Frame::Detach { .. } => Some(&self.detach),
            Frame::Ingest { .. } => Some(&self.ingest),
            Frame::Drain => Some(&self.drain),
            Frame::Checkpoint { .. } => Some(&self.checkpoint),
            Frame::Shutdown => Some(&self.shutdown),
            Frame::Subscribe => Some(&self.subscribe),
            Frame::Metrics => Some(&self.metrics),
            Frame::Health => Some(&self.health),
            _ => None,
        }
    }
}

/// Shared state between the accept loop, connection handlers and the local
/// [`NetServerHandle`].
struct Shared {
    /// The serving plane. `shutdown` consumes a `ServerHandle`, so the
    /// first shutdown — wire or local — takes it; later operations see
    /// `None` and answer [`ErrorCode::Unavailable`].
    server: Mutex<Option<ServerHandle>>,
    /// The final report, stashed by whichever side performed the shutdown
    /// so the other can still read it.
    report: Mutex<Option<ServeReport>>,
    /// Wire frames discarded before reaching a shard, broken down by
    /// failure category (malformed framing, bad magic, unsupported
    /// version, unknown type, oversized, io, reply-at-server).
    drops: DropCounters,
    /// Per-frame-type request latency and backpressure counters.
    obs: NetObs,
    /// Set once shutdown begins; the accept loop exits on the next
    /// (possibly self-inflicted) connection.
    stopping: AtomicBool,
    /// Optional chaos fault plane: consulted on the reply path for
    /// injected delays and mid-frame truncations (shared with the serving
    /// plane, which draws its own sites from it).
    faults: Option<Arc<FaultPlane>>,
}

impl Shared {
    /// Performs the serving-plane shutdown exactly once. Returns `None`
    /// when another caller already did.
    fn shutdown_serve(&self) -> Option<ServeReport> {
        let handle = self.server.lock().expect("server lock poisoned").take()?;
        self.stopping.store(true, Ordering::SeqCst);
        let mut report = handle.shutdown();
        let breakdown = self.drops.breakdown();
        report.frames_dropped += breakdown.total();
        report.frames_dropped_by = breakdown;
        *self.report.lock().expect("report lock poisoned") = Some(report.clone());
        Some(report)
    }
}

/// Entry points for binding the TCP front-end.
pub struct NetServer;

impl NetServer {
    /// Starts a serving plane with the default detector registry and binds
    /// the wire front-end to `addr` (use `127.0.0.1:0` to let the OS pick
    /// a loopback port; the bound address is on the returned handle).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<NetServerHandle> {
        Self::bind_with_registry(addr, config, Arc::new(DetectorRegistry::with_defaults()))
    }

    /// [`NetServer::bind`] with a custom detector registry (attach specs
    /// arriving over the wire resolve against it). Adopts the
    /// `RBM_CHAOS` environment fault plane when armed.
    pub fn bind_with_registry(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        registry: Arc<DetectorRegistry>,
    ) -> std::io::Result<NetServerHandle> {
        Self::bind_with_faults(addr, config, registry, rbm_im_serve::chaos::env_plane().cloned())
    }

    /// [`NetServer::bind_with_registry`] with an explicit chaos
    /// [`FaultPlane`] (or `None` for a clean run). The plane is shared
    /// between the serving plane (kill-shard, hibernate, spill sites) and
    /// this front-end's reply path (delay, truncate-mid-frame sites), so
    /// one seed drives the whole stack's fault schedule.
    pub fn bind_with_faults(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        registry: Arc<DetectorRegistry>,
        faults: Option<Arc<FaultPlane>>,
    ) -> std::io::Result<NetServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let server = ServerHandle::start_with_faults(config, registry, faults.clone());
        let metrics = server.metrics();
        let shared = Arc::new(Shared {
            server: Mutex::new(Some(server)),
            report: Mutex::new(None),
            drops: DropCounters::bind(&metrics),
            obs: NetObs::bind(&metrics),
            stopping: AtomicBool::new(false),
            faults,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(NetServerHandle { shared, metrics, addr, accept: Some(accept) })
    }
}

/// Handle on a running TCP front-end: the bound address, the drop
/// counters, and the local shutdown path.
pub struct NetServerHandle {
    shared: Arc<Shared>,
    metrics: Arc<MetricsRegistry>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServerHandle {
    /// The address the front-end accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving plane's metrics registry (wire counters included) —
    /// hand it to an [`rbm_im_obs::ObsServer`] for scraping. Outlives the
    /// serving plane, so it is readable even after shutdown.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Wire frames discarded so far (monotone; folded into
    /// [`ServeReport::frames_dropped`] at shutdown).
    pub fn frames_dropped(&self) -> u64 {
        self.shared.drops.breakdown().total()
    }

    /// Wire frames discarded so far, broken down by failure category
    /// (folded into [`ServeReport::frames_dropped_by`] at shutdown).
    pub fn frames_dropped_by(&self) -> FrameDropBreakdown {
        self.shared.drops.breakdown()
    }

    /// Shuts the serving plane and the accept loop down and returns the
    /// final report. If a wire client already performed the shutdown, the
    /// report it received is returned.
    pub fn shutdown(mut self) -> ServeReport {
        let report = match self.shared.shutdown_serve() {
            Some(report) => report,
            None => {
                self.shared.report.lock().expect("report lock poisoned").clone().unwrap_or_default()
            }
        };
        // Unblock the accept loop (it exits on the next connection once
        // `stopping` is set); a refused connect means it already exited.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        report
    }
}

impl std::fmt::Debug for NetServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServerHandle")
            .field("addr", &self.addr)
            .field("frames_dropped", &self.frames_dropped())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_connection(stream, shared));
            }
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

/// What a handled frame tells the connection loop to do next.
enum Flow {
    /// Keep reading frames.
    Continue,
    /// Close the connection (shutdown handled, subscription pump ended).
    Close,
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // The server side's local address IS the listener address — kept to
    // wake the accept loop when a shutdown arrives over this connection.
    let listener_addr = stream.local_addr().ok();
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Per-connection ingest clients, interned once per stream id so the
    // hot path never touches the control plane.
    let mut clients: HashMap<String, StreamClient> = HashMap::new();
    let mut lane = ReplyLane::new(shared.faults.clone());
    loop {
        let flow = match wire::read_frame(&mut reader) {
            Ok(frame) => {
                // Per-frame-type request latency, gated so the hot path
                // pays nothing when observability is off. `Subscribe`
                // deliberately measures the whole pump: its "latency" is
                // the lifetime of the subscription.
                let timer = if rbm_im_obs::enabled() {
                    shared.obs.latency(&frame).map(|h| (Arc::clone(h), Instant::now()))
                } else {
                    None
                };
                let outcome = handle_frame(
                    frame,
                    &shared,
                    &mut clients,
                    &mut lane,
                    &mut writer,
                    listener_addr,
                );
                if let Some((histogram, start)) = timer {
                    histogram.record(start.elapsed().as_nanos() as u64);
                }
                match outcome {
                    Ok(flow) => flow,
                    Err(_) => Flow::Close, // peer gone mid-reply
                }
            }
            Err(WireError::Closed) => Flow::Close,
            // The connection died (or was cut) mid-frame: the partial frame
            // is dropped and counted; best-effort error reply — a fuzzing
            // peer may have only half-closed its write side — then close.
            Err(e @ WireError::Io(_)) => {
                shared.drops.io.inc();
                let _ = reply(
                    &mut lane,
                    &mut writer,
                    &Frame::Error { code: ErrorCode::Malformed, message: e.to_string() },
                );
                Flow::Close
            }
            // Frame-scoped failures: the frame was consumed whole, so the
            // stream is still in sync — reply and carry on.
            Err(e @ WireError::UnsupportedVersion { .. }) => {
                shared.drops.unsupported_version.inc();
                match reply(
                    &mut lane,
                    &mut writer,
                    &Frame::Error { code: ErrorCode::UnsupportedVersion, message: e.to_string() },
                ) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                }
            }
            Err(e @ WireError::UnknownFrameType(_)) => {
                shared.drops.unknown_frame_type.inc();
                match reply(
                    &mut lane,
                    &mut writer,
                    &Frame::Error { code: ErrorCode::UnknownFrameType, message: e.to_string() },
                ) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                }
            }
            Err(e @ WireError::Malformed(_)) => {
                shared.drops.malformed.inc();
                match reply(
                    &mut lane,
                    &mut writer,
                    &Frame::Error { code: ErrorCode::Malformed, message: e.to_string() },
                ) {
                    Ok(()) => Flow::Continue,
                    Err(_) => Flow::Close,
                }
            }
            // Framing-level failure: the byte stream cannot be
            // resynchronized. Best-effort error reply, then close.
            Err(e @ WireError::TooLarge(_)) => {
                shared.drops.oversized.inc();
                let _ = reply(
                    &mut lane,
                    &mut writer,
                    &Frame::Error { code: ErrorCode::Malformed, message: e.to_string() },
                );
                Flow::Close
            }
        };
        if matches!(flow, Flow::Close) {
            break;
        }
    }
}

/// Per-connection reply state: counts replies — the fault plane's
/// deterministic coordinate for the net sites — so the same seed faults
/// the same replies on every run.
struct ReplyLane {
    faults: Option<Arc<FaultPlane>>,
    replies: u64,
}

impl ReplyLane {
    fn new(faults: Option<Arc<FaultPlane>>) -> Self {
        Self { faults, replies: 0 }
    }
}

fn reply<W: Write>(lane: &mut ReplyLane, writer: &mut W, frame: &Frame) -> std::io::Result<()> {
    lane.replies += 1;
    if let Some(plane) = &lane.faults {
        if let Some(delay) = plane.net_delay(lane.replies) {
            std::thread::sleep(delay);
        }
        if plane.net_truncate(lane.replies) {
            // Models a server killed between reply write and flush: the
            // peer sees a partial frame then EOF, never a silent drop (a
            // blocking client would hang forever in the strict
            // request→reply protocol). The error return closes this
            // connection; the client must reconnect.
            let encoded = wire::encode_frame(frame);
            let keep = (encoded.len() / 2).max(1);
            writer.write_all(&encoded[..keep])?;
            writer.flush()?;
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "chaos: injected reply truncation",
            ));
        }
    }
    wire::write_frame(writer, frame)?;
    writer.flush()
}

fn serve_error<W: Write>(
    lane: &mut ReplyLane,
    writer: &mut W,
    message: String,
) -> std::io::Result<()> {
    reply(lane, writer, &Frame::Error { code: ErrorCode::Serve, message })
}

fn unavailable<W: Write>(lane: &mut ReplyLane, writer: &mut W) -> std::io::Result<()> {
    reply(
        lane,
        writer,
        &Frame::Error {
            code: ErrorCode::Unavailable,
            message: "the serving plane has shut down".to_string(),
        },
    )
}

fn handle_frame<W: Write>(
    frame: Frame,
    shared: &Shared,
    clients: &mut HashMap<String, StreamClient>,
    lane: &mut ReplyLane,
    writer: &mut W,
    listener_addr: Option<SocketAddr>,
) -> std::io::Result<Flow> {
    match frame {
        Frame::Attach { stream, schema, spec, run } => {
            let spec = match DetectorSpec::parse(&spec) {
                Ok(spec) => spec,
                Err(e) => {
                    serve_error(lane, writer, format!("invalid detector spec: {e}"))?;
                    return Ok(Flow::Continue);
                }
            };
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(lane, writer)?;
                return Ok(Flow::Continue);
            };
            let attached = match run {
                Some(run) => server.attach_with(&stream, schema, &spec, run),
                None => server.attach(&stream, schema, &spec),
            };
            drop(guard);
            match attached {
                Ok(client) => {
                    clients.insert(stream, client);
                    reply(lane, writer, &Frame::Ack)?;
                }
                Err(e) => serve_error(lane, writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Frame::Detach { stream } => {
            clients.remove(&stream);
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(lane, writer)?;
                return Ok(Flow::Continue);
            };
            let detached = server.detach(&stream);
            drop(guard);
            match detached {
                Ok(result) => reply(lane, writer, &Frame::Result(Box::new(result)))?,
                Err(e) => serve_error(lane, writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Frame::Ingest { stream, blocking, instances } => {
            let client = match clients.entry(stream) {
                std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
                std::collections::hash_map::Entry::Vacant(entry) => {
                    let guard = shared.server.lock().expect("server lock poisoned");
                    let Some(server) = guard.as_ref() else {
                        drop(guard);
                        unavailable(lane, writer)?;
                        return Ok(Flow::Continue);
                    };
                    let client = server.client(entry.key());
                    drop(guard);
                    entry.insert(client)
                }
            };
            if blocking {
                match client.ingest_batch(instances) {
                    Ok(()) => reply(lane, writer, &Frame::Ack)?,
                    Err(_) => unavailable(lane, writer)?,
                }
            } else {
                match client.try_ingest_batch(instances) {
                    Ok(()) => reply(lane, writer, &Frame::Ack)?,
                    Err(rbm_im_serve::IngestError::Full(rejected)) => {
                        shared.obs.busy.inc();
                        reply(lane, writer, &Frame::Busy { rejected: rejected.len() as u64 })?
                    }
                    Err(rbm_im_serve::IngestError::Closed(_)) => unavailable(lane, writer)?,
                }
            }
            Ok(Flow::Continue)
        }
        Frame::Drain => {
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(lane, writer)?;
                return Ok(Flow::Continue);
            };
            server.drain();
            drop(guard);
            reply(lane, writer, &Frame::Ack)?;
            Ok(Flow::Continue)
        }
        Frame::Checkpoint { stream } => {
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(lane, writer)?;
                return Ok(Flow::Continue);
            };
            let checkpoint = server.checkpoint_stream(&stream);
            drop(guard);
            match checkpoint {
                Ok(checkpoint) => {
                    reply(lane, writer, &Frame::CheckpointData(Box::new(checkpoint)))?
                }
                Err(e) => serve_error(lane, writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Frame::Shutdown => {
            match shared.shutdown_serve() {
                Some(report) => {
                    reply(lane, writer, &Frame::Report(Box::new(report)))?;
                    // Unblock the accept loop so the listener closes now,
                    // not at the next (never-arriving) connection.
                    if let Some(addr) = listener_addr {
                        let _ = TcpStream::connect(addr);
                    }
                }
                None => unavailable(lane, writer)?,
            }
            Ok(Flow::Close)
        }
        Frame::Metrics => {
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(lane, writer)?;
                return Ok(Flow::Continue);
            };
            let snapshot = server.metrics().snapshot();
            drop(guard);
            reply(lane, writer, &Frame::MetricsData(Box::new(snapshot)))?;
            Ok(Flow::Continue)
        }
        Frame::Health => {
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(lane, writer)?;
                return Ok(Flow::Continue);
            };
            let health = server.health();
            drop(guard);
            reply(lane, writer, &Frame::HealthData(Box::new(health)))?;
            Ok(Flow::Continue)
        }
        Frame::Subscribe => {
            let guard = shared.server.lock().expect("server lock poisoned");
            let Some(server) = guard.as_ref() else {
                drop(guard);
                unavailable(lane, writer)?;
                return Ok(Flow::Continue);
            };
            let events = server.subscribe();
            drop(guard);
            reply(lane, writer, &Frame::Ack)?;
            // Server-push mode: pump bus events until shutdown closes the
            // bus or the client disconnects.
            for event in events {
                reply(lane, writer, &Frame::Event(Box::new(event)))?;
            }
            Ok(Flow::Close)
        }
        // Reply-type frames arriving at the server are a protocol
        // violation by the client; answer with an error and carry on.
        Frame::Ack
        | Frame::Busy { .. }
        | Frame::Error { .. }
        | Frame::Result(_)
        | Frame::CheckpointData(_)
        | Frame::Report(_)
        | Frame::Event(_)
        | Frame::MetricsData(_)
        | Frame::HealthData(_) => {
            shared.drops.unexpected_reply.inc();
            reply(
                lane,
                writer,
                &Frame::Error {
                    code: ErrorCode::Malformed,
                    message: "reply frame sent to the server".to_string(),
                },
            )?;
            Ok(Flow::Continue)
        }
    }
}
