//! Offline stand-in for `serde`.
//!
//! The real serde cannot be fetched in this container, so this crate
//! provides the subset the workspace relies on: `Serialize` / `Deserialize`
//! traits (over an owned JSON-like [`Value`] data model instead of serde's
//! zero-copy visitor machinery), a same-named derive macro re-exported from
//! `serde_derive`, and impls for the primitive/std types the experiment
//! artifacts contain. `serde_json` (also vendored) renders and parses
//! [`Value`] trees.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Owned JSON-like value tree: the data model every `Serialize` /
/// `Deserialize` implementation converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; all workspace integers fit in 53 bits).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but a missing key (or a non-object receiver) is
    /// an [`Error`] naming the key — the common case for state restoration,
    /// where absent fields mean a corrupt or incompatible snapshot.
    pub fn req(&self, key: &str) -> Result<&Value, Error> {
        self.get(key).ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }

    /// Required typed field read: `value.field::<u64>("count")?`. The
    /// workhorse of hand-written `Deserialize`-style state restoration.
    pub fn field<T: Deserialize>(&self, key: &str) -> Result<T, Error> {
        T::deserialize_value(self.req(key)?)
            .map_err(|e| Error::msg(format!("field `{key}`: {}", e.0)))
    }

    /// Builds an object value from `(key, value)` pairs — the writing-side
    /// counterpart of [`Value::field`].
    pub fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Encodes a `u64` losslessly as a hex string. [`Value::Number`] is an
    /// `f64` (53-bit mantissa), so full 64-bit words — RNG state, hashes —
    /// must travel as strings to round-trip bit for bit.
    pub fn from_u64_hex(v: u64) -> Value {
        Value::String(format!("{v:#018x}"))
    }

    /// Decodes a [`Value::from_u64_hex`] string back into a `u64`.
    pub fn as_u64_hex(&self) -> Result<u64, Error> {
        match self {
            Value::String(s) => {
                let digits = s.strip_prefix("0x").unwrap_or(s);
                u64::from_str_radix(digits, 16)
                    .map_err(|e| Error::msg(format!("invalid hex u64 `{s}`: {e}")))
            }
            other => Err(Error::msg(format!("expected hex u64 string, found {other:?}"))),
        }
    }
}

/// Error raised when a [`Value`] does not match the requested shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Convenience constructor.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        // JSON has no non-finite numbers; detector state legitimately holds
        // ±∞ sentinels (e.g. untouched running min/max), so they travel as
        // strings and round-trip exactly instead of degrading to null.
        if self.is_finite() {
            Value::Number(*self)
        } else if self.is_nan() {
            Value::String("NaN".to_string())
        } else if *self > 0.0 {
            Value::String("inf".to_string())
        } else {
            Value::String("-inf".to_string())
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(*n),
            Value::String(s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                other => Err(Error::msg(format!("expected f64, found string `{other}`"))),
            },
            other => Err(Error::msg(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize_value(&items[0])?, B::deserialize_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-element array, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?))).collect()
            }
            other => Err(Error::msg(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize_value(&42u64.serialize_value()), Ok(42));
        assert_eq!(f64::deserialize_value(&1.5f64.serialize_value()), Ok(1.5));
        assert_eq!(bool::deserialize_value(&true.serialize_value()), Ok(true));
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::deserialize_value(&v.serialize_value()), Ok(v));
        assert_eq!(Option::<u32>::deserialize_value(&Value::Null), Ok(None));
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(obj.get("a"), Some(&Value::Number(1.0)));
        assert_eq!(obj.get("b"), None);
    }
}
