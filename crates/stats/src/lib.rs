//! Statistical substrate for the RBM-IM reproduction.
//!
//! This crate implements, from scratch, every piece of numerical and
//! statistical machinery required by the paper:
//!
//! * special functions (log-gamma, regularized incomplete gamma/beta, erf),
//! * classical distributions (normal, Student's t, chi-squared, Fisher F)
//!   with CDF / survival / quantile functions,
//! * descriptive statistics and rank transforms (with tie handling),
//! * ordinary least squares (simple and multivariate) on small systems,
//! * the Granger causality test on first differences (used by RBM-IM to
//!   decide whether the reconstruction-error trend of a class has changed),
//! * the Hoeffding bound (used by HDDM / FHDDM detectors),
//! * Wilcoxon rank-sum and signed-rank tests (used by the WSTD detector),
//! * the Friedman ranking test with the Bonferroni–Dunn post-hoc procedure
//!   and the Bayesian signed test (used in the paper's statistical analysis,
//!   Figs. 4–7),
//! * the Nelder–Mead simplex optimizer (used for online self
//!   hyper-parameter tuning, Sec. VI-B of the paper),
//! * online (incremental) statistics: Welford mean/variance, EWMA,
//!   sliding-window moments.
//!
//! All routines are pure Rust with no external numerical dependencies so the
//! whole reproduction is self-contained and auditable.

#![warn(missing_docs)]

pub mod bayesian;
pub mod descriptive;
pub mod distributions;
pub mod friedman;
pub mod granger;
pub mod hoeffding;
pub mod matrix;
pub mod nelder_mead;
pub mod online;
pub mod regression;
pub mod special;
pub mod wilcoxon;

pub use bayesian::{bayesian_signed_test, BayesianSignedOutcome};
pub use descriptive::{mean, median, rank_with_ties, std_dev, variance};
pub use distributions::{ChiSquared, FisherF, Normal, StudentsT};
pub use friedman::{bonferroni_dunn_critical_difference, friedman_test, FriedmanResult};
pub use granger::{granger_causality, GrangerResult};
pub use hoeffding::{hoeffding_bound, mcdiarmid_bound};
pub use matrix::Matrix;
pub use nelder_mead::{NelderMead, NelderMeadConfig};
pub use online::{Ewma, SlidingWindowStats, WelfordStats};
pub use regression::{ols_multi, simple_linear_regression, OlsFit, SimpleRegression};
pub use special::{
    erf, erfc, ln_gamma, regularized_beta, regularized_gamma_p, regularized_gamma_q,
};
pub use wilcoxon::{wilcoxon_rank_sum, wilcoxon_signed_rank, WilcoxonResult};

/// Error type shared by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Not enough observations to perform the requested computation.
    InsufficientData {
        /// How many observations are required at minimum.
        needed: usize,
        /// How many observations were provided.
        got: usize,
    },
    /// A parameter was outside of its valid domain.
    InvalidParameter(String),
    /// A numerical routine failed to converge.
    NonConvergence(String),
    /// The design matrix of a regression was singular (collinear columns).
    SingularMatrix,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
            StatsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            StatsError::NonConvergence(msg) => write!(f, "non-convergence: {msg}"),
            StatsError::SingularMatrix => write!(f, "singular design matrix"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = StatsError::InsufficientData { needed: 3, got: 1 };
        assert!(e.to_string().contains("needed 3"));
        let e = StatsError::InvalidParameter("alpha".into());
        assert!(e.to_string().contains("alpha"));
        let e = StatsError::NonConvergence("quantile".into());
        assert!(e.to_string().contains("quantile"));
        assert!(StatsError::SingularMatrix.to_string().contains("singular"));
    }
}
