//! `rbm-im-serve` — sharded multi-stream serving of RBM-IM drift-detection
//! pipelines.
//!
//! The paper evaluates one stream at a time; production traffic is many
//! concurrent streams. This crate serves them on a share-nothing sharded
//! architecture built from the workspace's existing pieces:
//!
//! * a [`StreamRouter`] hashes stream ids onto N
//!   shards — stateless, so attach and ingest agree on placement with no
//!   coordination;
//! * each shard is a **dedicated worker thread** exclusively owning its
//!   streams' pipeline state: classifier, detector (any registry
//!   [`DetectorSpec`](rbm_im_harness::registry::DetectorSpec)), prequential
//!   evaluator, plus a per-shard
//!   [`WorkspacePool`](rbm_im::pool::WorkspacePool) of RBM scratch
//!   workspaces reused across the shard's streams;
//! * ingest flows through **bounded MPSC channels**:
//!   [`StreamClient::try_ingest`] fails
//!   fast with [`IngestError::Full`] when a
//!   shard falls behind (explicit backpressure), blocking `ingest` waits,
//!   and client-side micro-batches amortize channel traffic; the pipeline's
//!   `detector_batch` micro-batching keeps the RBM hot path on the batched
//!   CD-k kernels;
//! * drifts (with per-class attribution), warnings and periodic per-stream
//!   metric snapshots are published on a subscriber
//!   [`EventBus`];
//! * shards step streams through the *same*
//!   [`PipelineStepper`](rbm_im_harness::stepper::PipelineStepper) code a
//!   sequential
//!   [`PipelineBuilder`](rbm_im_harness::pipeline::PipelineBuilder) run
//!   executes, and per-stream deterministic seeding decorrelates streams
//!   reproducibly — so results (drift offsets, metrics) are **bitwise
//!   independent of shard count and ingest interleaving**, pinned by the
//!   `tests/serving.rs` suite against sequential runs;
//! * the fleet is **elastic**: ids route over a consistent-hash ring, so
//!   [`ServerHandle::resize_shards`]
//!   grows or shrinks the shard count live, migrating only the streams
//!   whose ring ownership changed (checkpoint on the old shard → transfer
//!   → restore on the new one, ingest parked and replayed — nothing lost,
//!   nothing reordered; `tests/resharding.rs`), and
//!   [`SnapshotSink`] spills per-stream
//!   [`StreamCheckpoint`]s to disk — in the compact binary checkpoint
//!   codec by default ([`rbm_im_harness::checkpoint::codec`]) — for
//!   bitwise warm restarts;
//! * the fleet is **autonomic**: a background
//!   [`Supervisor`] closes the loop on those
//!   mechanisms — per-stream jittered background checkpointing (urgent
//!   after drifts), and load-based auto-resize driven by a pluggable
//!   [`ResizePolicy`] over the shards'
//!   lock-free queue gauges ([`ServerHandle::shard_loads`]) within
//!   configured bounds, with every decision published on the bus
//!   (`tests/supervisor.rs`);
//! * stream state is **tiered**: under a supervisor [`TierPolicy`] (or an
//!   explicit [`ServerHandle::hibernate_stream`]), idle streams'
//!   in-memory pipeline state is evicted to their binary checkpoint —
//!   reusing the freshest background spill when clean — and workspace
//!   scratch returns to the shard pool, so fleets far larger than RAM
//!   would allow stay attached in a bounded hot-tier budget; the next
//!   ingest, checkpoint or detach rehydrates transparently and
//!   bitwise-identically (`tests/hibernate.rs`, `ARCHITECTURE.md` §9);
//! * the durability stack is **proven under attack**: a deterministic,
//!   seed-driven fault-injection plane ([`chaos`]) threads kill-shard
//!   panics, spill I/O faults (via the sink's injectable [`SpillIo`]
//!   seam), hibernate storms and net-reply faults through the serving
//!   stack from a replayable [`ChaosPlan`]; the chaos suites
//!   (`tests/chaos.rs`, `examples/chaos_soak.rs`) prove zero-loss,
//!   bitwise recovery — every surviving stream identical to a clean
//!   replay from its last durable point — with exact instance accounting
//!   (`ARCHITECTURE.md` §10).
//!
//! # Lifecycle
//!
//! ```
//! use rbm_im_harness::registry::DetectorSpec;
//! use rbm_im_serve::{ServeConfig, ServerHandle};
//! use rbm_im_streams::generators::GaussianMixtureGenerator;
//! use rbm_im_streams::{DataStream, StreamExt};
//!
//! let server = ServerHandle::start(ServeConfig { num_shards: 2, ..Default::default() });
//! let events = server.subscribe();
//!
//! // Attach a stream with any registry detector spec (tuned RBM hyper-
//! // parameters go right in the spec string).
//! let mut stream = GaussianMixtureGenerator::balanced(8, 3, 1, 7);
//! let spec = DetectorSpec::parse("rbm(minibatch=25)").unwrap();
//! let client = server.attach("feed-00", stream.schema().clone(), &spec).unwrap();
//!
//! // Ingest with explicit backpressure.
//! for instance in stream.take_instances(500) {
//!     let mut pending = instance;
//!     loop {
//!         match client.try_ingest(pending) {
//!             Ok(()) => break,
//!             Err(e) => {
//!                 pending = e.into_rejected().pop().unwrap();
//!                 std::thread::yield_now();
//!             }
//!         }
//!     }
//! }
//!
//! server.drain(); // barrier: everything above is now processed
//! let report = server.shutdown();
//! assert_eq!(report.streams.len(), 1);
//! assert_eq!(report.streams[0].result.instances, 500);
//! drop(events);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod event;
pub mod router;
pub mod server;
mod shard;
pub mod sink;
pub mod supervisor;

pub use chaos::{
    ChaosEvent, ChaosFault, ChaosPlan, ChaosSpillIo, FaultConfig, FaultPlane, FaultRate, FaultSite,
    SpillWriteFault,
};
pub use config::{ServeConfig, TierPolicy};
pub use event::{EventBus, ServeEvent, ServeEventKind};
pub use router::StreamRouter;
pub use server::{
    deterministic_spec, FrameDropBreakdown, HealthSnapshot, HibernateOutcome, IngestError,
    MigratedStream, ResizeReport, ServeError, ServeReport, ServerHandle, ShardHealth, ShardLoad,
    StreamCheckpoint, StreamClient, StreamSummary,
};
pub use shard::{TierKind, TierScanEntry};
pub use sink::{MetricRetention, OsSpillIo, SnapshotSink, SpillIo};
pub use supervisor::{
    CheckpointPolicy, HysteresisResizePolicy, ResizeConfig, ResizePolicy, Supervisor,
    SupervisorConfig, SupervisorHandle, SupervisorReport,
};
