//! Miniature Table III: runs the paper's six detectors on a handful of
//! benchmark streams from the registry (scaled down) and prints the
//! pmAUC/pmGM table with Friedman average ranks — the same pipeline the
//! `experiment1` binary uses for the full 24-benchmark table.
//!
//! Run with: `cargo run -p rbm-im-harness --release --example detector_comparison`

use rbm_im_harness::experiment1::{run_experiment1, BuildConfigSerde, Experiment1Config};
use rbm_im_harness::report::{format_ranking, format_table3};
use rbm_im_harness::runner::RunConfig;

fn main() {
    let config = Experiment1Config {
        build: BuildConfigSerde {
            seed: 42,
            scale_divisor: 100,
            n_drifts: 2,
            dynamic_imbalance: true,
        },
        run: RunConfig { metric_window: 1000, max_instances: Some(15_000), ..Default::default() },
        benchmarks: vec![
            "RBF5".into(),
            "Hyperplane5".into(),
            "Aggrawal5".into(),
            "RandomTree5".into(),
            "Electricity".into(),
            "Poker".into(),
        ],
        ..Default::default()
    };
    eprintln!("running 6 detectors x 6 benchmarks (this takes a minute or two)...\n");
    let result = run_experiment1(&config, |r| {
        eprintln!("  {:<14} {:<10} pmAUC {:6.2}", r.stream, r.detector, r.pm_auc);
    });
    println!("{}", format_table3(&result, "pmAUC"));
    println!("{}", format_table3(&result, "pmGM"));
    println!("{}", format_ranking(&result, "pmAUC", 0.05));
}
