//! Enforces the workspace contract: once the [`Workspace`] buffers have
//! grown to the working shape, steady-state `train_flat` /
//! `reconstruction_errors_flat_with` calls perform **zero** heap
//! allocations — in sequential mode *and* on the row-parallel kernel path.
//! A counting global allocator measures the hot path directly; this file
//! holds a single test so no concurrent test can pollute the counter.
//!
//! **Parallel-path exemption.** The persistent worker pool allocates
//! exactly once per process, at spin-up (`rayon::ensure_pool`): thread
//! stacks, the leaked pool descriptor, and the cached thread-count string
//! read from `RAYON_NUM_THREADS`. The test therefore spins the pool up
//! *before* counting starts. After that, job dispatch is allocation-free by
//! construction — the job slot is a fixed-size struct behind a mutex, and
//! chunk closures borrow pre-grown workspace buffers. Allocation counting
//! is thread-local to the test thread, which still proves the kernels
//! allocation-free: the posting thread participates in every parallel job
//! and runs the *same* chunk closure as the workers, so any allocating
//! kernel would be counted on the poster's own chunks.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use rbm_im::network::{RbmNetwork, RbmNetworkConfig, Workspace};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the test thread's allocations are counted while this is set —
    /// libtest's harness threads (result reporting, timers) allocate
    /// concurrently and must not pollute the measurement.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    if COUNTING.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_here();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Deterministic batch content without touching the allocator during
/// regeneration: the caller provides the buffers.
fn fill_batch(features: &mut [f64], classes: &mut [usize], num_classes: usize, seed: u64) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for f in features.iter_mut() {
        *f = (next() >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0;
    }
    for c in classes.iter_mut() {
        *c = (next() % num_classes as u64) as usize;
    }
}

/// Runs the steady-state measurement for one network configuration and
/// returns the number of allocations observed on the test thread.
fn measure_steady_state(config: RbmNetworkConfig, label: &str) {
    const BATCH: usize = 50; // the paper's default mini-batch size
    const FEATURES: usize = 12;
    const CLASSES: usize = 4;
    let mut net = RbmNetwork::new(FEATURES, CLASSES, config);

    let mut features = vec![0.0; BATCH * FEATURES];
    let mut classes = vec![0usize; BATCH];
    let mut errors = Vec::with_capacity(CLASSES);
    let mut ws = Workspace::default();

    // Warm-up: the first batches grow every workspace buffer to shape.
    for round in 0..3 {
        fill_batch(&mut features, &mut classes, CLASSES, round);
        net.reconstruction_errors_flat_with(&mut ws, &features, &classes, &mut errors);
        net.train_flat(&features, &classes);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|flag| flag.set(true));
    for round in 3..10 {
        fill_batch(&mut features, &mut classes, CLASSES, round);
        net.reconstruction_errors_flat_with(&mut ws, &features, &classes, &mut errors);
        net.train_flat(&features, &classes);
    }
    COUNTING.with(|flag| flag.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "{label}: steady-state detect+train must not touch the allocator \
         ({} allocations observed)",
        after - before
    );
    assert_eq!(net.batches_trained(), 10);
    assert_eq!(errors.len(), CLASSES);
}

#[test]
fn steady_state_training_does_not_allocate() {
    // Sequential exact mode: the original contract.
    measure_steady_state(
        RbmNetworkConfig {
            gibbs_steps: 2,
            parallel: rbm_im::ParallelMode::Off,
            ..Default::default()
        },
        "sequential",
    );

    // Row-parallel mode: spin the pool up *outside* the counted region
    // (the documented one-time exemption), then require the same zero.
    // `ensure_pool(2)` oversubscribes a 1-core runner so the parallel
    // dispatch path genuinely executes.
    rayon::ensure_pool(2);
    measure_steady_state(
        RbmNetworkConfig {
            gibbs_steps: 2,
            parallel: rbm_im::ParallelMode::On,
            max_threads: 2,
            ..Default::default()
        },
        "row-parallel",
    );

    // Fast-math mode shares the dispatch machinery and must also stay
    // allocation-free.
    measure_steady_state(
        RbmNetworkConfig { gibbs_steps: 2, fast_math: true, ..Default::default() },
        "fast-math",
    );
}
