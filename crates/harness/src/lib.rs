//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Sec. VI) from the building blocks in the other crates.
//!
//! Everything runs through the unified **Pipeline API**:
//!
//! * [`pipeline::PipelineBuilder`] — one prequential run: a stream, an
//!   [`rbm_im_classifiers::OnlineClassifier`] (the paper's CSPT by default),
//!   a drift detector (pre-built or resolved by spec), allocation-free
//!   buffers in the hot loop, optional detector mini-batching and event
//!   sinks;
//! * [`registry::DetectorRegistry`] / [`registry::DetectorSpec`] — the open,
//!   string-keyed detector catalogue (`"adwin(delta=0.01)"` is a valid
//!   spec); new detectors register without touching this crate;
//! * [`pipeline::run_grid`] — the rayon-parallel detectors × streams grid
//!   with deterministic per-cell seeding that experiments 1–3 are built on;
//! * [`detectors::DetectorKind`] — compat shim enumerating the paper's
//!   line-up, resolved through the registry;
//! * [`runner`] — deprecated compat wrapper around the pipeline.
//!
//! | Paper artifact | Module | Binary / bench |
//! |---|---|---|
//! | Table I (benchmark inventory) | [`rbm_im_streams::registry`] | `cargo run -p rbm-im-harness --release --bin table1` |
//! | Table III (pmAUC / pmGM / timing, 6 detectors × 24 streams) | [`experiment1`] | `--bin experiment1`, bench `table3_detectors` |
//! | Fig. 4 & 5 (Bonferroni–Dunn ranks) | [`experiment1`] | `--bin experiment1` |
//! | Fig. 6 & 7 (Bayesian signed tests) | [`experiment1`] | `--bin experiment1` |
//! | Fig. 8 (pmAUC vs number of locally drifting classes) | [`experiment2`] | `--bin experiment2`, bench `fig8_local_drift` |
//! | Fig. 9 (pmAUC vs imbalance ratio) | [`experiment3`] | `--bin experiment3`, bench `fig9_imbalance` |
//! | Detector overhead (Table III bottom rows) | [`runner`] timing fields | bench `detector_overhead` |
//! | Design-choice ablations (DESIGN.md) | [`ablation`] | bench `ablation_rbm` |
//!
//! The harness scales stream lengths down by default (`BuildConfig::default`)
//! so the complete Table III regenerates in minutes on a laptop; pass
//! `--scale 1` to the binaries for paper-scale streams.

#![warn(missing_docs)]

pub mod ablation;
pub mod checkpoint;
pub mod detectors;
pub mod experiment1;
pub mod experiment2;
pub mod experiment3;
pub mod pipeline;
pub mod registry;
pub mod report;
pub mod runner;
pub mod stepper;
pub mod tuning;

pub use checkpoint::{CheckpointError, PipelineCheckpoint};
pub use detectors::DetectorKind;
pub use pipeline::{run_grid, GridStream, PipelineBuilder, PipelineEvent, RunConfig, RunResult};
pub use registry::{DetectorRegistry, DetectorSpec};
pub use stepper::PipelineStepper;
