//! Equivalence suite: the flat-kernel [`RbmNetwork`] must reproduce the
//! retained naive reference implementation exactly.
//!
//! The flat implementation promises more than "numerically close": its
//! kernels accumulate every sum in the reference's element order and its
//! batched Gibbs chain consumes the RNG stream in the reference's
//! per-instance draw order, so weights, errors, and probabilities should be
//! *bitwise* identical. The property tests below assert the contractual
//! ≤ 1e-12 agreement across random shapes, batches, label noise, and Gibbs
//! depths; the fixed-shape test at the bottom pins the stronger bitwise
//! guarantee (which is what keeps drift positions of the RBM-IM detector
//! unchanged relative to the seed).

use proptest::prelude::*;
use rbm_im::network::{RbmNetwork, RbmNetworkConfig, Workspace};
use rbm_im::reference::ReferenceRbmNetwork;
use rbm_im::ParallelMode;
use rbm_im_streams::{Instance, MiniBatch};

const TOL: f64 = 1e-12;

fn batch_from(instances: Vec<Instance>) -> MiniBatch {
    MiniBatch { start_index: 0, instances }
}

/// Per-class reconstruction errors of a mini-batch through the flat
/// network's immutable `_with` scoring surface.
fn flat_batch_errors(net: &RbmNetwork, ws: &mut Workspace, batch: &MiniBatch) -> Vec<Option<f64>> {
    let mut features = Vec::new();
    let mut classes = Vec::new();
    for inst in &batch.instances {
        features.extend_from_slice(&inst.features);
        classes.push(inst.class);
    }
    let mut out = Vec::new();
    net.reconstruction_errors_flat_with(ws, &features, &classes, &mut out);
    out
}

/// Builds the per-instance stream of a deterministic pseudo-random batch:
/// `n` instances of `num_features` features in [-5, 5], with classes drawn
/// from `0..num_classes + 1` so that roughly one in `num_classes + 1`
/// instances carries an out-of-range label (which both implementations must
/// skip identically).
fn synth_instances(n: usize, num_features: usize, num_classes: usize, seed: u64) -> Vec<Instance> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let features: Vec<f64> = (0..num_features)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 * 10.0 - 5.0)
                .collect();
            let class = (next() % (num_classes as u64 + 1)) as usize;
            Instance::new(features, class)
        })
        .collect()
}

fn assert_close(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (g - w).abs() <= TOL,
            "{label}[{i}]: flat {g} vs reference {w} (diff {})",
            (g - w).abs()
        );
    }
}

fn assert_networks_match(flat: &mut RbmNetwork, naive: &ReferenceRbmNetwork, context: &str) {
    let num_visible = naive.a.len();
    let num_hidden = naive.num_hidden();
    let num_classes = naive.c.len();
    for i in 0..num_visible {
        assert_close(&format!("{context}: w[{i}]"), flat.w().row(i), &naive.w[i]);
    }
    for j in 0..num_hidden {
        assert_close(&format!("{context}: u[{j}]"), flat.u().row(j), &naive.u[j]);
    }
    assert_close(&format!("{context}: a"), flat.a(), &naive.a);
    assert_close(&format!("{context}: b"), flat.b(), &naive.b);
    assert_close(&format!("{context}: c"), flat.c(), &naive.c);
    assert_eq!(flat.class_counts(), naive.class_counts(), "{context}: class counts");
    for class in 0..num_classes {
        let (g, w) = (flat.class_weight(class), naive.class_weight(class));
        assert!((g - w).abs() <= TOL, "{context}: class_weight({class}): {g} vs {w}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Training on random shapes/batches/Gibbs depths keeps every parameter
    /// of the two implementations within 1e-12, along with the returned
    /// batch errors and the per-class reconstruction errors.
    #[test]
    fn train_batch_updates_match(
        shape in (1usize..9, 2usize..6, 1usize..4, 0u64..10_000),
        batch_size in 1usize..40,
        fraction_step in 0usize..4
    ) {
        let (num_features, num_classes, gibbs_steps, seed) = shape;
        let config = RbmNetworkConfig {
            hidden_fraction: 0.25 + fraction_step as f64 * 0.25,
            gibbs_steps,
            seed,
            ..Default::default()
        };
        let mut flat = RbmNetwork::new(num_features, num_classes, config);
        let mut naive = ReferenceRbmNetwork::new(num_features, num_classes, config);
        assert_networks_match(&mut flat, &naive, "construction");
        for round in 0..4 {
            let batch = batch_from(synth_instances(
                batch_size,
                num_features,
                num_classes,
                seed ^ (round as u64 + 1),
            ));
            let flat_err = flat.train_batch(&batch);
            let naive_err = naive.train_batch(&batch);
            prop_assert!(
                (flat_err - naive_err).abs() <= TOL,
                "round {round}: training error {flat_err} vs {naive_err}"
            );
            assert_networks_match(&mut flat, &naive, &format!("round {round}"));
            let mut ws = Workspace::default();
            let flat_errors = flat_batch_errors(&flat, &mut ws, &batch);
            let naive_errors = naive.batch_reconstruction_errors(&batch);
            for (class, (g, w)) in flat_errors.iter().zip(naive_errors.iter()).enumerate() {
                match (g, w) {
                    (None, None) => {}
                    (Some(g), Some(w)) => prop_assert!(
                        (g - w).abs() <= TOL,
                        "round {round}: class {class} error {g} vs {w}"
                    ),
                    _ => prop_assert!(false, "round {round}: class {class} presence mismatch"),
                }
            }
        }
    }

    /// Hidden/visible/class probabilities, free-energy prediction, and
    /// single-instance reconstruction errors agree on trained networks.
    #[test]
    fn inference_paths_match(
        shape in (1usize..9, 2usize..6, 0u64..10_000),
        probe_count in 1usize..10
    ) {
        let (num_features, num_classes, seed) = shape;
        let config = RbmNetworkConfig { seed, ..Default::default() };
        let mut flat = RbmNetwork::new(num_features, num_classes, config);
        let mut naive = ReferenceRbmNetwork::new(num_features, num_classes, config);
        // A little training so ranges and weights are non-trivial.
        for round in 0..3 {
            let batch =
                batch_from(synth_instances(25, num_features, num_classes, seed ^ (round + 40)));
            flat.train_batch(&batch);
            naive.train_batch(&batch);
        }
        let probes = synth_instances(probe_count, num_features, num_classes, seed ^ 77);
        for (p, probe) in probes.iter().enumerate() {
            let v = naive.normalize(&probe.features);
            let mut z = vec![0.0; num_classes];
            if probe.class < num_classes {
                z[probe.class] = 1.0;
            }
            let h_flat = flat.hidden_probabilities(&v, &z);
            let h_naive = naive.hidden_probabilities(&v, &z);
            assert_close(&format!("probe {p}: hidden"), &h_flat, &h_naive);
            assert_close(
                &format!("probe {p}: visible"),
                &flat.visible_probabilities(&h_naive),
                &naive.visible_probabilities(&h_naive),
            );
            assert_close(
                &format!("probe {p}: class"),
                &flat.class_probabilities(&h_naive),
                &naive.class_probabilities(&h_naive),
            );
            let mut ws = Workspace::default();
            let (ge, we) =
                (flat.reconstruction_error_with(&mut ws, probe), naive.reconstruction_error(probe));
            prop_assert!(
                (ge - we).abs() <= TOL,
                "probe {p}: reconstruction error {ge} vs {we}"
            );
            prop_assert_eq!(
                flat.predict(&probe.features),
                naive.predict(&probe.features),
                "probe {p}: prediction"
            );
        }
    }
}

/// Row-parallel kernels keep the bitwise pin: a network trained with
/// `parallel = On` at 1, 2 and 4 worker threads produces exactly the bytes
/// the sequential network (and therefore the naive reference) produces,
/// because each output row's accumulation runs whole on one worker in the
/// unchanged element order. `ensure_pool(4)` oversubscribes the pool so the
/// parallel path genuinely executes even on a 1-core runner.
#[test]
fn parallel_training_is_bitwise_identical_at_any_thread_count() {
    rayon::ensure_pool(4);
    for threads in [1usize, 2, 4] {
        let sequential_config =
            RbmNetworkConfig { parallel: ParallelMode::Off, ..Default::default() };
        let parallel_config = RbmNetworkConfig {
            parallel: ParallelMode::On,
            max_threads: threads,
            ..Default::default()
        };
        let mut sequential = RbmNetwork::new(10, 4, sequential_config);
        let mut parallel = RbmNetwork::new(10, 4, parallel_config);
        let mut naive = ReferenceRbmNetwork::new(10, 4, sequential_config);
        for round in 0..12u64 {
            let batch = batch_from(synth_instances(50, 10, 4, 2000 + round));
            let seq_err = sequential.train_batch(&batch);
            let par_err = parallel.train_batch(&batch);
            let naive_err = naive.train_batch(&batch);
            assert_eq!(par_err, seq_err, "threads={threads} round {round}: training error");
            assert_eq!(par_err, naive_err, "threads={threads} round {round}: vs reference");
            assert_eq!(
                parallel.w().as_slice(),
                sequential.w().as_slice(),
                "threads={threads} round {round}: w"
            );
            assert_eq!(
                parallel.u().as_slice(),
                sequential.u().as_slice(),
                "threads={threads} round {round}: u"
            );
            assert_eq!(parallel.a(), sequential.a(), "threads={threads} round {round}: a");
            assert_eq!(parallel.b(), sequential.b(), "threads={threads} round {round}: b");
            assert_eq!(parallel.c(), sequential.c(), "threads={threads} round {round}: c");
        }
    }
}

/// The stronger pin: at a fixed representative shape the two
/// implementations are not merely close but **bitwise identical** after
/// every batch — training errors, weights, and per-class errors. This is
/// the property that guarantees the refactor cannot move any drift
/// position of the RBM-IM detector relative to the seed.
#[test]
fn flat_network_is_bitwise_identical_at_fixed_shape() {
    for gibbs_steps in [1usize, 2, 3] {
        let config = RbmNetworkConfig { gibbs_steps, ..Default::default() };
        let mut flat = RbmNetwork::new(10, 4, config);
        let mut naive = ReferenceRbmNetwork::new(10, 4, config);
        let mut ws = Workspace::default();
        for round in 0..20u64 {
            let batch = batch_from(synth_instances(50, 10, 4, 1000 + round));
            let flat_err = flat.train_batch(&batch);
            let naive_err = naive.train_batch(&batch);
            assert_eq!(flat_err, naive_err, "k={gibbs_steps} round {round}: training error");
            for i in 0..10 {
                assert_eq!(flat.w().row(i), &naive.w[i][..], "k={gibbs_steps} round {round}: w");
            }
            for j in 0..naive.num_hidden() {
                assert_eq!(flat.u().row(j), &naive.u[j][..], "k={gibbs_steps} round {round}: u");
            }
            assert_eq!(flat.a(), &naive.a[..]);
            assert_eq!(flat.b(), &naive.b[..]);
            assert_eq!(flat.c(), &naive.c[..]);
            assert_eq!(
                flat_batch_errors(&flat, &mut ws, &batch),
                naive.batch_reconstruction_errors(&batch),
                "k={gibbs_steps} round {round}: per-class errors"
            );
        }
    }
}
