//! Quickstart: monitor a drifting, imbalanced stream with RBM-IM.
//!
//! Builds a 4-class RBF stream with a 20:1 imbalance, injects a sudden drift
//! into the *smallest class only* halfway through, and shows RBM-IM flagging
//! the change and naming the affected class while a standard error-based
//! detector (DDM) stays silent.
//!
//! Run with: `cargo run -p rbm-im-harness --release --example quickstart`

use rbm_im::{RbmIm, RbmImConfig};
use rbm_im_detectors::{Ddm, DriftDetector, Observation};
use rbm_im_streams::drift::local::{LocalDriftEvent, LocalDriftStream};
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
use rbm_im_streams::StreamExt;

fn main() {
    // 1. Build the stream: 4 classes, geometric 10:1 imbalance, and a severe
    //    local drift hitting only the smallest class (class 3) at t = 15 000.
    let base = RandomRbfGenerator::new(10, 4, 3, 0.0, 7);
    let drift = LocalDriftEvent {
        affected_classes: vec![3],
        position: 15_000,
        width: 0,
        kind: DriftKind::Sudden,
        magnitude: 0.9,
    };
    // Imbalance first, local drift outermost, so the drift position refers
    // to the indices of the stream we actually iterate over.
    let imbalanced = ImbalancedStream::new(base, ImbalanceProfile::geometric(4, 10.0), 3);
    let mut stream = LocalDriftStream::new(imbalanced, vec![drift], 11);

    // 2. Attach the detectors. The minority class contributes only a couple
    //    of instances to a default 50-instance mini-batch, so the example
    //    uses a larger batch to give its per-class error a stable estimate.
    let config = RbmImConfig { mini_batch_size: 100, ..Default::default() };
    let mut rbm_im = RbmIm::new(10, 4, config);
    let mut ddm = Ddm::new();

    // 3. Stream through 30 000 instances. RBM-IM consumes the instances
    //    directly; DDM monitors a simulated classifier whose accuracy on the
    //    drifted minority class collapses after the drift (the realistic
    //    situation the paper describes: the global error barely moves).
    let instances = stream.take_instances(30_000);
    println!("streaming {} instances (local drift in class 3 at t = 15000)\n", instances.len());
    let mut rbm_detections = Vec::new();
    let mut ddm_detections = Vec::new();
    for inst in &instances {
        if rbm_im.observe_instance(inst).is_drift() {
            rbm_detections.push((inst.index, rbm_im.drifted_classes()));
        }
        // Simulated classifier: 90% accurate everywhere, except on class 3
        // after the drift where it drops to 30%.
        let drifted_region = inst.index >= 15_000 && inst.class == 3;
        let accuracy = if drifted_region { 0.3 } else { 0.9 };
        let hash = ((inst.index as f64 * 0.754_877).fract()) < accuracy;
        let predicted = if hash { inst.class } else { (inst.class + 1) % 4 };
        let obs = Observation::new(&inst.features, inst.class, predicted);
        if ddm.update(&obs).is_drift() {
            ddm_detections.push(inst.index);
        }
    }

    // 4. Report.
    println!("RBM-IM raised {} drift signal(s):", rbm_detections.len());
    for (pos, classes) in &rbm_detections {
        println!("  at instance {:>6}, affected classes {:?}", pos, classes);
    }
    println!("\nDDM (global error monitoring) raised {} drift signal(s): {:?}", ddm_detections.len(), ddm_detections);
    println!(
        "\nRBM-IM processed {} mini-batches and signalled {} drifts in total.",
        rbm_im.batches_processed(),
        rbm_im.drift_count()
    );
    if rbm_detections.iter().any(|(p, c)| *p >= 15_000 && c.contains(&3)) {
        println!("=> the local minority-class drift was detected and attributed correctly.");
    } else {
        println!("=> the drift was not attributed to class 3 in this run; try a different seed.");
    }
}
