//! Classical continuous distributions with CDF, survival function and
//! quantile (inverse CDF) implementations.
//!
//! The drift detectors and statistical post-processing only require a small
//! set of distributions:
//!
//! * [`Normal`] — DDM/EDDM-style detectors, Wilcoxon normal approximation,
//!   Bonferroni–Dunn critical values;
//! * [`StudentsT`] — regression-coefficient significance;
//! * [`ChiSquared`] — Friedman test statistic;
//! * [`FisherF`] — Granger causality F-test (the decision rule inside
//!   RBM-IM) and the Friedman F-ratio variant.
//!
//! Quantiles are obtained by bisection on the CDF, which is plenty fast for
//! the (infrequent) critical-value lookups done by detectors and the
//! harness.

use crate::special::{erf, erfc, regularized_beta, regularized_gamma_p, regularized_gamma_q};

/// Common interface implemented by all continuous distributions here.
pub trait ContinuousDistribution {
    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;
    /// Survival function `P(X > x) = 1 - cdf(x)`, computed stably.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
    /// Lower bound of the support (used by the generic quantile search).
    fn support_lower(&self) -> f64;
    /// Upper bound of the support (used by the generic quantile search).
    fn support_upper(&self) -> f64;

    /// Quantile function (inverse CDF): smallest `x` with `cdf(x) >= p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0,1], got {p}");
        if p == 0.0 {
            return self.support_lower();
        }
        if p == 1.0 {
            return self.support_upper();
        }
        // Establish a finite bracket.
        let mut lo = if self.support_lower().is_finite() { self.support_lower() } else { -1.0 };
        let mut hi = if self.support_upper().is_finite() { self.support_upper() } else { 1.0 };
        if !self.support_lower().is_finite() {
            while self.cdf(lo) > p {
                lo *= 2.0;
                if lo < -1e300 {
                    break;
                }
            }
        }
        if !self.support_upper().is_finite() {
            while self.cdf(hi) < p {
                hi *= 2.0;
                if hi > 1e300 {
                    break;
                }
            }
        }
        // Bisection: 200 iterations gives ~1e-60 relative bracket shrinkage,
        // far below f64 resolution, so convergence is guaranteed.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo).abs() <= f64::EPSILON * (1.0 + mid.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Normal (Gaussian) distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mu: f64,
    /// Standard deviation (must be strictly positive).
    pub sigma: f64,
}

impl Normal {
    /// Standard normal distribution (mean 0, standard deviation 1).
    pub fn standard() -> Self {
        Normal { mu: 0.0, sigma: 1.0 }
    }

    /// Creates a new normal distribution.
    ///
    /// # Panics
    /// Panics if `sigma <= 0` or parameters are not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite(), "normal parameters must be finite");
        assert!(sigma > 0.0, "normal sigma must be > 0, got {sigma}");
        Normal { mu, sigma }
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
}

impl ContinuousDistribution for Normal {
    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    fn support_lower(&self) -> f64 {
        f64::NEG_INFINITY
    }

    fn support_upper(&self) -> f64 {
        f64::INFINITY
    }
}

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentsT {
    /// Degrees of freedom (must be strictly positive).
    pub df: f64,
}

impl StudentsT {
    /// Creates a Student's t distribution.
    ///
    /// # Panics
    /// Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "t distribution requires df > 0, got {df}");
        StudentsT { df }
    }
}

impl ContinuousDistribution for StudentsT {
    fn cdf(&self, x: f64) -> f64 {
        // CDF via the regularized incomplete beta function.
        let v = self.df;
        let xx = v / (v + x * x);
        let p = 0.5 * regularized_beta(xx, 0.5 * v, 0.5);
        if x >= 0.0 {
            1.0 - p
        } else {
            p
        }
    }

    fn support_lower(&self) -> f64 {
        f64::NEG_INFINITY
    }

    fn support_upper(&self) -> f64 {
        f64::INFINITY
    }
}

/// Chi-squared distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    /// Degrees of freedom (must be strictly positive).
    pub df: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution.
    ///
    /// # Panics
    /// Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "chi-squared requires df > 0, got {df}");
        ChiSquared { df }
    }
}

impl ContinuousDistribution for ChiSquared {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            regularized_gamma_p(0.5 * self.df, 0.5 * x)
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            regularized_gamma_q(0.5 * self.df, 0.5 * x)
        }
    }

    fn support_lower(&self) -> f64 {
        0.0
    }

    fn support_upper(&self) -> f64 {
        f64::INFINITY
    }
}

/// Fisher–Snedecor F distribution with `d1` and `d2` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    /// Numerator degrees of freedom.
    pub d1: f64,
    /// Denominator degrees of freedom.
    pub d2: f64,
}

impl FisherF {
    /// Creates an F distribution.
    ///
    /// # Panics
    /// Panics if either degrees-of-freedom parameter is not strictly positive.
    pub fn new(d1: f64, d2: f64) -> Self {
        assert!(d1 > 0.0 && d2 > 0.0, "F distribution requires d1,d2 > 0 (d1={d1}, d2={d2})");
        FisherF { d1, d2 }
    }
}

impl ContinuousDistribution for FisherF {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            let t = self.d1 * x / (self.d1 * x + self.d2);
            regularized_beta(t, 0.5 * self.d1, 0.5 * self.d2)
        }
    }

    fn support_lower(&self) -> f64 {
        0.0
    }

    fn support_upper(&self) -> f64 {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn standard_normal_cdf_known_values() {
        let n = Normal::standard();
        close(n.cdf(0.0), 0.5, 1e-12);
        close(n.cdf(1.959_963_985), 0.975, 1e-8);
        close(n.cdf(-1.959_963_985), 0.025, 1e-8);
        close(n.cdf(1.644_853_627), 0.95, 1e-8);
        close(n.sf(3.0), 0.001_349_898_031_630_09, 1e-10);
    }

    #[test]
    fn normal_quantile_round_trips() {
        let n = Normal::new(2.0, 3.0);
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = n.quantile(p);
            close(n.cdf(x), p, 1e-9);
        }
    }

    #[test]
    fn normal_pdf_integrates_to_cdf_diff() {
        // Crude Riemann check that pdf is consistent with cdf.
        let n = Normal::standard();
        let mut acc = 0.0;
        let step = 1e-3;
        let mut x = -1.0;
        while x < 1.0 {
            acc += n.pdf(x + 0.5 * step) * step;
            x += step;
        }
        close(acc, n.cdf(1.0) - n.cdf(-1.0), 1e-6);
    }

    #[test]
    fn students_t_limits_to_normal() {
        let t = StudentsT::new(1_000_000.0);
        let n = Normal::standard();
        for &x in &[-2.0, -1.0, 0.0, 0.5, 1.5, 2.5] {
            close(t.cdf(x), n.cdf(x), 1e-5);
        }
    }

    #[test]
    fn students_t_known_quantiles() {
        // t_{0.975, 10} ≈ 2.228139
        let t = StudentsT::new(10.0);
        close(t.quantile(0.975), 2.228_138_85, 1e-5);
        // t distribution is symmetric
        close(t.cdf(1.3) + t.cdf(-1.3), 1.0, 1e-12);
    }

    #[test]
    fn chi_squared_known_values() {
        // χ²(k=2) is Exp(1/2): cdf(x) = 1 - exp(-x/2)
        let c = ChiSquared::new(2.0);
        for &x in &[0.5, 1.0, 3.0, 6.0] {
            close(c.cdf(x), 1.0 - (-x / 2.0_f64).exp(), 1e-12);
        }
        // χ²_{0.95, 5} ≈ 11.0705
        let c5 = ChiSquared::new(5.0);
        close(c5.quantile(0.95), 11.070_497_7, 1e-4);
        assert_eq!(c5.cdf(-1.0), 0.0);
        assert_eq!(c5.sf(-1.0), 1.0);
    }

    #[test]
    fn fisher_f_known_values() {
        // F_{0.95}(1, 10) ≈ 4.9646
        let f = FisherF::new(1.0, 10.0);
        close(f.quantile(0.95), 4.964_6, 2e-3);
        // F_{0.95}(5, 20) ≈ 2.7109
        let f2 = FisherF::new(5.0, 20.0);
        close(f2.quantile(0.95), 2.710_9, 2e-3);
        assert_eq!(f.cdf(0.0), 0.0);
    }

    #[test]
    fn fisher_f_relation_to_t() {
        // If T ~ t(v) then T² ~ F(1, v).
        let v = 7.0;
        let t = StudentsT::new(v);
        let f = FisherF::new(1.0, v);
        for &x in &[0.5, 1.0, 2.0] {
            let p_t = t.cdf(x) - t.cdf(-x);
            let p_f = f.cdf(x * x);
            close(p_t, p_f, 1e-10);
        }
    }

    #[test]
    fn quantile_extremes_hit_support_bounds() {
        let c = ChiSquared::new(3.0);
        assert_eq!(c.quantile(0.0), 0.0);
        assert_eq!(c.quantile(1.0), f64::INFINITY);
        let n = Normal::standard();
        assert_eq!(n.quantile(0.0), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic]
    fn normal_rejects_nonpositive_sigma() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_invalid_probability() {
        Normal::standard().quantile(1.2);
    }
}
