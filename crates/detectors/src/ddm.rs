//! DDM — Drift Detection Method (Gama et al., SBIA 2004).
//!
//! Monitors the running error rate `p_i` and its standard deviation
//! `s_i = sqrt(p_i (1 − p_i) / i)`. The minimum of `p_i + s_i` over the
//! current concept is remembered; a warning is raised when
//! `p_i + s_i >= p_min + 2 s_min` and a drift when
//! `p_i + s_i >= p_min + 3 s_min`.

use crate::{DetectorState, DriftDetector, Observation};

/// Configuration of [`Ddm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdmConfig {
    /// Number of instances to observe before the test activates.
    pub min_instances: u64,
    /// Warning threshold multiplier (standard value 2.0).
    pub warning_level: f64,
    /// Drift threshold multiplier (standard value 3.0).
    pub drift_level: f64,
}

impl Default for DdmConfig {
    fn default() -> Self {
        DdmConfig { min_instances: 30, warning_level: 2.0, drift_level: 3.0 }
    }
}

/// The DDM detector.
#[derive(Debug, Clone)]
pub struct Ddm {
    config: DdmConfig,
    n: u64,
    errors: u64,
    p_min: f64,
    s_min: f64,
    state: DetectorState,
}

impl Ddm {
    /// Creates a DDM detector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(DdmConfig::default())
    }

    /// Creates a DDM detector with an explicit configuration.
    pub fn with_config(config: DdmConfig) -> Self {
        assert!(config.drift_level > config.warning_level, "drift level must exceed warning level");
        Ddm {
            config,
            n: 0,
            errors: 0,
            p_min: f64::MAX,
            s_min: f64::MAX,
            state: DetectorState::Stable,
        }
    }

    /// Current error-rate estimate.
    pub fn error_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.errors as f64 / self.n as f64
        }
    }
}

impl Default for Ddm {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for Ddm {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        self.n += 1;
        if !observation.correct {
            self.errors += 1;
        }
        if self.n < self.config.min_instances {
            self.state = DetectorState::Stable;
            return self.state;
        }
        let p = self.error_rate();
        let s = (p * (1.0 - p) / self.n as f64).sqrt();
        if p + s < self.p_min + self.s_min {
            self.p_min = p;
            self.s_min = s;
        }
        self.state = if p + s >= self.p_min + self.config.drift_level * self.s_min {
            // Reset the concept statistics so monitoring restarts cleanly.
            self.n = 0;
            self.errors = 0;
            self.p_min = f64::MAX;
            self.s_min = f64::MAX;
            DetectorState::Drift
        } else if p + s >= self.p_min + self.config.warning_level * self.s_min {
            DetectorState::Warning
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = Ddm::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "DDM"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("n", self.n.serialize_value()),
            ("errors", self.errors.serialize_value()),
            ("p_min", self.p_min.serialize_value()),
            ("s_min", self.s_min.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.n = state.field("n")?;
        self.errors = state.field("errors")?;
        self.p_min = state.field("p_min")?;
        self.s_min = state.field("s_min")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_abrupt_change, assert_quiet_on_stationary, run_error_stream,
    };
    use crate::DriftDetectorExt;

    #[test]
    fn detects_abrupt_error_increase() {
        assert_detects_abrupt_change(&mut Ddm::new(), 800, 2);
    }

    #[test]
    fn quiet_on_stationary_stream() {
        assert_quiet_on_stationary(&mut Ddm::new(), 1);
    }

    #[test]
    fn warning_precedes_drift() {
        // Feed a slowly degrading error stream manually and look for a
        // warning before the drift fires.
        let mut ddm = Ddm::new();
        let features = [0.0];
        let mut saw_warning_before_drift = false;
        let mut warned = false;
        for i in 0..5000usize {
            let p = if i < 2000 { 0.05 } else { 0.05 + (i - 2000) as f64 * 0.0004 };
            let wrong = ((i as f64 * 0.754_877).fract()) < p;
            let obs = Observation {
                features: &features,
                true_class: 0,
                predicted_class: if wrong { 1 } else { 0 },
                correct: !wrong,
            };
            match ddm.update(&obs) {
                DetectorState::Warning => warned = true,
                DetectorState::Drift => {
                    saw_warning_before_drift = warned;
                    break;
                }
                DetectorState::Stable => {}
            }
        }
        assert!(
            saw_warning_before_drift,
            "DDM should pass through the warning zone before drifting"
        );
    }

    #[test]
    fn error_improvement_does_not_trigger() {
        let detections = run_error_stream(&mut Ddm::new(), 0.5, 0.1, 3000, 6000, 3);
        assert!(
            detections.is_empty(),
            "an error decrease must not raise DDM alarms: {detections:?}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ddm = Ddm::new();
        run_error_stream(&mut ddm, 0.1, 0.6, 1000, 3000, 9);
        ddm.reset();
        assert_eq!(ddm.state(), DetectorState::Stable);
        assert_eq!(ddm.error_rate(), 0.0);
        assert_eq!(ddm.name(), "DDM");
        assert!(!ddm.per_class_detection());
        assert!(ddm.drifted_classes().is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        Ddm::with_config(DdmConfig { warning_level: 3.0, drift_level: 2.0, min_instances: 30 });
    }
}
