//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde [`Value`] model. Supports the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null) — enough for experiment
//! artifacts and configuration round-trips.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse_value(input)?;
    Ok(T::deserialize_value(&value)?)
}

/// Parses a JSON string into a [`Value`] tree.
pub fn parse_value(input: &str) -> Result<Value> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

// ---- writer ----------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/inf; serialize as null like serde_json's lossy modes.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // The integer fast path below would print "-0" as "0" and lose the
        // sign bit; state snapshots need negative zero to round-trip.
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn parse(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|e| Error(e.to_string()))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(Error(format!("invalid escape \\{}", other as char))),
                    }
                }
                c => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let width = utf8_width(c);
                    let start = self.pos - 1;
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(Error("truncated UTF-8 sequence".into()));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error(e.to_string()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("expected , or ] in array, found {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error(format!("expected , or }} in object, found {other:?}"))),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"name":"ADWIN \"tuned\"","params":{"delta":0.01},"tags":[1,2.5,true,null],"unicode":"α→β"}"#;
        let value = parse_value(text).unwrap();
        let rendered = to_string(&value).unwrap();
        let again = parse_value(&rendered).unwrap();
        assert_eq!(value, again);
        assert_eq!(value.get("name"), Some(&Value::String("ADWIN \"tuned\"".into())));
    }

    #[test]
    fn pretty_printer_indents() {
        let value = parse_value(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&Value::Number(8000.0)).unwrap(), "8000");
        assert_eq!(to_string(&Value::Number(1.25)).unwrap(), "1.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{broken").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
