//! RandomTree generator.
//!
//! The MOA `RandomTreeGenerator` builds a random decision tree over the
//! feature space and labels uniformly sampled instances by routing them to a
//! leaf. Drift is obtained by replacing the tree with a freshly generated
//! one — a sudden real drift (the setting listed for the
//! `RandomTree5/10/20` benchmarks of Table I).
//!
//! Leaves are labeled round-robin during construction so the class
//! distribution stays approximately balanced, leaving imbalance control to
//! the [`imbalance`](crate::imbalance) wrapper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// A node of the random labeling tree.
#[derive(Debug, Clone)]
enum TreeNode {
    Split { feature: usize, threshold: f64, left: Box<TreeNode>, right: Box<TreeNode> },
    Leaf { class: usize },
}

/// Random decision-tree labeled stream.
pub struct RandomTreeGenerator {
    schema: StreamSchema,
    seed: u64,
    rng: StdRng,
    tree: TreeNode,
    depth: usize,
    /// How many times the tree has been regenerated (concept counter).
    concept: u64,
    noise: f64,
    counter: u64,
}

impl RandomTreeGenerator {
    /// Creates a generator with a random tree of the given `depth` over
    /// `num_features` uniform features in `[0, 1]`.
    pub fn new(num_features: usize, num_classes: usize, depth: usize, seed: u64) -> Self {
        assert!(num_features >= 1);
        assert!(num_classes >= 2);
        assert!(depth >= 1, "tree depth must be >= 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut leaf_counter = 0usize;
        let tree = Self::build_tree(depth, num_features, num_classes, &mut rng, &mut leaf_counter);
        let schema = StreamSchema::new(
            format!("randomtree-d{num_features}-c{num_classes}"),
            num_features,
            num_classes,
        );
        RandomTreeGenerator { schema, seed, rng, tree, depth, concept: 0, noise: 0.0, counter: 0 }
    }

    /// Sets the label-noise fraction.
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise));
        self.noise = noise;
        self
    }

    /// Replaces the labeling tree with a fresh random one — a sudden global
    /// real drift.
    pub fn regenerate(&mut self) {
        let mut leaf_counter = self.rng.gen_range(0..self.schema.num_classes);
        self.tree = Self::build_tree(
            self.depth,
            self.schema.num_features,
            self.schema.num_classes,
            &mut self.rng,
            &mut leaf_counter,
        );
        self.concept += 1;
    }

    /// Number of tree regenerations so far.
    pub fn concept(&self) -> u64 {
        self.concept
    }

    fn build_tree(
        depth: usize,
        num_features: usize,
        num_classes: usize,
        rng: &mut StdRng,
        leaf_counter: &mut usize,
    ) -> TreeNode {
        if depth == 0 {
            let class = *leaf_counter % num_classes;
            *leaf_counter += 1;
            return TreeNode::Leaf { class };
        }
        let feature = rng.gen_range(0..num_features);
        // Keep thresholds away from the extremes so both branches are reachable.
        let threshold = rng.gen_range(0.25..0.75);
        TreeNode::Split {
            feature,
            threshold,
            left: Box::new(Self::build_tree(
                depth - 1,
                num_features,
                num_classes,
                rng,
                leaf_counter,
            )),
            right: Box::new(Self::build_tree(
                depth - 1,
                num_features,
                num_classes,
                rng,
                leaf_counter,
            )),
        }
    }

    fn classify(tree: &TreeNode, features: &[f64]) -> usize {
        match tree {
            TreeNode::Leaf { class } => *class,
            TreeNode::Split { feature, threshold, left, right } => {
                if features[*feature] <= *threshold {
                    Self::classify(left, features)
                } else {
                    Self::classify(right, features)
                }
            }
        }
    }
}

impl DataStream for RandomTreeGenerator {
    fn next_instance(&mut self) -> Option<Instance> {
        let features: Vec<f64> =
            (0..self.schema.num_features).map(|_| self.rng.gen_range(0.0..1.0)).collect();
        let mut class = Self::classify(&self.tree, &features);
        if self.noise > 0.0 && self.rng.gen::<f64>() < self.noise {
            class = self.rng.gen_range(0..self.schema.num_classes);
        }
        let inst = Instance::with_index(features, class, self.counter);
        self.counter += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut leaf_counter = 0usize;
        self.tree = Self::build_tree(
            self.depth,
            self.schema.num_features,
            self.schema.num_classes,
            &mut rng,
            &mut leaf_counter,
        );
        self.rng = rng;
        self.concept = 0;
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn labels_are_deterministic_given_features() {
        let g = RandomTreeGenerator::new(6, 4, 5, 10);
        let x = vec![0.3; 6];
        let a = RandomTreeGenerator::classify(&g.tree, &x);
        let b = RandomTreeGenerator::classify(&g.tree, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn regenerate_changes_labeling() {
        let mut g = RandomTreeGenerator::new(8, 5, 5, 20);
        // Fix a probe set, compare labels before/after the drift.
        let probes: Vec<Vec<f64>> = (0..300)
            .map(|i| (0..8).map(|j| (((i * 8 + j) as f64) * 0.618_033_9).fract()).collect())
            .collect();
        let before: Vec<usize> =
            probes.iter().map(|p| RandomTreeGenerator::classify(&g.tree, p)).collect();
        g.regenerate();
        assert_eq!(g.concept(), 1);
        let after: Vec<usize> =
            probes.iter().map(|p| RandomTreeGenerator::classify(&g.tree, p)).collect();
        let changed = before.iter().zip(after.iter()).filter(|(a, b)| a != b).count();
        assert!(changed > 60, "a new random tree must relabel a large share, got {changed}");
    }

    #[test]
    fn depth_controls_leaf_count_balance() {
        // With depth 4 there are 16 leaves; for 5 classes each class owns at
        // least 3 leaves, so no class should be empty in a large sample.
        let mut g = RandomTreeGenerator::new(10, 5, 4, 30);
        let mut counts = [0usize; 5];
        for inst in g.take_instances(5000) {
            counts[inst.class] += 1;
        }
        for (c, &n) in counts.iter().enumerate() {
            assert!(n > 100, "class {c} severely underrepresented: {n}");
        }
    }

    #[test]
    fn restart_reproduces_sequence_and_tree() {
        let mut g = RandomTreeGenerator::new(5, 3, 4, 77);
        let a = g.take_instances(200);
        g.regenerate();
        g.restart();
        assert_eq!(g.concept(), 0);
        let b = g.take_instances(200);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_perturbs_labels() {
        let clean: Vec<usize> = RandomTreeGenerator::new(5, 4, 4, 1)
            .take_instances(500)
            .iter()
            .map(|i| i.class)
            .collect();
        let noisy: Vec<usize> = RandomTreeGenerator::new(5, 4, 4, 1)
            .with_noise(0.3)
            .take_instances(500)
            .iter()
            .map(|i| i.class)
            .collect();
        assert_ne!(clean, noisy);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_depth() {
        RandomTreeGenerator::new(5, 3, 0, 0);
    }
}
