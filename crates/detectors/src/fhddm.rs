//! FHDDM — Fast Hoeffding Drift Detection Method (Pesaranghader & Viktor,
//! ECML-PKDD 2016).
//!
//! Keeps a sliding window of the most recent `n` prediction outcomes and
//! monitors the probability of *correct* predictions within it. The maximum
//! windowed accuracy observed during the current concept is remembered; when
//! the current windowed accuracy falls below that maximum by more than the
//! Hoeffding bound `ε = sqrt(ln(1/δ) / (2n))`, a drift is signalled.

use crate::{DetectorState, DriftDetector, Observation};
use rbm_im_stats::hoeffding::hoeffding_bound;
use std::collections::VecDeque;

/// Configuration of [`Fhddm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FhddmConfig {
    /// Sliding-window size (25–100 in the paper's grid).
    pub window_size: usize,
    /// Allowed error δ of the Hoeffding bound.
    pub delta: f64,
}

impl Default for FhddmConfig {
    fn default() -> Self {
        FhddmConfig { window_size: 100, delta: 1e-6 }
    }
}

/// The FHDDM detector.
#[derive(Debug, Clone)]
pub struct Fhddm {
    config: FhddmConfig,
    window: VecDeque<bool>,
    correct_in_window: usize,
    max_accuracy: f64,
    epsilon: f64,
    state: DetectorState,
}

impl Fhddm {
    /// Creates an FHDDM detector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(FhddmConfig::default())
    }

    /// Creates an FHDDM detector with an explicit configuration.
    pub fn with_config(config: FhddmConfig) -> Self {
        assert!(config.window_size >= 10, "window must hold at least 10 outcomes");
        assert!(config.delta > 0.0 && config.delta < 1.0);
        let epsilon = hoeffding_bound(1.0, config.delta, config.window_size as u64);
        Fhddm {
            config,
            window: VecDeque::with_capacity(config.window_size),
            correct_in_window: 0,
            max_accuracy: 0.0,
            epsilon,
            state: DetectorState::Stable,
        }
    }

    /// The Hoeffding threshold ε in use.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Default for Fhddm {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for Fhddm {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        if self.window.len() == self.config.window_size {
            if let Some(old) = self.window.pop_front() {
                if old {
                    self.correct_in_window -= 1;
                }
            }
        }
        self.window.push_back(observation.correct);
        if observation.correct {
            self.correct_in_window += 1;
        }
        if self.window.len() < self.config.window_size {
            self.state = DetectorState::Stable;
            return self.state;
        }
        let accuracy = self.correct_in_window as f64 / self.config.window_size as f64;
        if accuracy > self.max_accuracy {
            self.max_accuracy = accuracy;
        }
        self.state = if self.max_accuracy - accuracy > self.epsilon {
            self.window.clear();
            self.correct_in_window = 0;
            self.max_accuracy = 0.0;
            DetectorState::Drift
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = Fhddm::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "FHDDM"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("window", self.window.serialize_value()),
            ("correct_in_window", self.correct_in_window.serialize_value()),
            ("max_accuracy", self.max_accuracy.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.window = state.field("window")?;
        self.correct_in_window = state.field("correct_in_window")?;
        self.max_accuracy = state.field("max_accuracy")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_abrupt_change, assert_quiet_on_stationary, run_error_stream,
    };

    #[test]
    fn detects_abrupt_error_increase() {
        assert_detects_abrupt_change(&mut Fhddm::new(), 400, 2);
    }

    #[test]
    fn quiet_on_stationary_stream() {
        assert_quiet_on_stationary(&mut Fhddm::new(), 2);
    }

    #[test]
    fn epsilon_matches_hoeffding_formula() {
        let f = Fhddm::with_config(FhddmConfig { window_size: 25, delta: 0.000001 });
        let expected = (1.0_f64 / 0.000001).ln() / (2.0 * 25.0);
        assert!((f.epsilon() - expected.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn smaller_window_reacts_faster() {
        let mut small = Fhddm::with_config(FhddmConfig { window_size: 25, delta: 1e-4 });
        let mut large = Fhddm::with_config(FhddmConfig { window_size: 300, delta: 1e-4 });
        let d_small = run_error_stream(&mut small, 0.05, 0.6, 2000, 4000, 5);
        let d_large = run_error_stream(&mut large, 0.05, 0.6, 2000, 4000, 5);
        let delay = |d: &Vec<usize>| {
            d.iter().find(|&&p| p >= 2000).map(|&p| p - 2000).unwrap_or(usize::MAX)
        };
        assert!(delay(&d_small) <= delay(&d_large), "small window should not be slower");
        assert!(delay(&d_small) < 300);
    }

    #[test]
    fn improvement_does_not_trigger() {
        assert!(run_error_stream(&mut Fhddm::new(), 0.5, 0.05, 3000, 6000, 8).is_empty());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut f = Fhddm::new();
        run_error_stream(&mut f, 0.05, 0.6, 500, 2000, 1);
        f.reset();
        assert_eq!(f.state(), DetectorState::Stable);
        assert_eq!(f.name(), "FHDDM");
    }

    #[test]
    #[should_panic]
    fn tiny_window_rejected() {
        Fhddm::with_config(FhddmConfig { window_size: 2, delta: 0.01 });
    }
}
