//! Per-class reconstruction-error trend tracking (paper Eq. 28–37).
//!
//! For every class, RBM-IM maintains the *trend* (linear-regression slope)
//! of the per-batch reconstruction error over a sliding window of recent
//! mini-batches. The regression is computed incrementally from running sums
//! (`ΣtR`, `Σt`, `ΣR`, `Σt²`) exactly as in Eq. 29–36, with the window-size
//! bookkeeping of Eq. 33–37. The window length adapts to the stream: an
//! embedded ADWIN instance (the "self-adaptive window size \[19\]" of the
//! paper) shrinks it when the error level shifts.

use rbm_im_detectors::adwin::Adwin;
use rbm_im_stats::regression::trend_from_sums;
use std::collections::VecDeque;

/// Incremental trend tracker over a (bounded, self-adaptive) sliding window.
#[derive(Debug, Clone)]
pub struct TrendTracker {
    /// Maximum window length in batches.
    max_window: usize,
    /// Recent `(t, R)` pairs, oldest first.
    window: VecDeque<(f64, f64)>,
    /// Running sums for the regression terms of Eq. 29–36.
    sum_tr: f64,
    sum_t: f64,
    sum_r: f64,
    sum_t2: f64,
    /// Sum of squared error values (for the window standard deviation used
    /// by the detector's magnitude guard).
    sum_r2: f64,
    /// Batch counter (the regression's time axis).
    t: u64,
    /// Self-adaptive window on the raw error values; a detected change
    /// shrinks the regression window to the most recent observations.
    adwin: Adwin,
    /// History of computed trend values (for the Granger test).
    trend_history: VecDeque<f64>,
    trend_capacity: usize,
}

impl TrendTracker {
    /// Creates a tracker with the given maximum regression window (in
    /// batches) and trend-history capacity (the number of recent trend
    /// values retained for the Granger causality test).
    pub fn new(max_window: usize, trend_capacity: usize, adwin_delta: f64) -> Self {
        assert!(max_window >= 2, "regression needs at least two points");
        assert!(trend_capacity >= 4, "the causality test needs a few trend points");
        TrendTracker {
            max_window,
            window: VecDeque::with_capacity(max_window),
            sum_tr: 0.0,
            sum_t: 0.0,
            sum_r: 0.0,
            sum_t2: 0.0,
            sum_r2: 0.0,
            t: 0,
            adwin: Adwin::new(adwin_delta).with_check_interval(1),
            trend_history: VecDeque::with_capacity(trend_capacity),
            trend_capacity,
        }
    }

    /// Number of `(t, R)` observations currently inside the regression
    /// window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Number of batches observed in total.
    pub fn batches_seen(&self) -> u64 {
        self.t
    }

    /// Mean reconstruction error over the current window (0.0 when empty).
    pub fn window_mean(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.sum_r / self.window.len() as f64
        }
    }

    /// Population standard deviation of the error values in the current
    /// window (0.0 when fewer than two values are held).
    pub fn window_std(&self) -> f64 {
        let n = self.window.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.sum_r / n as f64;
        ((self.sum_r2 / n as f64 - mean * mean).max(0.0)).sqrt()
    }

    fn push_pair(&mut self, t: f64, r: f64) {
        self.window.push_back((t, r));
        self.sum_tr += t * r;
        self.sum_t += t;
        self.sum_r += r;
        self.sum_t2 += t * t;
        self.sum_r2 += r * r;
    }

    fn pop_oldest(&mut self) {
        if let Some((t, r)) = self.window.pop_front() {
            self.sum_tr -= t * r;
            self.sum_t -= t;
            self.sum_r -= r;
            self.sum_t2 -= t * t;
            self.sum_r2 -= r * r;
        }
    }

    /// Adds the reconstruction error of one mini-batch and returns the
    /// updated trend `Q_r(t)` (Eq. 28). Also reports whether the embedded
    /// adaptive window signalled a change in the error level.
    pub fn observe(&mut self, error: f64) -> (f64, bool) {
        self.t += 1;
        let t = self.t as f64;
        self.push_pair(t, error);
        if self.window.len() > self.max_window {
            self.pop_oldest();
        }
        // Self-adaptive windowing: if ADWIN decides the error level changed,
        // shrink the regression window to roughly ADWIN's retained width so
        // the trend reflects the new regime quickly.
        let adwin_change = self.adwin.add(error);
        if adwin_change {
            let keep = (self.adwin.width() as usize).clamp(2, self.max_window);
            while self.window.len() > keep {
                self.pop_oldest();
            }
        }
        let trend = trend_from_sums(
            self.window.len() as f64,
            self.sum_tr,
            self.sum_t,
            self.sum_r,
            self.sum_t2,
        );
        if self.trend_history.len() == self.trend_capacity {
            self.trend_history.pop_front();
        }
        self.trend_history.push_back(trend);
        (trend, adwin_change)
    }

    /// The most recent trend value, if any.
    pub fn current_trend(&self) -> Option<f64> {
        self.trend_history.back().copied()
    }

    /// The retained trend history split into the older half and the recent
    /// half — the two series compared by the Granger causality test.
    /// Returns `None` until the history is full.
    pub fn trend_series(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.trend_history.len() < self.trend_capacity {
            return None;
        }
        let half = self.trend_capacity / 2;
        let all: Vec<f64> = self.trend_history.iter().copied().collect();
        Some((all[..half].to_vec(), all[half..].to_vec()))
    }

    /// Captures the tracker's complete mutable state — the regression
    /// window and its running sums, the embedded ADWIN window, and the
    /// trend history — as a serde value. Restored with
    /// [`TrendTracker::restore_state`] onto a tracker built with the same
    /// configuration, monitoring continues bitwise-identically.
    pub fn snapshot_state(&self) -> serde::Value {
        use serde::{Serialize, Value};
        Value::object(vec![
            ("max_window", self.max_window.serialize_value()),
            ("trend_capacity", self.trend_capacity.serialize_value()),
            ("window", self.window.serialize_value()),
            ("sum_tr", self.sum_tr.serialize_value()),
            ("sum_t", self.sum_t.serialize_value()),
            ("sum_r", self.sum_r.serialize_value()),
            ("sum_t2", self.sum_t2.serialize_value()),
            ("sum_r2", self.sum_r2.serialize_value()),
            ("t", self.t.serialize_value()),
            ("adwin", self.adwin.checkpoint_value()),
            ("trend_history", self.trend_history.serialize_value()),
        ])
    }

    /// Restores state captured by [`TrendTracker::snapshot_state`].
    pub fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let max_window: usize = state.field("max_window")?;
        let trend_capacity: usize = state.field("trend_capacity")?;
        if max_window != self.max_window || trend_capacity != self.trend_capacity {
            return Err(serde::Error::msg(format!(
                "trend tracker config mismatch: snapshot is window {max_window} / history \
                 {trend_capacity}, tracker is {} / {}",
                self.max_window, self.trend_capacity
            )));
        }
        self.window = state.field("window")?;
        self.sum_tr = state.field("sum_tr")?;
        self.sum_t = state.field("sum_t")?;
        self.sum_r = state.field("sum_r")?;
        self.sum_t2 = state.field("sum_t2")?;
        self.sum_r2 = state.field("sum_r2")?;
        self.t = state.field("t")?;
        self.adwin.restore_from_value(state.req("adwin")?)?;
        self.trend_history = state.field("trend_history")?;
        Ok(())
    }

    /// Clears all state (called when a drift has been signalled for the
    /// class this tracker monitors).
    pub fn reset(&mut self) {
        use rbm_im_detectors::DriftDetector;
        self.window.clear();
        self.sum_tr = 0.0;
        self.sum_t = 0.0;
        self.sum_r = 0.0;
        self.sum_t2 = 0.0;
        self.sum_r2 = 0.0;
        self.t = 0;
        self.adwin.reset();
        self.trend_history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trend_matches_direct_regression_on_linear_series() {
        let mut tracker = TrendTracker::new(50, 10, 0.002);
        // R(t) = 0.3 + 0.02 t — the slope must converge to 0.02.
        let mut last = 0.0;
        for t in 1..=40 {
            let (trend, _) = tracker.observe(0.3 + 0.02 * t as f64);
            last = trend;
        }
        assert!((last - 0.02).abs() < 1e-9, "trend = {last}");
        assert_eq!(tracker.window_len(), 40);
        assert_eq!(tracker.batches_seen(), 40);
    }

    #[test]
    fn flat_series_has_zero_trend() {
        let mut tracker = TrendTracker::new(30, 8, 0.002);
        let mut last = 1.0;
        for _ in 0..30 {
            let (trend, _) = tracker.observe(0.5);
            last = trend;
        }
        assert!(last.abs() < 1e-9);
        assert!((tracker.window_mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_is_bounded() {
        let mut tracker = TrendTracker::new(10, 6, 0.002);
        for t in 1..=100 {
            tracker.observe(0.1 * (t % 7) as f64);
        }
        assert_eq!(tracker.window_len(), 10);
    }

    #[test]
    fn sums_remain_consistent_after_evictions() {
        let mut tracker = TrendTracker::new(10, 6, 0.002);
        for t in 1..=50 {
            tracker.observe((t as f64 * 0.37).sin().abs());
        }
        // Recompute the regression directly from the retained window and
        // compare with the incrementally tracked slope.
        let pairs: Vec<(f64, f64)> = tracker.window.iter().copied().collect();
        let n = pairs.len() as f64;
        let sum_t: f64 = pairs.iter().map(|(t, _)| t).sum();
        let sum_r: f64 = pairs.iter().map(|(_, r)| r).sum();
        let sum_tr: f64 = pairs.iter().map(|(t, r)| t * r).sum();
        let sum_t2: f64 = pairs.iter().map(|(t, _)| t * t).sum();
        let direct = trend_from_sums(n, sum_tr, sum_t, sum_r, sum_t2);
        let tracked = tracker.current_trend().unwrap();
        assert!((direct - tracked).abs() < 1e-9);
    }

    #[test]
    fn adwin_shrinks_window_on_level_shift() {
        let mut tracker = TrendTracker::new(200, 10, 0.01);
        for _ in 0..150 {
            tracker.observe(0.2);
        }
        let mut shrank = false;
        for _ in 0..150 {
            let (_, change) = tracker.observe(0.9);
            if change {
                shrank = true;
            }
        }
        assert!(shrank, "the adaptive window must react to a level shift");
        assert!(tracker.window_len() < 300);
    }

    #[test]
    fn rising_error_produces_positive_trend() {
        let mut tracker = TrendTracker::new(40, 10, 0.002);
        for _ in 0..20 {
            tracker.observe(0.2);
        }
        for k in 0..20 {
            tracker.observe(0.2 + 0.03 * k as f64);
        }
        assert!(tracker.current_trend().unwrap() > 0.005);
    }

    #[test]
    fn trend_series_splits_history_in_half() {
        let mut tracker = TrendTracker::new(30, 8, 0.002);
        for t in 1..=7 {
            tracker.observe(t as f64 * 0.1);
            assert!(tracker.trend_series().is_none());
        }
        tracker.observe(0.9);
        let (older, recent) = tracker.trend_series().unwrap();
        assert_eq!(older.len(), 4);
        assert_eq!(recent.len(), 4);
    }

    #[test]
    fn window_std_matches_direct_computation() {
        let mut tracker = TrendTracker::new(20, 6, 0.002);
        let values = [0.2, 0.4, 0.3, 0.5, 0.1, 0.35];
        for &v in &values {
            tracker.observe(v);
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let var: f64 =
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        assert!((tracker.window_std() - var.sqrt()).abs() < 1e-12);
        let empty = TrendTracker::new(5, 4, 0.002);
        assert_eq!(empty.window_std(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut tracker = TrendTracker::new(20, 6, 0.002);
        for t in 1..=15 {
            tracker.observe(t as f64);
        }
        tracker.reset();
        assert_eq!(tracker.window_len(), 0);
        assert_eq!(tracker.batches_seen(), 0);
        assert!(tracker.current_trend().is_none());
        assert!(tracker.trend_series().is_none());
    }

    #[test]
    #[should_panic]
    fn tiny_window_rejected() {
        TrendTracker::new(1, 8, 0.002);
    }
}
