//! Prequential evaluation metrics for multi-class imbalanced data streams.
//!
//! The paper evaluates every detector through the lens of the classifier it
//! drives, using two skew-aware prequential metrics computed over a sliding
//! window of recent predictions:
//!
//! * **pmAUC** — prequential multi-class AUC (Wang & Minku, 2020): the
//!   average of pairwise class AUCs (Hand & Till M-measure) computed over
//!   the window of recent per-class scores;
//! * **pmGM** — prequential multi-class G-mean: the geometric mean of the
//!   per-class recalls over the window.
//!
//! This crate provides:
//!
//! * [`confusion::StreamingConfusionMatrix`] — windowless running confusion
//!   matrix with accuracy, per-class recall/precision, G-mean and Cohen's
//!   kappa;
//! * [`auc`] — windowed multi-class AUC;
//! * [`prequential::PrequentialEvaluator`] — the sliding-window evaluator
//!   combining both metrics, used by the harness for every Table III cell;
//! * [`detection`] — drift-detection quality metrics (delay, misses, false
//!   alarms) used by the ablation studies.

#![warn(missing_docs)]

pub mod auc;
pub mod confusion;
pub mod detection;
pub mod prequential;

pub use auc::WindowedMultiClassAuc;
pub use confusion::StreamingConfusionMatrix;
pub use detection::{evaluate_detections, DetectionQuality};
pub use prequential::{PrequentialEvaluator, PrequentialSnapshot};
