//! Table III bench: one prequential run (detector + CSPT classifier +
//! pmAUC/pmGM) per paper detector on a scaled-down benchmark stream.
//!
//! The bench measures the wall-clock cost of a full evaluation cell; the
//! printed pmAUC values (via `--nocapture`-style stderr) are produced by the
//! `experiment1` binary, not here. Workloads are kept tiny so `cargo bench`
//! completes in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbm_im_harness::detectors::DetectorKind;
use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig};
use rbm_im_streams::registry::{benchmark_by_name, BuildConfig};

fn bench_table3(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("table3_detectors");
    group.sample_size(10);
    let build =
        BuildConfig { seed: 42, scale_divisor: 1_000, n_drifts: 1, dynamic_imbalance: true };
    let run = RunConfig { metric_window: 500, max_instances: Some(2_000), ..Default::default() };
    let spec = benchmark_by_name("RBF5").expect("RBF5 exists");
    for detector in DetectorKind::paper_detectors() {
        group.bench_with_input(BenchmarkId::new("rbf5", detector.name()), &detector, |b, &d| {
            b.iter(|| {
                PipelineBuilder::new()
                    .boxed_stream(spec.build(&build))
                    .detector_spec(d.spec())
                    .config(run)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
