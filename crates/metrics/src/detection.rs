//! Drift-detection quality metrics.
//!
//! Given the ground-truth drift positions of a synthetic stream and the
//! positions at which a detector raised alarms, these metrics quantify how
//! well the detector did independently of any classifier:
//!
//! * **detection delay** — instances between a true drift and the first
//!   alarm raised within its acceptance horizon,
//! * **missed drifts** — true drifts with no alarm inside the horizon,
//! * **false alarms** — alarms not attributable to any true drift.
//!
//! The paper evaluates detectors indirectly through classifier performance;
//! these direct metrics power the additional ablation benches (DESIGN.md).

use serde::{Deserialize, Serialize};

/// Summary of detection quality for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionQuality {
    /// Number of ground-truth drifts.
    pub true_drifts: usize,
    /// Number of drifts detected within their acceptance horizon.
    pub detected: usize,
    /// Number of drifts never detected within the horizon.
    pub missed: usize,
    /// Alarms that could not be attributed to any true drift.
    pub false_alarms: usize,
    /// Mean delay (in instances) of the detected drifts; `None` if nothing
    /// was detected.
    pub mean_delay: Option<f64>,
    /// Per-drift delay (aligned with the ground-truth positions); `None`
    /// entries are missed drifts.
    pub delays: Vec<Option<u64>>,
}

impl DetectionQuality {
    /// Recall of the detector: detected / true drifts (1.0 when there are no
    /// true drifts).
    pub fn recall(&self) -> f64 {
        if self.true_drifts == 0 {
            1.0
        } else {
            self.detected as f64 / self.true_drifts as f64
        }
    }

    /// Precision of the detector: detected / (detected + false alarms)
    /// (1.0 when no alarms were raised at all).
    pub fn precision(&self) -> f64 {
        let alarms = self.detected + self.false_alarms;
        if alarms == 0 {
            1.0
        } else {
            self.detected as f64 / alarms as f64
        }
    }
}

/// Scores a list of alarm positions against ground-truth drift positions.
///
/// An alarm is attributed to the earliest not-yet-detected true drift `d`
/// with `d <= alarm <= d + horizon`. Each true drift can be detected at most
/// once; additional alarms inside the same horizon are *not* counted as
/// false alarms (a detector may legitimately fire several times while a
/// drift unfolds), but alarms outside every horizon are.
///
/// Both position lists must be sorted ascending (they are by construction in
/// the harness); the function sorts defensively anyway.
pub fn evaluate_detections(
    true_positions: &[u64],
    alarms: &[u64],
    horizon: u64,
) -> DetectionQuality {
    let mut truths: Vec<u64> = true_positions.to_vec();
    truths.sort_unstable();
    let mut alarm_list: Vec<u64> = alarms.to_vec();
    alarm_list.sort_unstable();

    let mut delays: Vec<Option<u64>> = vec![None; truths.len()];
    let mut false_alarms = 0usize;

    for &alarm in &alarm_list {
        // Find the drift this alarm falls into (attributed or not).
        let mut attributed = false;
        let mut inside_any_horizon = false;
        for (i, &d) in truths.iter().enumerate() {
            if alarm >= d && alarm <= d + horizon {
                inside_any_horizon = true;
                if delays[i].is_none() {
                    delays[i] = Some(alarm - d);
                    attributed = true;
                    break;
                }
            }
        }
        if !attributed && !inside_any_horizon {
            false_alarms += 1;
        }
    }

    let detected = delays.iter().filter(|d| d.is_some()).count();
    let missed = truths.len() - detected;
    let mean_delay = if detected == 0 {
        None
    } else {
        Some(delays.iter().flatten().map(|&d| d as f64).sum::<f64>() / detected as f64)
    };
    DetectionQuality {
        true_drifts: truths.len(),
        detected,
        missed,
        false_alarms,
        mean_delay,
        delays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let q = evaluate_detections(&[1000, 2000, 3000], &[1010, 2050, 3005], 500);
        assert_eq!(q.detected, 3);
        assert_eq!(q.missed, 0);
        assert_eq!(q.false_alarms, 0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.precision(), 1.0);
        assert!((q.mean_delay.unwrap() - (10.0 + 50.0 + 5.0) / 3.0).abs() < 1e-12);
        assert_eq!(q.delays, vec![Some(10), Some(50), Some(5)]);
    }

    #[test]
    fn missed_and_false_alarms() {
        let q = evaluate_detections(&[1000, 5000], &[1100, 3000], 500);
        assert_eq!(q.detected, 1);
        assert_eq!(q.missed, 1);
        assert_eq!(q.false_alarms, 1);
        assert_eq!(q.recall(), 0.5);
        assert_eq!(q.precision(), 0.5);
        assert_eq!(q.delays, vec![Some(100), None]);
    }

    #[test]
    fn no_alarms_at_all() {
        let q = evaluate_detections(&[1000], &[], 500);
        assert_eq!(q.detected, 0);
        assert_eq!(q.missed, 1);
        assert_eq!(q.false_alarms, 0);
        assert_eq!(q.mean_delay, None);
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.precision(), 1.0);
    }

    #[test]
    fn no_true_drifts_everything_is_false_alarm() {
        let q = evaluate_detections(&[], &[100, 200], 500);
        assert_eq!(q.true_drifts, 0);
        assert_eq!(q.false_alarms, 2);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.precision(), 0.0);
    }

    #[test]
    fn repeated_alarms_within_one_horizon_not_penalized() {
        let q = evaluate_detections(&[1000], &[1010, 1020, 1100, 1400], 500);
        assert_eq!(q.detected, 1);
        assert_eq!(q.false_alarms, 0);
        assert_eq!(q.delays, vec![Some(10)]);
    }

    #[test]
    fn alarm_before_drift_is_a_false_alarm() {
        let q = evaluate_detections(&[1000], &[900], 500);
        assert_eq!(q.detected, 0);
        assert_eq!(q.false_alarms, 1);
    }

    #[test]
    fn unsorted_inputs_are_handled() {
        let q = evaluate_detections(&[3000, 1000], &[3010, 1005], 200);
        assert_eq!(q.detected, 2);
        assert_eq!(q.delays, vec![Some(5), Some(10)]);
    }

    #[test]
    fn overlapping_horizons_attribute_greedily() {
        // Two drifts close together; a single alarm detects the first one.
        let q = evaluate_detections(&[1000, 1100], &[1150], 500);
        assert_eq!(q.detected, 1);
        assert_eq!(q.delays, vec![Some(150), None]);
        // A second alarm then detects the second drift.
        let q = evaluate_detections(&[1000, 1100], &[1150, 1200], 500);
        assert_eq!(q.detected, 2);
        assert_eq!(q.delays, vec![Some(150), Some(100)]);
    }
}
