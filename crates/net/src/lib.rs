//! `rbm-im-net` — the TCP wire front-end for the sharded serving plane.
//!
//! `rbm-im-serve` shards many concurrent streams inside one process; this
//! crate puts a wire in front of it, the prerequisite to multi-process
//! distribution (ROADMAP item 1). Three pieces:
//!
//! * [`wire`] — a length-prefixed binary frame grammar (`RBMW` magic,
//!   version, frame type, body) built on the RBMC checkpoint codec's
//!   varint/value framing, so wire captures decode with checkpoint
//!   tooling;
//! * [`NetServer`] — a `std::net` TCP listener (thread-per-connection; the
//!   build environment has no async runtime and needs none here: one OS
//!   thread per connection is exactly the serving plane's own
//!   thread-per-shard discipline) that terminates frames and drives the
//!   in-process [`ServerHandle`](rbm_im_serve::ServerHandle) /
//!   [`StreamClient`](rbm_im_serve::StreamClient) seam: attach/detach with
//!   full detector spec strings, blocking and fail-fast ingest (shard
//!   backpressure surfaces as a `Busy` reply carrying the rejected count),
//!   drain barrier, stream checkpoints, shutdown → final
//!   [`ServeReport`](rbm_im_serve::ServeReport), and a subscription mode
//!   streaming the drift-event bus to the client;
//! * [`NetClient`] / [`NetStreamClient`] — the matching blocking client,
//!   mirroring the in-process API (same method names, same
//!   [`IngestError`](rbm_im_serve::IngestError) contract) so feeder code
//!   runs unchanged over loopback.
//!
//! # Determinism contract
//!
//! The wire adds no nondeterminism: a fleet fed over N TCP connections
//! produces **bitwise-identical** drift offsets, metrics and final report
//! to the same feed through in-process `StreamClient`s — and, transitively,
//! to a sequential `PipelineBuilder` run per stream (`tests/determinism.rs`
//! pins the three-way chain). Per-stream arrival order is what matters;
//! connection interleaving, like thread interleaving, is free.
//!
//! # Loopback lifecycle
//!
//! ```
//! use rbm_im_harness::registry::DetectorSpec;
//! use rbm_im_net::{NetClient, NetServer};
//! use rbm_im_serve::ServeConfig;
//! use rbm_im_streams::generators::GaussianMixtureGenerator;
//! use rbm_im_streams::{DataStream, StreamExt};
//!
//! let server = NetServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let client = NetClient::connect(server.local_addr()).unwrap();
//!
//! let mut stream = GaussianMixtureGenerator::balanced(8, 3, 1, 7);
//! let spec = DetectorSpec::parse("ddm").unwrap();
//! let feed = client.attach("feed-00", stream.schema().clone(), &spec).unwrap();
//! feed.ingest_batch(stream.take_instances(200)).unwrap();
//!
//! client.drain().unwrap();
//! let report = client.shutdown().unwrap();
//! assert_eq!(report.streams.len(), 1);
//! assert_eq!(report.streams[0].result.instances, 200);
//! assert_eq!(report.frames_dropped, 0);
//! # server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{NetClient, NetError, NetStreamClient};
pub use server::{NetServer, NetServerHandle};
pub use wire::{ErrorCode, Frame, WireError, MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_VERSION};
