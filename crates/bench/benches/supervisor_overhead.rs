//! `supervisor_overhead`: what the autonomic control plane costs the data
//! plane.
//!
//! The same 32-stream serving workload is pumped to completion three
//! ways: unsupervised (the PR-4 baseline), with pathologically aggressive
//! background checkpointing (every 20 ms per stream — hundreds of times
//! more frequent than a production policy, so several full spill rounds
//! land inside every iteration), and with checkpointing plus the
//! load-based auto-resize policy sampling gauges every tick. The supervisor runs on
//! its own thread and only touches control-plane operations, so the
//! overhead should be the cost of the periodic `checkpoint_stream` calls
//! interleaving with ingest on the shard workers — `BENCH_supervisor_overhead.json`
//! records the measured numbers with runner metadata embedded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_serve::{
    CheckpointPolicy, HysteresisResizePolicy, ResizeConfig, ServeConfig, ServerHandle,
    SnapshotSink, Supervisor, SupervisorConfig,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, StreamExt, StreamSchema};
use std::sync::Arc;
use std::time::Duration;

const STREAMS: usize = 32;
const INSTANCES_PER_STREAM: usize = 400;
const SHARDS: usize = 2;

/// Pre-recorded drifting feeds so iterations measure serving, not
/// generation.
fn record_feeds() -> Vec<(String, StreamSchema, Vec<Instance>)> {
    (0..STREAMS)
        .map(|i| {
            let mut gen = RandomRbfGenerator::new(10, 4, 2, 0.0, 1_700 + i as u64);
            let schema = gen.schema().clone();
            let mut instances = gen.take_instances(INSTANCES_PER_STREAM / 2);
            gen.regenerate();
            instances.extend(gen.take_instances(INSTANCES_PER_STREAM / 2));
            (format!("feed-{i:02}"), schema, instances)
        })
        .collect()
}

/// Supervisor setup per benchmark arm (`None` = unsupervised baseline).
fn supervisor_config(arm: &str) -> Option<SupervisorConfig> {
    match arm {
        "unsupervised" => None,
        "checkpointing" => Some(SupervisorConfig {
            tick: Duration::from_millis(5),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_millis(20),
                jitter: 0.5,
                on_drift: true,
            }),
            resize: None,
            tier: None,
        }),
        "checkpoint+resize" => Some(SupervisorConfig {
            tick: Duration::from_millis(5),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_millis(20),
                jitter: 0.5,
                on_drift: true,
            }),
            resize: Some(ResizeConfig {
                min_shards: 1,
                max_shards: 8,
                cooldown: Duration::from_millis(200),
                policy: Box::new(HysteresisResizePolicy::default()),
            }),
            tier: None,
        }),
        other => unreachable!("unknown arm {other}"),
    }
}

fn bench_supervisor_overhead(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let feeds = record_feeds();
    let spec = DetectorSpec::parse("rbm(minibatch=25, warmup=4)").unwrap();
    let total = (STREAMS * INSTANCES_PER_STREAM) as u64;
    let spill_dir = std::env::temp_dir().join(format!("rbm-bench-spills-{}", std::process::id()));

    let mut group = c.benchmark_group("supervisor_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    for arm in ["unsupervised", "checkpointing", "checkpoint+resize"] {
        group.bench_with_input(BenchmarkId::new("32streams", arm), &(), |b, _| {
            b.iter(|| {
                let server = Arc::new(ServerHandle::start(ServeConfig {
                    num_shards: SHARDS,
                    queue_capacity: 256,
                    ..Default::default()
                }));
                let supervisor = supervisor_config(arm).map(|config| {
                    Supervisor::start(
                        Arc::clone(&server),
                        SnapshotSink::new(&spill_dir).expect("spill dir"),
                        config,
                    )
                });
                let clients: Vec<_> = feeds
                    .iter()
                    .map(|(id, schema, _)| server.attach(id, schema.clone(), &spec).unwrap())
                    .collect();
                for chunk_start in (0..INSTANCES_PER_STREAM).step_by(50) {
                    for ((_, _, instances), client) in feeds.iter().zip(&clients) {
                        let end = (chunk_start + 50).min(instances.len());
                        client.ingest_batch(instances[chunk_start..end].to_vec()).unwrap();
                    }
                }
                server.drain();
                if let Some(supervisor) = supervisor {
                    let report = supervisor.stop();
                    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
                }
                Arc::try_unwrap(server).expect("supervisor stopped").shutdown()
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&spill_dir);
}

criterion_group!(benches, bench_supervisor_overhead);
criterion_main!(benches);
